//! Cross-validation of the paper's §4 theory against the packet-level
//! simulation: the analytic gradient-descent model and the simulated
//! two-job system should agree on the *direction* and the *fixed points*
//! of the sliding dynamic.

use mltcp::core::gradient::{circular_distance, Descent};
use mltcp::core::params::MltcpParams;
use mltcp::core::schedule::{contention, PeriodicJob};
use mltcp::core::shift::ShiftFunction;
use mltcp::prelude::*;

const SCALE: f64 = 5e-3;

/// The analytic map's prediction: starting from a small offset, two jobs
/// converge into the zero-shift plateau `[aT, T − aT]`. The simulation
/// must land its steady-state offset in (a neighbourhood of) the same
/// plateau.
#[test]
fn simulated_fixed_point_lies_in_the_analytic_plateau() {
    let rate = models::paper_bottleneck();
    let jobs: Vec<JobSpec> = models::gpt2_pack(rate, SCALE, 35, 2)
        .into_iter()
        .map(|j| {
            let n = j.compute_time.mul_f64(0.01);
            j.with_noise(n)
        })
        .collect();
    let period = jobs[0].ideal_period(rate).as_secs_f64();
    let a = jobs[0].comm_fraction(rate);

    // Analytic prediction.
    let shift = ShiftFunction::new(MltcpParams::PAPER, period, a).expect("valid");
    let descent = Descent::new(shift);
    let analytic = descent.run(period * 0.02, 1e-9, 10_000);
    assert!(analytic.converged);
    assert!(analytic.is_interleaved(&shift, 1e-6));

    // Simulation.
    let mut b = ScenarioBuilder::new(21);
    for j in jobs {
        b = b.job(j, CongestionSpec::MltcpReno(FnSpec::Paper));
    }
    let mut sc = b.build();
    sc.run(SimTime::from_secs_f64(60.0));
    assert!(sc.all_finished());
    let s0 = sc.comm_starts_secs(0);
    let s1 = sc.comm_starts_secs(1);
    let n = s0.len().min(s1.len());
    let late: Vec<f64> = (n - 6..n)
        .map(|k| circular_distance(s0[k], s1[k], period))
        .collect();
    let steady = late.iter().sum::<f64>() / late.len() as f64;

    // The plateau is [aT, T − aT]; transport overhead widens the
    // effective comm phase ≈ 8%, so allow that much slack at the edge.
    let at = a * period;
    assert!(
        steady >= at * 0.85 && steady <= period - at * 0.85,
        "simulated steady offset {steady:.6} outside the analytic plateau [{:.6}, {:.6}]",
        at,
        period - at
    );
}

/// Convergence speed: the analytic model converges in tens of iterations
/// with the paper's parameters, and the simulation's iteration-time
/// series settles on a comparable scale (§2: ~20 iterations).
#[test]
fn convergence_happens_within_tens_of_iterations() {
    let shift = ShiftFunction::new(MltcpParams::PAPER, 1.8, 0.5).expect("valid");
    let descent = Descent::new(shift);
    let rep = descent.run(0.05, 1e-3, 1_000);
    assert!(rep.converged && rep.iterations <= 60, "{}", rep.iterations);

    let rate = models::paper_bottleneck();
    let mut b = ScenarioBuilder::new(5);
    for j in models::gpt2_pack(rate, SCALE, 40, 6) {
        let n = j.compute_time.mul_f64(0.01);
        b = b.job(j.with_noise(n), CongestionSpec::MltcpReno(FnSpec::Paper));
    }
    let mut sc = b.build();
    sc.run(SimTime::from_secs_f64(60.0));
    assert!(sc.all_finished());
    // At least half the jobs settle (within 10% of their steady mean)
    // inside the first ~30 iterations.
    let settled = (0..6)
        .filter(|&i| matches!(sc.stats(i).converged_after(0.10, 5), Some(k) if k <= 30))
        .count();
    assert!(
        settled >= 3,
        "only {settled}/6 jobs settled within 30 iterations"
    );
}

/// The final simulated comm-phase placements of the six-job packed case
/// form a low-contention schedule by the analytic contention metric.
#[test]
fn final_simulated_schedule_has_low_analytic_contention() {
    let rate = models::paper_bottleneck();
    let mut b = ScenarioBuilder::new(9);
    let jobs = models::gpt2_pack(rate, SCALE, 40, 6);
    let _period = jobs[0].ideal_period(rate).as_secs_f64();
    let a = jobs[0].comm_fraction(rate);
    for j in jobs {
        let n = j.compute_time.mul_f64(0.01);
        b = b.job(j.with_noise(n), CongestionSpec::MltcpReno(FnSpec::Paper));
    }
    let mut sc = b.build();
    sc.run(SimTime::from_secs_f64(60.0));
    assert!(sc.all_finished());

    // Take each job's last comm start as its phase and measure the
    // analytic overlap of the resulting ideal schedule. The measured
    // period (≈ 4% above nominal) is the right ring circumference.
    let measured_period = sc.stats(0).tail_mean(5);
    let phases: Vec<PeriodicJob> = (0..6)
        .map(|i| {
            let starts = sc.comm_starts_secs(i);
            let last = *starts.last().expect("ran");
            PeriodicJob::new(measured_period, a, last % measured_period).expect("valid")
        })
        .collect();
    let report = contention(&phases, 8192);
    // Six jobs synchronized would give peak overlap 6; the converged
    // schedule should be spread out (pairwise collisions at most).
    assert!(
        report.peak_overlap <= 3,
        "converged schedule still clumped: {report:?}"
    );
    assert!(
        report.contended_time_fraction < 0.25,
        "converged schedule too contended: {report:?}"
    );
}
