//! Full-stack integration tests: MLTCP's headline behaviours, end to end
//! through the packet simulator.

use mltcp::prelude::*;

const SCALE: f64 = 5e-3;

fn noisy(jobs: Vec<JobSpec>) -> Vec<JobSpec> {
    jobs.into_iter()
        .map(|j| {
            let n = j.compute_time.mul_f64(0.01);
            j.with_noise(n)
        })
        .collect()
}

fn run_uniform(seed: u64, jobs: Vec<JobSpec>, cc: CongestionSpec) -> Scenario {
    let mut b = ScenarioBuilder::new(seed);
    for j in jobs {
        b = b.job(j, cc.clone());
    }
    let mut sc = b.build();
    sc.run(SimTime::from_secs_f64(60.0));
    assert!(sc.all_finished(), "scenario must complete");
    sc
}

fn mean_steady_ratio(sc: &Scenario) -> f64 {
    let n = sc.jobs.len();
    (0..n)
        .map(|i| sc.stats(i).tail_mean(5) / sc.ideal_period(i).as_secs_f64())
        .sum::<f64>()
        / n as f64
}

/// The core claim: six synchronized GPT-2 jobs stay congested under Reno
/// but interleave under MLTCP-Reno (paper Fig. 4).
///
/// Reno's packed-case slowdown is strongly seed-dependent (jitter alone
/// occasionally drifts the jobs apart), so the claim is checked on the
/// mean over a few fixed seeds rather than a single draw.
#[test]
fn six_jobs_mltcp_interleaves_reno_does_not() {
    let rate = models::paper_bottleneck();
    let seeds = [42u64, 1, 2, 3];
    let mut r_sum = 0.0;
    let mut m_sum = 0.0;
    for seed in seeds {
        let jobs = || noisy(models::gpt2_pack(rate, SCALE, 40, 6));
        r_sum += mean_steady_ratio(&run_uniform(seed, jobs(), CongestionSpec::Reno));
        m_sum += mean_steady_ratio(&run_uniform(
            seed,
            jobs(),
            CongestionSpec::MltcpReno(FnSpec::Paper),
        ));
    }
    let r = r_sum / seeds.len() as f64;
    let m = m_sum / seeds.len() as f64;
    assert!(
        m < r * 0.85,
        "MLTCP must clearly beat Reno in the packed case: {m:.3} vs {r:.3}"
    );
    assert!(m < 1.35, "MLTCP steady state should approach ideal: {m:.3}");
}

/// Two-job sliding (paper Fig. 6): the comm-phase offset grows until the
/// phases no longer overlap.
#[test]
fn two_jobs_slide_apart() {
    use mltcp::core::gradient::circular_distance;
    let rate = models::paper_bottleneck();
    let jobs = noisy(models::gpt2_pack(rate, SCALE, 30, 2));
    let comm = jobs[0].ideal_comm_time(rate).as_secs_f64();
    let period = jobs[0].ideal_period(rate).as_secs_f64();
    let sc = run_uniform(7, jobs, CongestionSpec::MltcpReno(FnSpec::Paper));
    let s0 = sc.comm_starts_secs(0);
    let s1 = sc.comm_starts_secs(1);
    let n = s0.len().min(s1.len());
    let last_deltas: Vec<f64> = (n.saturating_sub(8)..n)
        .map(|k| circular_distance(s0[k], s1[k], period))
        .collect();
    let late = last_deltas.iter().sum::<f64>() / last_deltas.len() as f64;
    assert!(
        late >= comm * 0.8,
        "steady-state offset {late:.6} should reach ≈ the comm duration {comm:.6}"
    );
}

/// The Fig. 2 ordering: pFabric systematically delays the job with the
/// biggest transfers (J1), which MLTCP does not.
#[test]
fn pfabric_penalizes_the_big_job_mltcp_does_not() {
    use mltcp::sched::pfabric::apply_pfabric;
    let rate = models::paper_bottleneck();
    let jobs = || noisy(models::fig2_mix(rate, SCALE, 40));

    let mltcp = run_uniform(42, jobs(), CongestionSpec::MltcpReno(FnSpec::Paper));
    let mltcp_j1 = mltcp.stats(0).tail_mean(5) / mltcp.ideal_period(0).as_secs_f64();

    let mut b = ScenarioBuilder::new(42);
    for j in jobs() {
        b = b.job(j, CongestionSpec::Reno);
    }
    let mut pf = apply_pfabric(b, rate, SimDuration::micros(12)).build();
    pf.run(SimTime::from_secs_f64(60.0));
    assert!(pf.all_finished());
    let pf_j1 = pf.stats(0).tail_mean(5) / pf.ideal_period(0).as_secs_f64();
    let pf_small = pf.stats(1).tail_mean(5) / pf.ideal_period(1).as_secs_f64();

    assert!(
        pf_j1 > 1.35,
        "SRPT should slow J1 substantially (paper: ~1.5x): {pf_j1:.3}"
    );
    assert!(
        pf_small < 1.15,
        "SRPT keeps the small jobs near ideal: {pf_small:.3}"
    );
    assert!(
        mltcp_j1 < pf_j1 - 0.1,
        "MLTCP must treat J1 better than SRPT: {mltcp_j1:.3} vs {pf_j1:.3}"
    );
}

/// The centralized optimum (Cassini-style enforced interleaving) reaches
/// near-ideal for every job, and MLTCP's *average* lands within ~10% of
/// it (paper §2 reports within 5% on their testbed).
#[test]
fn mltcp_approximates_the_centralized_schedule() {
    use mltcp::sched::cassini;
    let rate = models::paper_bottleneck();
    let jobs = noisy(models::fig2_mix(rate, SCALE, 40));

    let periodic: Vec<_> = jobs.iter().map(|j| j.to_periodic(rate)).collect();
    let sched = cassini::optimize_offsets(&periodic, 240, 8192);
    assert!(sched.is_fully_interleaved(), "the Fig. 2 mix must tile");
    let computes: Vec<_> = jobs.iter().map(|j| j.compute_time).collect();
    let periods: Vec<f64> = periodic.iter().map(|p| p.period).collect();
    let offsets = cassini::driver_offsets(&sched, &computes, &periods);
    let mut b = ScenarioBuilder::new(42);
    for (mut j, off) in jobs.clone().into_iter().zip(offsets) {
        let pace = j.ideal_period(rate).mul_f64(1.16);
        j.start_offset = off.mul_f64(1.16);
        b = b.job(j.with_pace(pace), CongestionSpec::Reno);
    }
    let mut cassini_sc = b.build();
    cassini_sc.run(SimTime::from_secs_f64(60.0));
    assert!(cassini_sc.all_finished());
    let c = mean_steady_ratio(&cassini_sc);

    let mltcp = run_uniform(42, jobs, CongestionSpec::MltcpReno(FnSpec::Paper));
    let m = mean_steady_ratio(&mltcp);

    assert!(c < 1.2, "enforced Cassini must be near ideal: {c:.3}");
    assert!(
        m / c < 1.12,
        "MLTCP's average must approximate the centralized optimum: {m:.3} vs {c:.3}"
    );
}

/// Determinism: identical (topology, workload, seed) runs produce
/// identical iteration series.
#[test]
fn scenarios_are_deterministic() {
    let rate = models::paper_bottleneck();
    let series = |seed: u64| {
        let sc = run_uniform(
            seed,
            noisy(models::gpt2_pack(rate, SCALE, 10, 3)),
            CongestionSpec::MltcpReno(FnSpec::Paper),
        );
        (0..3)
            .map(|i| sc.stats(i).durations().to_vec())
            .collect::<Vec<_>>()
    };
    assert_eq!(series(11), series(11));
    assert_ne!(series(11), series(12));
}

/// Coexistence (§5): an MLTCP flow sharing the link with a legacy Reno
/// flow gets the better share but never starves it.
#[test]
fn mltcp_does_not_starve_legacy_reno() {
    let rate = models::paper_bottleneck();
    let mut b = ScenarioBuilder::new(42);
    let jobs = noisy(models::gpt2_pack(rate, SCALE, 30, 2));
    let ccs = [
        CongestionSpec::Reno,
        CongestionSpec::MltcpReno(FnSpec::Paper),
    ];
    for (j, cc) in jobs.into_iter().zip(ccs) {
        b = b.job(j, cc);
    }
    let mut sc = b.build();
    sc.run(SimTime::from_secs_f64(60.0));
    assert!(
        sc.all_finished(),
        "legacy flow must complete all iterations"
    );
    let legacy = sc.stats(0).tail_mean(5) / sc.ideal_period(0).as_secs_f64();
    assert!(
        legacy < 2.5,
        "legacy flow may be de-prioritized but not starved: {legacy:.3}"
    );
}
