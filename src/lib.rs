//! # mltcp — a reproduction of "MLTCP: A Distributed Technique to
//! Approximate Centralized Flow Scheduling For Machine Learning"
//! (Rajasekaran, Narang, Zabreyko, Ghobadi — HotNets '24)
//!
//! MLTCP augments a congestion control algorithm so that the flows of
//! periodic DNN training jobs *converge, distributedly, to an interleaved
//! schedule*: each flow scales its window-increase step by a bandwidth
//! aggressiveness function `F(bytes_ratio)` of its progress through the
//! current training iteration (paper Eq. 1/2, Algorithm 1). The unequal
//! sharing shifts the jobs' communication phases apart iteration by
//! iteration — provably a gradient descent on an interleaving loss
//! (paper §4) — until contention disappears.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] (`mltcp-core`) — the pure algorithm: aggressiveness
//!   functions, Algorithm 1 iteration tracking, and the shift/loss/
//!   gradient/noise theory of §4.
//! * [`netsim`] (`mltcp-netsim`) — the deterministic packet-level
//!   network simulator standing in for the paper's GPU testbed.
//! * [`transport`] (`mltcp-transport`) — TCP with pluggable congestion
//!   control: Reno, CUBIC, DCTCP, and the MLTCP wrapper for each.
//! * [`workload`] (`mltcp-workload`) — the periodic DNN job model,
//!   GPT-2/GPT-3 profiles calibrated to the paper's figures, and the
//!   scenario harness.
//! * [`sched`] (`mltcp-sched`) — the baselines: a Cassini-style
//!   centralized interleaving optimizer, pFabric (SRPT), PIAS (MLFQ),
//!   and the §5 multi-resource generalization.
//!
//! ## Quickstart
//!
//! Two GPT-2 training jobs share a 50 Gbps bottleneck; under MLTCP-Reno
//! they interleave within a few iterations:
//!
//! ```
//! use mltcp::prelude::*;
//!
//! let rate = models::paper_bottleneck();
//! let mut b = ScenarioBuilder::new(42);
//! for job in models::gpt2_pack(rate, 1e-3, 8, 2) {
//!     b = b.job(job, CongestionSpec::MltcpReno(FnSpec::Paper));
//! }
//! let mut scenario = b.build();
//! scenario.run(SimTime::from_secs_f64(1.0));
//! assert!(scenario.all_finished());
//! for report in scenario.reports() {
//!     println!("{}: mean iteration {:.3} ms", report.name, report.mean_secs * 1e3);
//! }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/`
//! for the binaries that regenerate every figure in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mltcp_core as core;
pub use mltcp_netsim as netsim;
pub use mltcp_sched as sched;
pub use mltcp_transport as transport;
pub use mltcp_workload as workload;

/// The things almost every experiment needs, in one import.
pub mod prelude {
    pub use mltcp_core::aggressiveness::{Aggressiveness, FigureFunction, Linear};
    pub use mltcp_core::params::MltcpParams;
    pub use mltcp_netsim::fault::{FaultPlan, GilbertElliott, LossModel};
    pub use mltcp_netsim::link::Bandwidth;
    pub use mltcp_netsim::queue::QueueKind;
    pub use mltcp_netsim::time::{SimDuration, SimTime};
    pub use mltcp_workload::models;
    pub use mltcp_workload::scenario::{
        CongestionSpec, FnSpec, LinkFault, Scenario, ScenarioBuilder,
    };
    pub use mltcp_workload::stats::{speedup_at, IterationStats, JobReport};
    pub use mltcp_workload::{JobSpec, RestartSpec};
}
