//! The paper's Fig. 2 scenario: one GPT-3 job and three GPT-2 jobs share
//! a 50 Gbps bottleneck, compared under four schedulers:
//!
//! * plain TCP-Reno (uncoordinated),
//! * MLTCP-Reno (the paper's distributed technique),
//! * a Cassini-style centralized schedule (optimal offsets, enforced by
//!   pacing),
//! * pFabric (SRPT via priority queues — watch it punish J1, the job
//!   with the largest transfers).
//!
//! Run with: `cargo run --release --example four_jobs`

use mltcp::prelude::*;
use mltcp::sched::cassini;
use mltcp::sched::pfabric::apply_pfabric;

const SCALE: f64 = 1e-2;
const ITERS: u32 = 60;

fn jobs() -> Vec<JobSpec> {
    let rate = models::paper_bottleneck();
    models::fig2_mix(rate, SCALE, ITERS)
        .into_iter()
        .map(|j| {
            let noise = j.compute_time.mul_f64(0.01);
            j.with_noise(noise)
        })
        .collect()
}

fn report(label: &str, scenario: &Scenario) {
    println!("== {label}");
    for (i, r) in scenario.reports().iter().enumerate() {
        let ideal = scenario.ideal_period(i).as_secs_f64();
        println!(
            "  {:<14} steady {:>6.2} ms ({:.2}x ideal)",
            r.name,
            r.steady_secs * 1e3,
            r.steady_secs / ideal
        );
    }
}

fn main() {
    let rate = models::paper_bottleneck();
    let deadline = SimTime::from_secs_f64(1.8 * SCALE * f64::from(ITERS) * 4.0);

    // Plain Reno.
    let mut b = ScenarioBuilder::new(42);
    for j in jobs() {
        b = b.job(j, CongestionSpec::Reno);
    }
    let mut sc = b.build();
    sc.run(deadline);
    report("TCP-Reno (synchronized starts)", &sc);

    // MLTCP-Reno.
    let mut b = ScenarioBuilder::new(42);
    for j in jobs() {
        b = b.job(j, CongestionSpec::MltcpReno(FnSpec::Paper));
    }
    let mut sc = b.build();
    sc.run(deadline);
    report("MLTCP-Reno (distributed interleaving)", &sc);

    // Cassini-style: optimize comm-phase offsets, enforce them by pacing.
    let js = jobs();
    let periodic: Vec<_> = js.iter().map(|j| j.to_periodic(rate)).collect();
    let sched = cassini::optimize_offsets(&periodic, 240, 8192);
    println!(
        "(cassini found a fully interleaved plan: {})",
        sched.is_fully_interleaved()
    );
    let computes: Vec<_> = js.iter().map(|j| j.compute_time).collect();
    let periods: Vec<f64> = periodic.iter().map(|p| p.period).collect();
    let offsets = cassini::driver_offsets(&sched, &computes, &periods);
    let mut b = ScenarioBuilder::new(42);
    for (mut j, off) in js.into_iter().zip(offsets) {
        let pace = j.ideal_period(rate).mul_f64(1.16);
        j.start_offset = off.mul_f64(1.16);
        b = b.job(j.with_pace(pace), CongestionSpec::Reno);
    }
    let mut sc = b.build();
    sc.run(deadline);
    report("Cassini-style (centralized, enforced)", &sc);

    // pFabric.
    let mut b = ScenarioBuilder::new(42);
    for j in jobs() {
        b = b.job(j, CongestionSpec::Reno);
    }
    let mut sc = apply_pfabric(b, rate, SimDuration::micros(12)).build();
    sc.run(deadline);
    report("pFabric / SRPT (priority queues)", &sc);

    println!("\nPaper shape: Cassini is optimal; MLTCP approximates it without any");
    println!("controller; pFabric's SRPT slows J1 (the biggest transfers) ~1.5x.");
}
