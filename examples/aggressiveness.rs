//! The paper's Fig. 3 experiment: six candidate bandwidth aggressiveness
//! functions on three competing GPT-2 jobs. The increasing functions
//! (F1–F4) satisfy the paper's requirements and interleave the jobs; the
//! decreasing controls (F5, F6) violate requirement (ii) and do not.
//!
//! Run with: `cargo run --release --example aggressiveness`

use mltcp::core::aggressiveness::check_requirements;
use mltcp::prelude::*;

const SCALE: f64 = 1e-2;
const ITERS: u32 = 50;

fn main() {
    let rate = models::paper_bottleneck();
    println!(
        "{:<30} {:>6} {:>8} {:>9} {:>10}",
        "function", "incr?", "range", "early(ms)", "late(ms)"
    );
    for f in FigureFunction::ALL {
        // Static requirement check (paper §3.1's three requirements).
        let req = check_requirements(&f, 1001);

        // Dynamic run: 3 GPT-2 jobs under MLTCP-Reno with this F.
        let mut b = ScenarioBuilder::new(42);
        for j in models::gpt2_pack(rate, SCALE, ITERS, 3) {
            let noise = j.compute_time.mul_f64(0.01);
            b = b.job(
                j.with_noise(noise),
                CongestionSpec::MltcpReno(FnSpec::Figure(f.clone())),
            );
        }
        let mut sc = b.build();
        sc.run(SimTime::from_secs_f64(1.8 * SCALE * f64::from(ITERS) * 4.0));
        assert!(sc.all_finished());

        // Average the three jobs per iteration index, like the figure.
        let per_job: Vec<Vec<f64>> = (0..3).map(|i| sc.stats(i).durations().to_vec()).collect();
        let n = per_job.iter().map(Vec::len).min().unwrap_or(0);
        let avg: Vec<f64> = (0..n)
            .map(|k| per_job.iter().map(|d| d[k]).sum::<f64>() / 3.0)
            .collect();
        let early = avg.iter().take(5).sum::<f64>() / 5.0 * 1e3;
        let late = avg[n.saturating_sub(10)..].iter().sum::<f64>() / 10.0 * 1e3;

        println!(
            "{:<30} {:>6} {:>8.1} {:>9.2} {:>10.2}",
            f.name(),
            req.non_decreasing,
            req.dynamic_range,
            early,
            late
        );
    }
    println!("\nPaper shape: the increasing F1..F4 see iteration times fall (interleaving");
    println!("after ~20 iterations); the decreasing F5/F6 never improve.");
}
