//! Quickstart: six GPT-2 training jobs saturate a 50 Gbps bottleneck,
//! first under plain TCP-Reno, then under MLTCP-Reno — and the
//! difference the paper is about: MLTCP's jobs interleave and their
//! iteration times fall toward the isolated-job ideal, while Reno's fair
//! sharing preserves the congestion.
//!
//! Run with: `cargo run --release --example quickstart`

use mltcp::prelude::*;

fn run(cc: CongestionSpec, label: &str) {
    let rate = models::paper_bottleneck();
    // 1/100 of the paper's time scale: GPT-2 iterations are 18 ms here
    // instead of 1.8 s, so the whole experiment simulates in moments.
    let scale = 1e-2;
    let iters = 30;

    let mut builder = ScenarioBuilder::new(42);
    for job in models::gpt2_pack(rate, scale, iters, 6) {
        // 1% compute-time jitter — the tie-breaking noise every real
        // cluster has (and the paper's §4 noise model).
        let noise = job.compute_time.mul_f64(0.01);
        builder = builder.job(job.with_noise(noise), cc.clone());
    }
    let mut scenario = builder.build();
    scenario.run(SimTime::from_secs_f64(10.0));
    assert!(scenario.all_finished());

    println!("== {label}");
    let mut sum = 0.0;
    for (i, report) in scenario.reports().iter().enumerate() {
        let ideal = scenario.ideal_period(i).as_secs_f64();
        sum += report.steady_secs / ideal;
        println!(
            "  {}: mean {:.2} ms, steady {:.2} ms ({:.2}x ideal)",
            report.name,
            report.mean_secs * 1e3,
            report.steady_secs * 1e3,
            report.steady_secs / ideal,
        );
    }
    println!("  -> mean steady-state ratio: {:.2}x ideal", sum / 6.0);
}

fn main() {
    run(
        CongestionSpec::Reno,
        "TCP-Reno (jobs stay synchronized and contend)",
    );
    run(
        CongestionSpec::MltcpReno(FnSpec::Paper),
        "MLTCP-Reno (jobs slide apart and interleave)",
    );
    println!("\nMLTCP's steady-state iteration times should sit near 1.0x ideal;");
    println!("Reno's stay inflated because fair sharing preserves the overlap.");
}
