//! The paper's §5 coexistence question: does an MLTCP flow starve a
//! legacy Reno flow sharing the same bottleneck?
//!
//! Two identical GPT-2 jobs, one on MLTCP-Reno and one on plain Reno,
//! compete for a 50 Gbps link. MLTCP claims more bandwidth during
//! overlaps (the §5 unfairness), but because `F(bytes_ratio) ≥ 0.25 > 0`
//! the Reno job keeps a non-zero share and still completes every
//! iteration — and once the jobs interleave, both run near their ideal.
//!
//! Run with: `cargo run --release --example fairness`

use mltcp::prelude::*;

const SCALE: f64 = 1e-2;
const ITERS: u32 = 60;

fn main() {
    let rate = models::paper_bottleneck();
    let mut b = ScenarioBuilder::new(42);
    let mut jobs = models::gpt2_pack(rate, SCALE, ITERS, 2);
    jobs[0].name = "legacy (Reno)".into();
    jobs[1].name = "MLTCP-Reno".into();
    let ccs = [
        CongestionSpec::Reno,
        CongestionSpec::MltcpReno(FnSpec::Paper),
    ];
    for (j, cc) in jobs.into_iter().zip(ccs) {
        let noise = j.compute_time.mul_f64(0.01);
        b = b.job(j.with_noise(noise), cc);
    }
    let mut sc = b.build();
    sc.run(SimTime::from_secs_f64(1.8 * SCALE * f64::from(ITERS) * 4.0));
    assert!(sc.all_finished(), "the legacy flow must not be starved");

    for (i, r) in sc.reports().iter().enumerate() {
        let ideal = sc.ideal_period(i).as_secs_f64();
        println!(
            "{:<16} completed {:>3} iterations, mean {:.2} ms, steady {:.2}x ideal",
            r.name,
            r.iterations,
            r.mean_secs * 1e3,
            r.steady_secs / ideal
        );
    }
    let legacy = sc.stats(0);
    let mltcp = sc.stats(1);
    println!(
        "\nmean iteration ratio legacy/mltcp: {:.2} (>1 = MLTCP got the better share)",
        legacy.mean() / mltcp.mean()
    );
    println!("Non-starvation (§5): F has a positive intercept, so the legacy flow");
    println!("always keeps a share; for latency-critical traffic the paper suggests");
    println!("separate traffic classes via the NCCL-plugin CC selection.");
}
