//! The paper's Fig. 4 scenario: six identical GPT-2 jobs share the
//! bottleneck. Under Reno they stay congested; under MLTCP-Reno they
//! interleave, and the iteration-time distribution tightens — the paper
//! reports a 1.59× tail speedup.
//!
//! Run with: `cargo run --release --example six_jobs`

use mltcp::prelude::*;

const SCALE: f64 = 1e-2;
const ITERS: u32 = 80;

fn run(cc: CongestionSpec) -> IterationStats {
    let rate = models::paper_bottleneck();
    let mut b = ScenarioBuilder::new(42);
    for j in models::gpt2_pack(rate, SCALE, ITERS, 6) {
        let noise = j.compute_time.mul_f64(0.01);
        b = b.job(j.with_noise(noise), cc.clone());
    }
    let mut sc = b.build();
    sc.run(SimTime::from_secs_f64(1.8 * SCALE * f64::from(ITERS) * 4.0));
    assert!(sc.all_finished());
    // Pool all six jobs' iteration times, as the Fig. 4(c) CDF does.
    let pooled: Vec<f64> = (0..6)
        .flat_map(|i| sc.stats(i).durations().to_vec())
        .collect();
    IterationStats::from_durations(pooled)
}

fn main() {
    let reno = run(CongestionSpec::Reno);
    let mltcp = run(CongestionSpec::MltcpReno(FnSpec::Paper));

    println!("six GPT-2 jobs, pooled iteration times (ms):");
    println!(
        "  reno : mean {:>6.2}  p50 {:>6.2}  p95 {:>6.2}  p99 {:>6.2}",
        reno.mean() * 1e3,
        reno.percentile(0.50) * 1e3,
        reno.percentile(0.95) * 1e3,
        reno.percentile(0.99) * 1e3
    );
    println!(
        "  mltcp: mean {:>6.2}  p50 {:>6.2}  p95 {:>6.2}  p99 {:>6.2}",
        mltcp.mean() * 1e3,
        mltcp.percentile(0.50) * 1e3,
        mltcp.percentile(0.95) * 1e3,
        mltcp.percentile(0.99) * 1e3
    );
    println!(
        "  speedups (reno/mltcp): mean {:.2}x, median {:.2}x, p95 {:.2}x",
        reno.mean() / mltcp.mean(),
        speedup_at(&reno, &mltcp, 0.50),
        speedup_at(&reno, &mltcp, 0.95),
    );
    println!("\nPaper Fig. 4(c): 1.59x tail iteration-time speedup for MLTCP over Reno.");
}
