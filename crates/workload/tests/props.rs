//! Property-based tests over the workload layer: statistics invariants
//! and driver/scenario behaviour under randomized job geometry.

use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_workload::scenario::{CongestionSpec, ScenarioBuilder};
use mltcp_workload::stats::{speedup_at, IterationStats};
use mltcp_workload::JobSpec;
use proptest::prelude::*;

proptest! {
    /// Percentiles are order statistics: bounded by min/max, monotone in p.
    #[test]
    fn percentiles_are_monotone_order_statistics(
        xs in proptest::collection::vec(0.001f64..100.0, 1..200),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let s = IterationStats::from_durations(xs.clone());
        let mn = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = xs.iter().copied().fold(0.0, f64::max);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-12);
        prop_assert!(s.percentile(0.0) >= mn - 1e-12);
        prop_assert!(s.percentile(1.0) <= mx + 1e-12);
        prop_assert!((mn..=mx).contains(&s.mean()) || xs.len() == 1);
    }

    /// The CDF is a proper distribution function over the sample.
    #[test]
    fn cdf_is_monotone_to_one(xs in proptest::collection::vec(0.001f64..100.0, 1..200)) {
        let s = IterationStats::from_durations(xs);
        let cdf = s.cdf();
        prop_assert!((cdf.last().expect("nonempty").1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
    }

    /// Speedup is antisymmetric: speedup(a,b) * speedup(b,a) == 1.
    #[test]
    fn speedup_antisymmetry(
        xs in proptest::collection::vec(0.01f64..10.0, 2..50),
        ys in proptest::collection::vec(0.01f64..10.0, 2..50),
        p in 0.0f64..1.0,
    ) {
        let a = IterationStats::from_durations(xs);
        let b = IterationStats::from_durations(ys);
        let prod = speedup_at(&a, &b, p) * speedup_at(&b, &a, p);
        prop_assert!((prod - 1.0).abs() < 1e-9);
    }

    /// Tail mean with k >= len equals the full mean.
    #[test]
    fn tail_mean_saturates(xs in proptest::collection::vec(0.01f64..10.0, 1..50)) {
        let s = IterationStats::from_durations(xs);
        prop_assert!((s.tail_mean(10_000) - s.mean()).abs() < 1e-9);
    }

    /// JobSpec geometry identities for arbitrary valid jobs: T = compute
    /// + comm, a ∈ (0, 1), and the PeriodicJob projection agrees.
    #[test]
    fn jobspec_geometry_identities(
        compute_us in 10u64..1_000_000,
        kb in 1u64..1_000_000,
        bursts in 1u32..5,
        flows in 1usize..4,
    ) {
        let rate = Bandwidth::gbps(50);
        let j = JobSpec::new("j", SimDuration::micros(compute_us), kb * 1000, 5)
            .with_bursts(bursts)
            .with_flows(flows);
        let t = j.ideal_period(rate).as_secs_f64();
        let comm = j.ideal_comm_time(rate).as_secs_f64();
        let comp = j.compute_time.as_secs_f64();
        prop_assert!((t - (comm + comp)).abs() < 1e-9);
        let a = j.comm_fraction(rate);
        prop_assert!(a > 0.0 && a < 1.0);
        let p = j.to_periodic(rate);
        prop_assert!((p.period - t).abs() < 1e-9);
        prop_assert!((p.comm_fraction - a).abs() < 1e-9);
        prop_assert_eq!(p.bursts, bursts);
        // Per-flow byte split conserves (within integer division slack).
        prop_assert!(j.bytes_per_flow() * flows as u64 <= j.bytes_per_iter);
        let rem = j.bytes_per_iter - j.bytes_per_flow() * flows as u64;
        prop_assert!(rem < flows as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any small random job mix (possibly multi-burst, noisy, offset)
    /// runs to completion and records exactly `iterations` records per
    /// job, with strictly increasing iteration timestamps.
    #[test]
    fn random_mixes_complete_with_exact_records(
        n_jobs in 1usize..4,
        bursts in 1u32..3,
        comm_us in 50u64..400,
        compute_us in 500u64..2_000,
        seed in 0u64..1_000,
    ) {
        let bytes = comm_us * 50_000 / 8; // comm_us at 50 Gbps
        let iters = 4u32;
        let mut b = ScenarioBuilder::new(seed);
        for i in 0..n_jobs {
            let j = JobSpec::new(
                format!("j{i}"),
                SimDuration::micros(compute_us),
                bytes,
                iters,
            )
            .with_bursts(bursts)
            .with_offset(SimDuration::micros(i as u64 * 37))
            .with_noise(SimDuration::micros(compute_us / 100));
            b = b.job(j, CongestionSpec::Reno);
        }
        let mut sc = b.build();
        sc.run(SimTime::from_secs_f64(5.0));
        prop_assert!(sc.all_finished());
        for i in 0..n_jobs {
            let stats = sc.stats(i);
            prop_assert_eq!(stats.len(), iters as usize);
            prop_assert!(stats.durations().iter().all(|&d| d > 0.0));
            let starts = sc.comm_starts_secs(i);
            prop_assert_eq!(starts.len(), iters as usize);
            for w in starts.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
