//! The model zoo: job profiles calibrated to the paper's figures.
//!
//! The paper's testbed jobs (Figs. 1–2): `J1` trains GPT-3 across two GPU
//! servers with ideal iteration time 1.2 s, and `J2..J4` are identical
//! GPT-2 instances with ideal iteration time 1.8 s, all sharing a 50 Gbps
//! bottleneck. From Fig. 2(a)'s optimal schedule geometry (three GPT-2
//! comm phases plus ~1.5 GPT-3 comm phases packed per 1.8 s with zero
//! contention — the mix is exactly *compatible*, Σa = 1) we calibrate:
//!
//! * GPT-3: `a = 1/2` — comm 0.6 s, compute 0.6 s, 3.75 GB/iteration.
//! * GPT-2: `a = 1/6` — comm 0.3 s, compute 1.5 s, 1.875 GB/iteration.
//!
//! Every constructor takes a `time_scale` so the same geometry can run at
//! millisecond scale for fast tests (`scale = 1e-3`) or at the paper's
//! native second scale for the figure binaries. Byte counts scale
//! linearly with time so the rate demand is invariant.

use crate::job::JobSpec;
use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::time::SimDuration;

/// The paper's bottleneck rate (50 Gbps).
pub fn paper_bottleneck() -> Bandwidth {
    Bandwidth::gbps(50)
}

fn scaled(secs: f64, scale: f64) -> SimDuration {
    SimDuration::from_secs_f64(secs * scale)
}

fn scaled_bytes(comm_secs: f64, scale: f64, rate: Bandwidth) -> u64 {
    (comm_secs * scale * rate.as_bps() as f64 / 8.0).round() as u64
}

/// `J1` of Figs. 1–2: a GPT-3 training job. `T = 1.2·scale` s, `a = 1/2`,
/// with the communication split into **two sub-bursts** per iteration, as
/// the Fig. 1(a) traffic pattern shows. The split is also what makes the
/// Fig. 2 mix tileable: a single contiguous 0.6 s comm phase on a 1.2 s
/// period leaves only one 0.6 s free window per period, and a 1.8 s-period
/// GPT-2 job alternates between two tracks 0.6 s apart — so one of its
/// bursts would always collide. With J1's comm split 2×0.3 s, the
/// hyperperiod tiles exactly (see `mltcp-sched::cassini` tests).
pub fn gpt3(rate: Bandwidth, scale: f64, iterations: u32) -> JobSpec {
    JobSpec::new(
        "J1 (GPT-3)",
        scaled(0.6, scale),
        scaled_bytes(0.6, scale, rate),
        iterations,
    )
    .with_bursts(2)
}

/// `J2..J4` of Figs. 1–2 (and the Fig. 3/4 jobs): a GPT-2 training job.
/// `T = 1.8·scale` s, comm 0.25 s (`a ≈ 0.139`).
///
/// Calibration note: the comm phase is sized slightly below the 0.3 s
/// free windows J1's 2-burst pattern leaves per 0.6 s (see [`gpt3`]), so
/// the Fig. 2 mix tiles *with slack* — a zero-slack packing is
/// measure-zero and no real transport (the paper's testbed included)
/// holds it under drift.
pub fn gpt2(rate: Bandwidth, scale: f64, iterations: u32) -> JobSpec {
    JobSpec::new(
        "GPT-2",
        scaled(1.55, scale),
        scaled_bytes(0.25, scale, rate),
        iterations,
    )
}

/// A BERT-large-like fine-tuning profile: shorter iterations, moderate
/// communication (`T = 0.6·scale` s, `a = 1/4`). Not from the paper's
/// figures; used by the repository's extension experiments.
pub fn bert(rate: Bandwidth, scale: f64, iterations: u32) -> JobSpec {
    JobSpec::new(
        "BERT",
        scaled(0.45, scale),
        scaled_bytes(0.15, scale, rate),
        iterations,
    )
}

/// A VGG-like vision job: communication-heavy (`T = 0.9·scale` s,
/// `a = 1/3`). Extension experiments only.
pub fn vgg(rate: Bandwidth, scale: f64, iterations: u32) -> JobSpec {
    JobSpec::new(
        "VGG",
        scaled(0.6, scale),
        scaled_bytes(0.3, scale, rate),
        iterations,
    )
}

/// The Fig. 2 four-job mix: one GPT-3 + three GPT-2, all starting their
/// first communication phase simultaneously (the paper's "for simplicity"
/// scenario).
pub fn fig2_mix(rate: Bandwidth, scale: f64, iterations: u32) -> Vec<JobSpec> {
    let mut jobs = vec![gpt3(rate, scale, iterations)];
    for i in 2..=4 {
        let mut j = gpt2(rate, scale, iterations);
        j.name = format!("J{i} (GPT-2)");
        jobs.push(j);
    }
    jobs
}

/// `n` identical GPT-2 jobs (Fig. 3 uses n = 3, Fig. 4 uses n = 6).
pub fn gpt2_pack(rate: Bandwidth, scale: f64, iterations: u32, n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let mut j = gpt2(rate, scale, iterations);
            j.name = format!("Job{} (GPT-2)", i + 1);
            j
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltcp_core::schedule::{is_compatible, total_comm_demand};

    #[test]
    fn gpt3_geometry_matches_paper() {
        let rate = paper_bottleneck();
        let j = gpt3(rate, 1.0, 10);
        assert!((j.ideal_period(rate).as_secs_f64() - 1.2).abs() < 1e-6);
        assert!((j.comm_fraction(rate) - 0.5).abs() < 1e-6);
        // 0.6 s at 50 Gbps = 3.75 GB.
        assert_eq!(j.bytes_per_iter, 3_750_000_000);
    }

    #[test]
    fn gpt2_geometry_matches_paper() {
        let rate = paper_bottleneck();
        let j = gpt2(rate, 1.0, 10);
        assert!((j.ideal_period(rate).as_secs_f64() - 1.8).abs() < 1e-6);
        assert!((j.comm_fraction(rate) - 0.25 / 1.8).abs() < 1e-6);
    }

    #[test]
    fn scale_preserves_geometry() {
        let rate = paper_bottleneck();
        for scale in [1.0, 1e-1, 1e-2, 1e-3] {
            let j = gpt2(rate, scale, 10);
            assert!(
                (j.comm_fraction(rate) - 0.25 / 1.8).abs() < 1e-3,
                "scale={scale}: a={}",
                j.comm_fraction(rate)
            );
            assert!(
                (j.ideal_period(rate).as_secs_f64() - 1.8 * scale).abs() < 1e-9 * scale.max(1.0)
            );
        }
    }

    #[test]
    fn fig2_mix_is_compatible_with_slack() {
        // Σa = 1/2 + 3×(0.25/1.8) ≈ 0.917: compatible, with the ~8% slack
        // a real transport needs to hold a tiling under drift.
        let rate = paper_bottleneck();
        let jobs = fig2_mix(rate, 1e-3, 10);
        assert_eq!(jobs.len(), 4);
        let periodic: Vec<_> = jobs.iter().map(|j| j.to_periodic(rate)).collect();
        assert!(is_compatible(&periodic));
        let demand = total_comm_demand(&periodic);
        assert!((0.88..0.95).contains(&demand), "demand={demand}");
    }

    #[test]
    fn six_gpt2_nearly_fill_the_link() {
        let rate = paper_bottleneck();
        let jobs = gpt2_pack(rate, 1e-3, 10, 6);
        let periodic: Vec<_> = jobs.iter().map(|j| j.to_periodic(rate)).collect();
        let demand = total_comm_demand(&periodic);
        assert!((0.80..0.86).contains(&demand), "demand={demand}");
    }

    #[test]
    fn names_are_distinct_in_packs() {
        let jobs = gpt2_pack(paper_bottleneck(), 1.0, 1, 3);
        assert_eq!(jobs[0].name, "Job1 (GPT-2)");
        assert_eq!(jobs[2].name, "Job3 (GPT-2)");
    }
}
