//! One-stop experiment harness: dumbbell topology + jobs + congestion
//! control choices → a runnable simulation.
//!
//! Every experiment in the repository (paper figures, ablations, tests)
//! is an instance of the same shape: N jobs, each with its own
//! sender/receiver host pair, sharing one bottleneck link under some
//! queue discipline, with some congestion control per job. The builder
//! assembles that and hands back per-job handles for analysis.

use crate::driver::JobDriver;
use crate::job::JobSpec;
use crate::stats::{IterationStats, JobReport};
use mltcp_core::aggressiveness::{Aggressiveness, FigureFunction, Linear};
use mltcp_core::params::MltcpParams;
use mltcp_netsim::event::EngineKind;
use mltcp_netsim::fault::{FaultPlan, GilbertElliott, LossModel};
use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::packet::FlowId;
use mltcp_netsim::queue::QueueKind;
use mltcp_netsim::sim::{AgentId, Simulator};
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_netsim::topology::{build_dumbbell, Dumbbell, DumbbellSpec};
use mltcp_transport::cc::{Cubic, Dctcp, Mltcp, MltcpConfig, Reno, Swift};
use mltcp_transport::sender::{PriorityPolicy, SenderConfig, TcpSender};
use mltcp_transport::TcpReceiver;
use serde::{Deserialize, Serialize};

/// A serializable choice of bandwidth aggressiveness function.
///
/// Implements [`Aggressiveness`] directly so it can be handed to
/// [`Mltcp::new`] without boxing gymnastics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FnSpec {
    /// The paper's deployed default: `1.75·r + 0.25`.
    Paper,
    /// One of the six Fig. 3 candidates.
    Figure(FigureFunction),
    /// A custom linear function.
    Linear {
        /// Slope.
        slope: f64,
        /// Intercept.
        intercept: f64,
    },
    /// A constant gain (1.0 degenerates to the base algorithm).
    Constant(f64),
}

impl Aggressiveness for FnSpec {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        match self {
            FnSpec::Paper => Linear::paper_default().eval(bytes_ratio),
            FnSpec::Figure(f) => f.eval(bytes_ratio),
            FnSpec::Linear { slope, intercept } => MltcpParams::new(*slope, *intercept)
                .map(|p| Linear::new(p).eval(bytes_ratio))
                .unwrap_or(1.0),
            FnSpec::Constant(c) => *c,
        }
    }

    fn name(&self) -> &str {
        match self {
            FnSpec::Paper => "F1: 1.75r + 0.25 (paper)",
            FnSpec::Figure(f) => f.name(),
            FnSpec::Linear { .. } => "linear (custom)",
            FnSpec::Constant(_) => "constant",
        }
    }
}

/// A serializable choice of congestion control per job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CongestionSpec {
    /// Plain TCP Reno.
    Reno,
    /// Plain CUBIC.
    Cubic,
    /// Plain DCTCP (pair with an ECN-marking bottleneck queue).
    Dctcp,
    /// MLTCP over Reno (the paper's MLTCP-Reno).
    MltcpReno(FnSpec),
    /// MLTCP over CUBIC.
    MltcpCubic(FnSpec),
    /// MLTCP over DCTCP.
    MltcpDctcp(FnSpec),
    /// Swift-style delay-based CC with the given target RTT (µs).
    Swift {
        /// Target queueing-inclusive RTT in microseconds.
        target_us: u64,
    },
    /// MLTCP over Swift.
    MltcpSwift {
        /// Target queueing-inclusive RTT in microseconds.
        target_us: u64,
        /// The aggressiveness function.
        f: FnSpec,
    },
}

impl CongestionSpec {
    /// Whether the spec requires ECN-capable senders and marking queues.
    pub fn needs_ecn(&self) -> bool {
        matches!(self, CongestionSpec::Dctcp | CongestionSpec::MltcpDctcp(_))
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CongestionSpec::Reno => "reno",
            CongestionSpec::Cubic => "cubic",
            CongestionSpec::Dctcp => "dctcp",
            CongestionSpec::MltcpReno(_) => "mltcp-reno",
            CongestionSpec::MltcpCubic(_) => "mltcp-cubic",
            CongestionSpec::MltcpDctcp(_) => "mltcp-dctcp",
            CongestionSpec::Swift { .. } => "swift",
            CongestionSpec::MltcpSwift { .. } => "mltcp-swift",
        }
    }

    fn build(
        &self,
        oracle: Option<(u64, SimDuration, Option<f64>)>,
    ) -> Box<dyn mltcp_transport::CongestionControl> {
        let cfg = match oracle {
            Some((bytes, comp, multiburst)) => MltcpConfig {
                multiburst_frac: multiburst,
                ..MltcpConfig::oracle(bytes, comp)
            },
            None => MltcpConfig::autotune(),
        };
        match self {
            CongestionSpec::Reno => Box::new(Reno::new()),
            CongestionSpec::Cubic => Box::new(Cubic::new()),
            CongestionSpec::Dctcp => Box::new(Dctcp::new()),
            CongestionSpec::MltcpReno(f) => Box::new(Mltcp::new(Reno::new(), f.clone(), cfg)),
            CongestionSpec::MltcpCubic(f) => Box::new(Mltcp::new(Cubic::new(), f.clone(), cfg)),
            CongestionSpec::MltcpDctcp(f) => Box::new(Mltcp::new(Dctcp::new(), f.clone(), cfg)),
            CongestionSpec::Swift { target_us } => {
                Box::new(Swift::new(SimDuration::micros(*target_us)))
            }
            CongestionSpec::MltcpSwift { target_us, f } => Box::new(Mltcp::new(
                Swift::new(SimDuration::micros(*target_us)),
                f.clone(),
                cfg,
            )),
        }
    }
}

/// A fault applied to the shared bottleneck (both directions, so data
/// and acks are hit symmetrically — a real link failure takes out the
/// whole cable, not one fibre).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkFault {
    /// Full outage: link down at `at`, back up `duration` later.
    Down {
        /// Fault onset (simulated time).
        at: SimTime,
        /// Outage length.
        duration: SimDuration,
    },
    /// Bandwidth brownout: serialization runs at `factor` × nominal rate
    /// during the window.
    Brownout {
        /// Fault onset (simulated time).
        at: SimTime,
        /// Window length.
        duration: SimDuration,
        /// Rate multiplier in (0, 1] — e.g. 0.25 = quarter speed.
        factor: f64,
    },
    /// Bursty (Gilbert–Elliott) loss replaces the link's loss model
    /// during the window, then the configured model is restored.
    BurstyLoss {
        /// Fault onset (simulated time).
        at: SimTime,
        /// Window length.
        duration: SimDuration,
        /// The two-state loss model to apply.
        model: GilbertElliott,
    },
}

/// Handles to one installed job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    /// Job name (from the spec).
    pub name: String,
    /// The driver agent.
    pub driver: AgentId,
    /// Transport senders, one per flow.
    pub senders: Vec<AgentId>,
    /// The flow ids, one per flow.
    pub flows: Vec<FlowId>,
    /// The spec as installed.
    pub spec: JobSpec,
}

/// Builder for a dumbbell experiment.
#[derive(Debug)]
pub struct ScenarioBuilder {
    bottleneck: Bandwidth,
    edge: Bandwidth,
    hop_delay: SimDuration,
    bottleneck_queue: Option<QueueKind>,
    seed: u64,
    jobs: Vec<(JobSpec, CongestionSpec)>,
    priority: PriorityPolicy,
    min_rto: Option<SimDuration>,
    max_rto: Option<SimDuration>,
    /// Oracle COMP_TIME = this fraction of the job's compute phase.
    comp_threshold_frac: f64,
    /// Use autotune (learned TOTAL_BYTES/COMP_TIME) instead of oracle.
    autotune: bool,
    trace_bin: Option<SimDuration>,
    slow_start_restart: bool,
    initial_cwnd: f64,
    faults: Vec<LinkFault>,
    engine: Option<EngineKind>,
}

impl ScenarioBuilder {
    /// A 50 Gbps-bottleneck dumbbell (the paper's testbed link rate) with
    /// 2 µs/hop delay and 100 Gbps edges.
    pub fn new(seed: u64) -> Self {
        Self {
            bottleneck: Bandwidth::gbps(50),
            edge: Bandwidth::gbps(100),
            hop_delay: SimDuration::micros(2),
            bottleneck_queue: None,
            seed,
            jobs: Vec::new(),
            priority: PriorityPolicy::None,
            min_rto: None,
            max_rto: None,
            comp_threshold_frac: 0.25,
            autotune: false,
            trace_bin: None,
            slow_start_restart: true,
            initial_cwnd: 10.0,
            faults: Vec::new(),
            engine: None,
        }
    }

    /// Overrides the bottleneck rate.
    pub fn bottleneck(mut self, rate: Bandwidth) -> Self {
        self.bottleneck = rate;
        self
    }

    /// Overrides the edge (host↔switch) rate.
    pub fn edge(mut self, rate: Bandwidth) -> Self {
        self.edge = rate;
        self
    }

    /// Overrides the per-hop propagation delay.
    pub fn hop_delay(mut self, d: SimDuration) -> Self {
        self.hop_delay = d;
        self
    }

    /// Overrides the bottleneck queue discipline (default: drop-tail with
    /// ~2 BDP of buffering).
    pub fn bottleneck_queue(mut self, q: QueueKind) -> Self {
        self.bottleneck_queue = Some(q);
        self
    }

    /// Applies a priority-tagging policy to *all* senders (pFabric/PIAS
    /// scenarios; pair with a [`QueueKind::StrictPriority`] bottleneck).
    pub fn priority_policy(mut self, p: PriorityPolicy) -> Self {
        self.priority = p;
        self
    }

    /// Overrides the RTO floor (default: `max(20 × hop_delay, 50 µs)`).
    pub fn min_rto(mut self, d: SimDuration) -> Self {
        self.min_rto = Some(d);
        self
    }

    /// Overrides the RTO backoff ceiling (default 4 s). Fault experiments
    /// set this to ~one iteration period so senders probe a repaired link
    /// promptly instead of overshooting the outage by a full doubling.
    pub fn max_rto(mut self, d: SimDuration) -> Self {
        self.max_rto = Some(d);
        self
    }

    /// Sets the oracle COMP_TIME threshold as a fraction of each job's
    /// compute phase (default 0.25).
    pub fn comp_threshold_frac(mut self, f: f64) -> Self {
        self.comp_threshold_frac = f.clamp(0.01, 0.95);
        self
    }

    /// Makes MLTCP flows learn TOTAL_BYTES/COMP_TIME online instead of
    /// receiving them from the job profile.
    pub fn autotune(mut self, on: bool) -> Self {
        self.autotune = on;
        self
    }

    /// Enables bottleneck bandwidth tracing with the given bin width.
    pub fn trace(mut self, bin: SimDuration) -> Self {
        self.trace_bin = Some(bin);
        self
    }

    /// Enables/disables slow-start-after-idle on all senders.
    ///
    /// Default **on**, matching Linux (`tcp_slow_start_after_idle = 1`):
    /// a sender that idled through a compute phase re-enters slow start
    /// instead of blasting its stale window into the bottleneck. This is
    /// also the regime in which MLTCP's ack-clocked differentiation acts
    /// cleanly (a stale-window burst is indiscriminate).
    pub fn slow_start_restart(mut self, on: bool) -> Self {
        self.slow_start_restart = on;
        self
    }

    /// Overrides the initial congestion window in packets (default 10).
    /// pFabric-style minimal transports start near the path BDP instead.
    pub fn initial_cwnd(mut self, pkts: f64) -> Self {
        self.initial_cwnd = pkts.max(1.0);
        self
    }

    /// Pins the event engine instead of reading `MLTCP_ENGINE` from the
    /// environment. Both engines replay bit-for-bit identically; pinning
    /// lets one process benchmark heap and wheel side by side.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Adds a job with its congestion control.
    pub fn job(mut self, spec: JobSpec, cc: CongestionSpec) -> Self {
        self.jobs.push((spec, cc));
        self
    }

    /// Schedules a fault on the bottleneck (applied to both the forward
    /// and the reverse channel). May be called multiple times;
    /// fault windows compose in schedule order.
    pub fn bottleneck_fault(mut self, fault: LinkFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Assembles the simulation.
    pub fn build(self) -> Scenario {
        assert!(!self.jobs.is_empty(), "scenario needs at least one job");
        let total_flows: usize = self.jobs.iter().map(|(j, _)| j.flows).sum();
        let rtt_floor = SimDuration(self.hop_delay.as_nanos() * 6);
        let default_queue = QueueKind::DropTail {
            cap_bytes: (self.bottleneck.bdp_bytes(rtt_floor) * 2).max(150_000),
        };
        let (topo, dumbbell) = build_dumbbell(DumbbellSpec {
            pairs: total_flows,
            bottleneck_rate: self.bottleneck,
            edge_rate: self.edge,
            hop_delay: self.hop_delay,
            bottleneck_queue: self.bottleneck_queue.unwrap_or(default_queue),
            edge_queue: QueueKind::DropTail {
                cap_bytes: 4_000_000,
            },
        });
        let mut sim = match self.engine {
            Some(engine) => Simulator::with_engine(topo, self.seed, engine),
            None => Simulator::new(topo, self.seed),
        };
        if let Some(bin) = self.trace_bin {
            sim.enable_trace(dumbbell.bottleneck, bin);
        }
        if !self.faults.is_empty() {
            let mut plan = FaultPlan::new();
            for f in &self.faults {
                for link in [dumbbell.bottleneck, dumbbell.reverse] {
                    plan = match *f {
                        LinkFault::Down { at, duration } => plan.link_flap(link, at, duration),
                        LinkFault::Brownout {
                            at,
                            duration,
                            factor,
                        } => plan.brownout(link, at, duration, factor),
                        LinkFault::BurstyLoss {
                            at,
                            duration,
                            model,
                        } => plan.loss_window(link, at, duration, LossModel::GilbertElliott(model)),
                    };
                }
            }
            sim.install_faults(&plan);
        }
        let min_rto = self
            .min_rto
            .unwrap_or(SimDuration((self.hop_delay.as_nanos() * 20).max(50_000)));

        let mut handles = Vec::new();
        let mut pair_idx = 0usize;
        let mut next_flow = 1u64;
        for (job_idx, (spec, cc_spec)) in self.jobs.iter().enumerate() {
            // Driver lives on the job's first sender host.
            let driver_host = dumbbell.senders[pair_idx];
            let driver = sim.add_agent(
                driver_host,
                JobDriver::new(spec.clone(), self.seed.wrapping_mul(1000) + job_idx as u64)
                    .with_job_id(job_idx as u32),
            );
            let mut senders = Vec::new();
            let mut flows = Vec::new();
            let oracle = if self.autotune {
                None
            } else {
                // Multi-burst iterations use the full per-iteration byte
                // count with the multi-burst gate (a long gap only resets
                // after ~90% of the iteration's bytes); the gap threshold
                // is a fraction of the compute *slice* either way.
                let bursts = u64::from(spec.bursts.max(1));
                let gate = if bursts > 1 { Some(0.9) } else { None };
                Some((
                    spec.bytes_per_flow(),
                    spec.compute_time
                        .mul_f64(self.comp_threshold_frac / bursts as f64),
                    gate,
                ))
            };
            for _ in 0..spec.flows {
                let src = dumbbell.senders[pair_idx];
                let dst = dumbbell.receivers[pair_idx];
                pair_idx += 1;
                let flow = FlowId(next_flow);
                next_flow += 1;
                let mut cfg = SenderConfig::new(flow, dst);
                cfg.driver = Some(driver);
                cfg.job = job_idx as u32;
                cfg.priority = self.priority.clone();
                cfg.ecn = cc_spec.needs_ecn();
                cfg.min_rto = min_rto;
                if let Some(m) = self.max_rto {
                    cfg.max_rto = m.max(min_rto);
                }
                cfg.slow_start_restart = self.slow_start_restart;
                cfg.initial_cwnd = self.initial_cwnd;
                let sender = sim.add_agent(src, TcpSender::new_boxed(cfg, cc_spec.build(oracle)));
                let receiver = sim.add_agent(dst, TcpReceiver::new(flow));
                sim.bind_flow(flow, sender);
                sim.bind_flow(flow, receiver);
                senders.push(sender);
                flows.push(flow);
            }
            sim.agent_mut::<JobDriver>(driver)
                .wire_senders(senders.clone());
            handles.push(JobHandle {
                name: spec.name.clone(),
                driver,
                senders,
                flows,
                spec: spec.clone(),
            });
        }
        Scenario {
            sim,
            jobs: handles,
            dumbbell,
            bottleneck: self.bottleneck,
        }
    }
}

/// A built, runnable experiment.
pub struct Scenario {
    /// The simulator (exposed for custom instrumentation).
    pub sim: Simulator,
    /// Per-job handles, in insertion order.
    pub jobs: Vec<JobHandle>,
    /// Topology handles (bottleneck link id etc.).
    pub dumbbell: Dumbbell,
    /// The bottleneck rate.
    pub bottleneck: Bandwidth,
}

impl Scenario {
    /// Runs until every job finished its iterations (or `deadline` in
    /// simulated time passes, as a hang backstop).
    pub fn run(&mut self, deadline: SimTime) {
        // Advance in slices so we can stop as soon as all jobs finish.
        let slice = SimDuration::millis(5);
        let mut next = self.sim.now() + slice;
        loop {
            self.sim.run_until(next.min(deadline));
            let done = self
                .jobs
                .iter()
                .all(|j| self.sim.agent::<JobDriver>(j.driver).is_finished());
            if done || self.sim.now() >= deadline {
                return;
            }
            next = self.sim.now() + slice;
        }
    }

    /// Installs a telemetry sink, first registering every job's
    /// `(index, name)` pair so traces are self-describing. Replaces any
    /// previous sink. Sinks observe without perturbing: a run with any
    /// sink attached is event-for-event identical to one without.
    pub fn set_telemetry(&mut self, mut sink: Box<dyn mltcp_telemetry::TelemetrySink>) {
        for (idx, job) in self.jobs.iter().enumerate() {
            sink.job_name(idx as u32, &job.name);
        }
        self.sim.set_sink(sink);
    }

    /// Detaches the telemetry sink (flushed), e.g. to downcast a
    /// recorder or extract a metrics snapshot after the run.
    pub fn take_telemetry(&mut self) -> Option<Box<dyn mltcp_telemetry::TelemetrySink>> {
        self.sim.take_sink()
    }

    /// Whether every job completed all its iterations.
    pub fn all_finished(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| self.sim.agent::<JobDriver>(j.driver).is_finished())
    }

    /// Iteration statistics for job `idx`.
    pub fn stats(&self, idx: usize) -> IterationStats {
        let driver = self.sim.agent::<JobDriver>(self.jobs[idx].driver);
        IterationStats::from_records(driver.records())
    }

    /// Reports for all jobs.
    pub fn reports(&self) -> Vec<JobReport> {
        (0..self.jobs.len())
            .map(|i| JobReport::new(self.jobs[i].name.clone(), &self.stats(i)))
            .collect()
    }

    /// Communication-phase start times of job `idx` (seconds).
    pub fn comm_starts_secs(&self, idx: usize) -> Vec<f64> {
        self.sim
            .agent::<JobDriver>(self.jobs[idx].driver)
            .comm_starts()
            .iter()
            .map(|t| t.as_secs_f64())
            .collect()
    }

    /// The ideal iteration time of job `idx` on this bottleneck.
    pub fn ideal_period(&self, idx: usize) -> SimDuration {
        self.jobs[idx].spec.ideal_period(self.bottleneck)
    }

    /// Where job `idx` resumed after its crash/restart fault, if any.
    pub fn restart_resume(&self, idx: usize) -> Option<(u32, SimTime)> {
        self.sim
            .agent::<JobDriver>(self.jobs[idx].driver)
            .restart_resume()
    }

    /// Iterations job `idx` needed to re-interleave after its restart
    /// (see [`JobDriver::iterations_to_reinterleave`]).
    pub fn iterations_to_reinterleave(&self, idx: usize, rel_tol: f64) -> Option<u32> {
        self.sim
            .agent::<JobDriver>(self.jobs[idx].driver)
            .iterations_to_reinterleave(rel_tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn fnspec_dispatch_matches_components() {
        assert_eq!(FnSpec::Paper.eval(0.4), 1.75 * 0.4 + 0.25);
        assert_eq!(
            FnSpec::Figure(FigureFunction::F5).eval(0.4),
            -1.75 * 0.4 + 2.0
        );
        assert_eq!(
            FnSpec::Linear {
                slope: 1.0,
                intercept: 0.5
            }
            .eval(0.5),
            1.0
        );
        assert_eq!(FnSpec::Constant(2.0).eval(0.9), 2.0);
        // Invalid custom params degrade to gain 1 rather than panicking.
        assert_eq!(
            FnSpec::Linear {
                slope: -1.0,
                intercept: 0.5
            }
            .eval(0.5),
            1.0
        );
    }

    #[test]
    fn congestion_spec_labels_and_ecn() {
        assert!(CongestionSpec::Dctcp.needs_ecn());
        assert!(CongestionSpec::MltcpDctcp(FnSpec::Paper).needs_ecn());
        assert!(!CongestionSpec::MltcpReno(FnSpec::Paper).needs_ecn());
        assert_eq!(
            CongestionSpec::MltcpReno(FnSpec::Paper).label(),
            "mltcp-reno"
        );
    }

    #[test]
    fn single_job_runs_at_ideal_period() {
        // One GPT-2 job alone: measured iteration time ≈ ideal T (small
        // transport overhead allowed).
        let rate = models::paper_bottleneck();
        let spec = models::gpt2(rate, 1e-2, 3);
        let mut sc = ScenarioBuilder::new(7)
            .job(spec, CongestionSpec::Reno)
            .build();
        sc.run(SimTime::from_secs_f64(1.0));
        assert!(sc.all_finished());
        let stats = sc.stats(0);
        assert_eq!(stats.len(), 3);
        let ideal = sc.ideal_period(0).as_secs_f64();
        let measured = stats.tail_mean(3);
        assert!(
            measured < ideal * 1.15,
            "measured {measured:.6}s vs ideal {ideal:.6}s — single flow should run near line rate"
        );
    }

    #[test]
    fn two_jobs_complete_and_report() {
        let rate = models::paper_bottleneck();
        let mut sc = ScenarioBuilder::new(8)
            .job(models::gpt2(rate, 1e-3, 4), CongestionSpec::Reno)
            .job(
                models::gpt2(rate, 1e-3, 4),
                CongestionSpec::MltcpReno(FnSpec::Paper),
            )
            .build();
        sc.run(SimTime::from_secs_f64(1.0));
        assert!(sc.all_finished());
        let reports = sc.reports();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.iterations == 4));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_scenario_panics() {
        let _ = ScenarioBuilder::new(0).build();
    }

    #[test]
    fn restart_pauses_then_resumes_and_completes() {
        let rate = models::paper_bottleneck();
        let outage = SimDuration::millis(5);
        let spec = models::gpt2(rate, 1e-3, 8).with_restart(4, outage);
        let mut sc = ScenarioBuilder::new(11)
            .job(spec, CongestionSpec::Reno)
            .build();
        sc.run(SimTime::from_secs_f64(1.0));
        assert!(sc.all_finished());
        let stats = sc.stats(0);
        assert_eq!(stats.len(), 8, "no iterations are lost across a restart");
        let (idx, resume) = sc.restart_resume(0).expect("restart fired");
        assert_eq!(idx, 4);
        // The gap between iteration 3's end and iteration 4's start covers
        // the outage, and the outage is not billed to either iteration.
        let driver = sc.sim.agent::<JobDriver>(sc.jobs[0].driver);
        let recs = driver.records();
        assert!(recs[4].start >= recs[3].end + outage);
        assert_eq!(recs[4].start, resume);
        // Alone on the link, the job is back at full speed immediately.
        assert_eq!(sc.iterations_to_reinterleave(0, 0.10), Some(0));
    }

    #[test]
    fn bottleneck_fault_perturbs_but_job_completes() {
        let rate = models::paper_bottleneck();
        // Clean run vs. a run with a mid-training bottleneck outage: the
        // faulted run must still finish, and the outage must show up in
        // makespan (less than its full length where it overlaps a compute
        // phase, during which no traffic needed the link).
        let outage = SimDuration::millis(2);
        let mk = |fault: bool| {
            let mut b =
                ScenarioBuilder::new(17).job(models::gpt2(rate, 1e-3, 6), CongestionSpec::Reno);
            if fault {
                b = b.bottleneck_fault(LinkFault::Down {
                    at: SimTime::from_secs_f64(3e-3),
                    duration: outage,
                });
            }
            let mut sc = b.build();
            sc.run(SimTime::from_secs_f64(1.0));
            assert!(sc.all_finished());
            let driver = sc.sim.agent::<JobDriver>(sc.jobs[0].driver);
            driver.records().last().unwrap().end
        };
        let clean = mk(false);
        let faulted = mk(true);
        assert!(
            faulted.as_secs_f64() >= clean.as_secs_f64() + outage.as_secs_f64() * 0.5,
            "outage must show up in makespan: clean {clean:?} faulted {faulted:?}"
        );
    }

    #[test]
    fn bursty_loss_window_slows_but_does_not_wedge() {
        let rate = models::paper_bottleneck();
        let mut sc = ScenarioBuilder::new(23)
            .job(models::gpt2(rate, 1e-3, 6), CongestionSpec::Reno)
            .bottleneck_fault(LinkFault::BurstyLoss {
                at: SimTime::from_secs_f64(2e-3),
                duration: SimDuration::millis(3),
                model: GilbertElliott::bursty(0.05, 0.25, 0.5),
            })
            .build();
        sc.run(SimTime::from_secs_f64(2.0));
        assert!(sc.all_finished(), "GBN must drain through bursty loss");
        assert_eq!(sc.stats(0).len(), 6);
    }

    #[test]
    fn swift_and_mltcp_swift_complete() {
        // Delay-based CC end-to-end: target ≈ 3× the dumbbell's base RTT.
        let rate = models::paper_bottleneck();
        for cc in [
            CongestionSpec::Swift { target_us: 40 },
            CongestionSpec::MltcpSwift {
                target_us: 40,
                f: FnSpec::Paper,
            },
        ] {
            let mut sc = ScenarioBuilder::new(13)
                .job(models::gpt2(rate, 1e-3, 4), cc.clone())
                .build();
            sc.run(SimTime::from_secs_f64(1.0));
            assert!(sc.all_finished(), "{} did not finish", cc.label());
            assert_eq!(sc.stats(0).len(), 4);
        }
    }
}
