//! The job driver: the agent that turns a [`JobSpec`] into live traffic.
//!
//! Lifecycle per iteration (matching the paper's §4 model):
//!
//! 1. **Compute phase** — a timer of `compute_time + N(0, σ²)` (clamped
//!    at a small positive floor);
//! 2. **Communication phase** — `StartTransfer` messages to all of the
//!    job's senders, then wait for every `TransferComplete`;
//! 3. record the iteration and immediately start the next one — the
//!    arrival dependency that makes DNN traffic self-shifting.

use crate::job::JobSpec;
use mltcp_netsim::packet::Packet;
use mltcp_netsim::rng::SimRng;
use mltcp_netsim::sim::{Agent, AgentCtx, AgentId};
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_telemetry::{PhaseKind, TelemetryEvent};
use mltcp_transport::proto::{self, Msg};

/// One completed training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub index: u32,
    /// When the iteration (compute phase) began.
    pub start: SimTime,
    /// When the communication phase began.
    pub comm_start: SimTime,
    /// When the last flow's transfer completed (= start of the next
    /// iteration).
    pub end: SimTime,
}

impl IterationRecord {
    /// Total iteration duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Communication-phase duration.
    pub fn comm_duration(&self) -> SimDuration {
        self.end - self.comm_start
    }
}

/// Driver state machine phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the start offset.
    Pending,
    /// In a compute slice preceding burst `burst_idx`.
    Computing {
        /// Which sub-burst follows this compute slice.
        burst_idx: u32,
    },
    /// Waiting for transfer completions of burst `burst_idx`.
    Communicating {
        /// Which sub-burst is in flight.
        burst_idx: u32,
        /// Flows still in flight.
        outstanding: usize,
    },
    /// All iterations done.
    Finished,
}

/// The workload-driving agent for one job.
#[derive(Debug)]
pub struct JobDriver {
    spec: JobSpec,
    /// Scenario-assigned job index carried in telemetry `Phase` events.
    job_id: u32,
    senders: Vec<AgentId>,
    rng: SimRng,
    phase: Phase,
    /// Current iteration's compute-slice duration (noise applied).
    compute_slice: SimDuration,
    iter_index: u32,
    iter_start: SimTime,
    comm_start: SimTime,
    records: Vec<IterationRecord>,
    /// Comm-phase start times, one per iteration (for shift analysis).
    comm_starts: Vec<SimTime>,
    /// The crash/restart fault already fired (it fires at most once).
    restart_fired: bool,
    /// `(iteration index, resume time)` once the restart fault has fired.
    restart_resume: Option<(u32, SimTime)>,
}

impl JobDriver {
    const TIMER_BEGIN: u64 = 1;
    const TIMER_COMPUTE_DONE: u64 = 2;

    /// Creates a driver. Wire its senders afterwards with
    /// [`JobDriver::wire_senders`] (the driver must be registered first so
    /// senders can carry its [`AgentId`] in their config). `noise_seed`
    /// gives the job its own deterministic noise stream.
    pub fn new(spec: JobSpec, noise_seed: u64) -> Self {
        Self {
            spec,
            job_id: 0,
            senders: Vec::new(),
            rng: SimRng::new(noise_seed),
            phase: Phase::Pending,
            compute_slice: SimDuration::ZERO,
            iter_index: 0,
            iter_start: SimTime::ZERO,
            comm_start: SimTime::ZERO,
            records: Vec::new(),
            comm_starts: Vec::new(),
            restart_fired: false,
            restart_resume: None,
        }
    }

    /// Sets the scenario-assigned job index carried in telemetry `Phase`
    /// events (builder-style; defaults to 0).
    pub fn with_job_id(mut self, job_id: u32) -> Self {
        self.job_id = job_id;
        self
    }

    /// The scenario-assigned job index.
    pub fn job_id(&self) -> u32 {
        self.job_id
    }

    /// Emits an iteration-phase boundary (telemetry-gated).
    fn emit_phase(&self, ctx: &mut AgentCtx<'_>, iter: u32, phase: PhaseKind) {
        if ctx.telemetry_enabled() {
            ctx.emit(TelemetryEvent::Phase {
                t_ns: ctx.now().as_nanos(),
                job: self.job_id,
                iter,
                phase,
            });
        }
    }

    /// Attaches the job's transport senders (one per flow).
    ///
    /// # Panics
    /// Panics if the count does not match `spec.flows`.
    pub fn wire_senders(&mut self, senders: Vec<AgentId>) {
        assert_eq!(
            senders.len(),
            self.spec.flows,
            "one sender per flow is required"
        );
        self.senders = senders;
    }

    /// The job's spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Completed iterations.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Communication-phase start times (entry i = iteration i), including
    /// the current in-progress iteration once its comm phase begins.
    pub fn comm_starts(&self) -> &[SimTime] {
        &self.comm_starts
    }

    /// Whether all iterations completed.
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Finished)
    }

    /// Where the job resumed after its crash/restart fault: the iteration
    /// index that was delayed and the simulated resume time. `None` when
    /// no restart was configured or it has not fired yet.
    pub fn restart_resume(&self) -> Option<(u32, SimTime)> {
        self.restart_resume
    }

    /// How many iterations the job needed to re-interleave with its
    /// neighbours after resuming from its crash/restart fault.
    ///
    /// Baseline = mean of the (up to 5) iteration durations immediately
    /// before the restart. Post-resume durations are compared through a
    /// trailing 5-iteration mean (one noisy iteration neither triggers
    /// nor masks a violation). The answer counts post-resume iterations
    /// up to and including the *last* smoothed point exceeding
    /// `baseline × (1 + rel_tol)` — after that many iterations the job
    /// is back to its pre-fault speed and stays there.
    ///
    /// Returns `None` when the restart never fired, fired before any
    /// baseline existed, or the job never re-converged within the run
    /// (still violating at the last recorded iteration).
    pub fn iterations_to_reinterleave(&self, rel_tol: f64) -> Option<u32> {
        const WINDOW: usize = 5;
        let (resume_idx, _) = self.restart_resume?;
        let resume = resume_idx as usize;
        if resume == 0 || resume >= self.records.len() {
            return None;
        }
        let durs: Vec<f64> = self
            .records
            .iter()
            .map(|r| r.duration().as_secs_f64())
            .collect();
        let pre = &durs[..resume];
        let take = pre.len().min(WINDOW);
        let baseline: f64 = pre[pre.len() - take..].iter().sum::<f64>() / take as f64;
        let bound = baseline * (1.0 + rel_tol);
        let mut last_bad = None;
        for i in resume..durs.len() {
            let lo = (i + 1).saturating_sub(WINDOW).max(resume);
            let smoothed: f64 = durs[lo..=i].iter().sum::<f64>() / (i + 1 - lo) as f64;
            if smoothed > bound {
                last_bad = Some(i);
            }
        }
        match last_bad {
            None => Some(0),
            Some(i) if i + 1 < durs.len() => Some((i + 1 - resume) as u32),
            Some(_) => None,
        }
    }

    fn begin_iteration(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.iter_index >= self.spec.iterations {
            self.phase = Phase::Finished;
            return;
        }
        // Crash/restart fault: pause the whole job for the configured
        // outage before iteration `at_iter` begins, then resume. The
        // outage itself is not part of any iteration's duration — what we
        // measure afterwards is purely how the resumed job interleaves
        // with its peers.
        if !self.restart_fired {
            if let Some(rs) = self.spec.restart {
                if self.iter_index >= rs.at_iter {
                    self.restart_fired = true;
                    self.restart_resume = Some((self.iter_index, ctx.now() + rs.outage));
                    self.phase = Phase::Pending;
                    ctx.set_timer(rs.outage, Self::TIMER_BEGIN);
                    return;
                }
            }
        }
        // Centralized pacing: hold the iteration for its planned slot on
        // the grid `start_offset + k × pace`. A job that fell behind its
        // nominal slot re-aligns to the *next* grid point — this is what
        // distinguishes an enforced (Cassini-style) schedule from mere
        // start offsets, which drift apart as soon as measured iteration
        // times deviate from the plan.
        if let Some(pace) = self.spec.pace {
            let pace_ns = pace.as_nanos().max(1);
            let off_ns = self.spec.start_offset.as_nanos();
            let now_ns = ctx.now().as_nanos();
            let k = if now_ns > off_ns {
                (now_ns - off_ns).div_ceil(pace_ns)
            } else {
                0
            };
            let planned = SimTime(off_ns + k * pace_ns);
            if ctx.now() < planned {
                self.phase = Phase::Pending;
                ctx.set_timer(planned - ctx.now(), Self::TIMER_BEGIN);
                return;
            }
        }
        self.iter_start = ctx.now();
        self.emit_phase(ctx, self.iter_index, PhaseKind::ComputeStart);
        // Draw the iteration's compute-time noise once; each of the
        // `bursts` compute slices gets an equal share.
        let mean = self.spec.compute_time.as_secs_f64();
        let sigma = self.spec.noise_stddev.as_secs_f64();
        let noisy = self.rng.gaussian(mean, sigma).max(mean * 0.01).max(1e-9);
        self.compute_slice = SimDuration::from_secs_f64(noisy / f64::from(self.spec.bursts.max(1)));
        self.begin_compute_slice(ctx, 0);
    }

    fn begin_compute_slice(&mut self, ctx: &mut AgentCtx<'_>, burst_idx: u32) {
        self.phase = Phase::Computing { burst_idx };
        ctx.set_timer(self.compute_slice, Self::TIMER_COMPUTE_DONE);
    }

    /// Bytes of sub-burst `idx` for one flow (the last burst absorbs the
    /// integer-division remainder).
    fn burst_bytes(&self, idx: u32) -> u64 {
        let per_flow = self.spec.bytes_per_flow();
        let b = u64::from(self.spec.bursts.max(1));
        let base = per_flow / b;
        if u64::from(idx) == b - 1 {
            per_flow - base * (b - 1)
        } else {
            base
        }
    }

    fn begin_burst(&mut self, ctx: &mut AgentCtx<'_>, burst_idx: u32) {
        assert_eq!(
            self.senders.len(),
            self.spec.flows,
            "senders were not wired before the run"
        );
        if burst_idx == 0 {
            self.comm_start = ctx.now();
            self.comm_starts.push(self.comm_start);
            self.emit_phase(ctx, self.iter_index, PhaseKind::CommStart);
        }
        let bytes = self.burst_bytes(burst_idx);
        self.phase = Phase::Communicating {
            burst_idx,
            outstanding: self.senders.len(),
        };
        for i in 0..self.senders.len() {
            let sender = self.senders[i];
            ctx.send_message(sender, proto::encode(Msg::StartTransfer { bytes }));
        }
    }
}

impl Agent for JobDriver {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(self.spec.start_offset, Self::TIMER_BEGIN);
    }

    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        match token {
            Self::TIMER_BEGIN => {
                if matches!(self.phase, Phase::Pending) {
                    // Clear Pending so a re-armed pacing timer can't
                    // double-start (begin_iteration may re-enter Pending).
                    self.phase = Phase::Computing { burst_idx: 0 };
                    self.begin_iteration(ctx);
                }
            }
            Self::TIMER_COMPUTE_DONE => {
                if let Phase::Computing { burst_idx } = self.phase {
                    self.begin_burst(ctx, burst_idx);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, token: u64) {
        let Some(Msg::TransferComplete { .. }) = proto::decode(token) else {
            return;
        };
        let Phase::Communicating {
            burst_idx,
            outstanding,
        } = &mut self.phase
        else {
            return;
        };
        *outstanding -= 1;
        if *outstanding > 0 {
            return;
        }
        let burst_idx = *burst_idx;
        if burst_idx + 1 < self.spec.bursts.max(1) {
            // More sub-bursts this iteration: next compute slice.
            self.begin_compute_slice(ctx, burst_idx + 1);
        } else {
            self.records.push(IterationRecord {
                index: self.iter_index,
                start: self.iter_start,
                comm_start: self.comm_start,
                end: ctx.now(),
            });
            self.emit_phase(ctx, self.iter_index, PhaseKind::IterEnd);
            self.iter_index += 1;
            self.begin_iteration(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_durations() {
        let r = IterationRecord {
            index: 0,
            start: SimTime(0),
            comm_start: SimTime(600_000),
            end: SimTime(1_200_000),
        };
        assert_eq!(r.duration(), SimDuration(1_200_000));
        assert_eq!(r.comm_duration(), SimDuration(600_000));
    }

    #[test]
    #[should_panic(expected = "one sender per flow")]
    fn sender_count_must_match_flows() {
        let spec = JobSpec::new("j", SimDuration::millis(1), 1000, 1).with_flows(2);
        let mut d = JobDriver::new(spec, 0);
        d.wire_senders(vec![AgentId(0)]);
    }
}
