//! Parallel parameter-sweep harness.
//!
//! Every figure and ablation in `mltcp-bench` is a sweep: a list of
//! scenario configurations (seed × parameter point), each simulated
//! independently, results aggregated into a figure. [`SweepRunner`] fans
//! those simulations out across OS threads while keeping the output
//! **byte-identical to a sequential run**:
//!
//! * Each worker invokes the job closure with `(index, &config)`; the
//!   closure builds its own `Simulator`/`Scenario` *inside* the worker
//!   (simulators hold `Box<dyn Agent>` and are deliberately not `Send`,
//!   so a simulation never migrates between threads mid-run).
//! * Every simulation is seeded from its config alone, so its trajectory
//!   is independent of which worker runs it or in what order.
//! * Results are stored by input index and returned in input order —
//!   the only nondeterminism (completion order) is erased at the join.
//!
//! `sweep_determinism` in `mltcp-bench` pins the byte-identical claim by
//! serializing parallel and sequential sweep results to JSON and
//! comparing the strings.
//!
//! **Event-engine selection and sweeps.** A scenario built without an
//! explicit [`ScenarioBuilder::engine`](crate::scenario::ScenarioBuilder)
//! call reads `MLTCP_ENGINE` through a process-wide `OnceLock`
//! (`mltcp_netsim::event::EngineKind::from_env`), so every worker in a
//! sweep sees the *same* engine no matter when its thread first touches
//! the cache — the environment cannot race a half-finished sweep onto a
//! different engine. Since both engines replay bit-for-bit identically
//! (pinned by the cross-engine sweep-determinism test), the choice can
//! only affect wall clock, never output bytes.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs a list of independent jobs across a bounded pool of OS threads,
/// returning results in input order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner sized to the machine (`available_parallelism`, capped at
    /// 16 — sweeps are memory-bandwidth-bound well before that).
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_threads(n.min(16))
    }

    /// A runner with an explicit worker count (`0` is treated as `1`).
    /// `with_threads(1)` runs jobs inline on the calling thread.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The worker count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `configs`, in parallel, collecting results in input
    /// order. `f(i, &configs[i])` must derive all randomness from the
    /// config (not from thread identity or wall clock) for the output to
    /// be schedule-independent; every closure in this workspace does.
    ///
    /// # Panics
    /// Propagates a panic from any job after the scope joins.
    pub fn run<C, R, F>(&self, configs: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(usize, &C) -> R + Sync,
    {
        let workers = self.threads.min(configs.len());
        if workers <= 1 {
            return configs.iter().enumerate().map(|(i, c)| f(i, c)).collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(c) = configs.get(i) else { break };
                    // A send only fails if the receiver is gone, which
                    // cannot happen while the scope holds `rx` alive.
                    let _ = tx.send((i, f(i, c)));
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<R>> = (0..configs.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every sweep job reports exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let configs: Vec<u64> = (0..64).collect();
        let runner = SweepRunner::with_threads(8);
        // Jobs of wildly different durations still land in input order.
        let out = runner.run(&configs, |i, &c| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            c * 10
        });
        assert_eq!(out, configs.iter().map(|c| c * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let configs: Vec<u64> = (0..40).collect();
        let work = |_i: usize, &seed: &u64| -> Vec<u64> {
            // A deterministic pseudo-simulation: results depend only on
            // the config.
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..16)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                })
                .collect()
        };
        let seq = SweepRunner::with_threads(1).run(&configs, work);
        let par = SweepRunner::with_threads(6).run(&configs, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let runner = SweepRunner::new();
        assert!(runner.threads() >= 1);
        let empty: Vec<u32> = vec![];
        assert!(runner.run(&empty, |_, &c| c).is_empty());
        assert_eq!(runner.run(&[5u32], |i, &c| (i, c)), vec![(0, 5)]);
    }

    #[test]
    fn zero_threads_is_clamped() {
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
    }
}
