//! Iteration-time series analysis: percentiles, CDFs, convergence.

use crate::driver::IterationRecord;
use serde::Serialize;

/// Summary statistics over one job's iteration durations.
#[derive(Debug, Clone, Serialize)]
pub struct IterationStats {
    durations_secs: Vec<f64>,
}

impl IterationStats {
    /// From raw iteration records.
    pub fn from_records(records: &[IterationRecord]) -> Self {
        Self {
            durations_secs: records.iter().map(|r| r.duration().as_secs_f64()).collect(),
        }
    }

    /// From raw durations in seconds.
    pub fn from_durations(durations_secs: Vec<f64>) -> Self {
        Self { durations_secs }
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.durations_secs.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.durations_secs.is_empty()
    }

    /// The raw series (seconds).
    pub fn durations(&self) -> &[f64] {
        &self.durations_secs
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.durations_secs.is_empty() {
            return 0.0;
        }
        self.durations_secs.iter().sum::<f64>() / self.durations_secs.len() as f64
    }

    /// Mean over the last `k` iterations (steady-state estimate).
    pub fn tail_mean(&self, k: usize) -> f64 {
        let n = self.durations_secs.len();
        if n == 0 {
            return 0.0;
        }
        let k = k.min(n).max(1);
        self.durations_secs[n - k..].iter().sum::<f64>() / k as f64
    }

    /// The `p`-quantile (`p ∈ [0, 1]`) by nearest-rank on the sorted
    /// series; 0 for an empty series.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.durations_secs.is_empty() {
            return 0.0;
        }
        let mut sorted = self.durations_secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        let idx = ((p.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    }

    /// Maximum duration.
    pub fn max(&self) -> f64 {
        self.durations_secs.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum duration (0 for empty).
    pub fn min(&self) -> f64 {
        self.durations_secs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .min(if self.durations_secs.is_empty() {
                0.0
            } else {
                f64::INFINITY
            })
    }

    /// Empirical CDF as `(duration_secs, cumulative_probability)` points.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.durations_secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        let n = sorted.len();
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, d)| (d, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// First iteration index after which every remaining duration stays
    /// within `rel_tol` of the steady-state (last-`steady_k`) mean;
    /// `None` if the series never settles.
    ///
    /// This is the "converges within ~20 iterations" metric of §2.
    pub fn converged_after(&self, rel_tol: f64, steady_k: usize) -> Option<usize> {
        if self.durations_secs.is_empty() {
            return None;
        }
        let target = self.tail_mean(steady_k);
        if target <= 0.0 {
            return None;
        }
        let ok = |d: f64| ((d - target) / target).abs() <= rel_tol;
        // Walk backwards to find the last violation.
        let last_bad = self.durations_secs.iter().rposition(|&d| !ok(d));
        match last_bad {
            None => Some(0),
            Some(i) if i + 1 < self.durations_secs.len() => Some(i + 1),
            Some(_) => None,
        }
    }
}

/// The speedup of `baseline` over `improved` at quantile `p`
/// (e.g. the paper's Fig. 4(c) "1.59× tail iteration-time speedup" =
/// `speedup_at(reno, mltcp, 0.99)`).
pub fn speedup_at(baseline: &IterationStats, improved: &IterationStats, p: f64) -> f64 {
    let b = baseline.percentile(p);
    let i = improved.percentile(p);
    if i > 0.0 {
        b / i
    } else {
        f64::INFINITY
    }
}

/// Serializable per-job experiment row used by the bench harness.
#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Iterations completed.
    pub iterations: usize,
    /// Mean iteration time (s).
    pub mean_secs: f64,
    /// Steady-state (last 5) mean iteration time (s).
    pub steady_secs: f64,
    /// p50 / p95 / p99 iteration times (s).
    pub p50_secs: f64,
    /// 95th percentile (s).
    pub p95_secs: f64,
    /// 99th percentile (s).
    pub p99_secs: f64,
    /// Convergence iteration (if settled).
    pub converged_after: Option<usize>,
}

impl JobReport {
    /// Builds a report from a named stats series.
    pub fn new(name: impl Into<String>, stats: &IterationStats) -> Self {
        Self {
            name: name.into(),
            iterations: stats.len(),
            mean_secs: stats.mean(),
            steady_secs: stats.tail_mean(5),
            p50_secs: stats.percentile(0.50),
            p95_secs: stats.percentile(0.95),
            p99_secs: stats.percentile(0.99),
            converged_after: stats.converged_after(0.05, 5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(xs: &[f64]) -> IterationStats {
        IterationStats::from_durations(xs.to_vec())
    }

    #[test]
    fn mean_and_tail_mean() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.tail_mean(2) - 3.5).abs() < 1e-12);
        assert!((s.tail_mean(100) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let s = stats(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(0.5), 3.0);
        assert_eq!(s.percentile(1.0), 5.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let s = stats(&[3.0, 1.0, 2.0]);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn convergence_detection() {
        // Ramp down then stable: converges at index 3.
        let s = stats(&[3.0, 2.5, 2.0, 1.01, 1.0, 0.99, 1.0, 1.0]);
        assert_eq!(s.converged_after(0.05, 4), Some(3));
        // Never settles.
        let s2 = stats(&[1.0, 5.0, 1.0, 5.0, 1.0, 5.0]);
        assert_eq!(s2.converged_after(0.05, 3), None);
        // Flat from the start.
        let s3 = stats(&[1.0, 1.0, 1.0]);
        assert_eq!(s3.converged_after(0.05, 2), Some(0));
    }

    #[test]
    fn speedup() {
        let base = stats(&[2.0, 2.0, 4.0]);
        let fast = stats(&[1.0, 1.0, 2.0]);
        assert!((speedup_at(&base, &fast, 0.99) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = stats(&[]);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.converged_after(0.05, 3), None);
        assert!(s.cdf().is_empty());
    }

    #[test]
    fn job_report_fields() {
        let s = stats(&[2.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let r = JobReport::new("j", &s);
        assert_eq!(r.iterations, 6);
        assert_eq!(r.converged_after, Some(1));
        assert!((r.steady_secs - 1.0).abs() < 1e-12);
    }
}
