//! # mltcp-workload
//!
//! The periodic DNN training/fine-tuning job model — the paper's workload
//! substrate, rebuilt synthetically (the authors train real GPT-2/GPT-3
//! models on A100s; what the network sees, and what the paper's §4
//! analysis models, is an on/off process: a compute phase of fixed
//! duration followed by a communication phase transferring a fixed byte
//! count, with the *next iteration starting only when the previous one
//! completed* — the dependency that distinguishes DNN traffic from
//! classical periodic traffic).
//!
//! * [`job`] — [`job::JobSpec`]: compute time, bytes/iteration, flow
//!   fan-out, Gaussian compute-time noise, start offset.
//! * [`models`] — a model zoo calibrated to the paper's figures (GPT-3
//!   and GPT-2 profiles with the Fig. 1/2 geometry), parameterized by a
//!   time scale so tests can run millisecond-scale replicas of the
//!   second-scale testbed scenarios.
//! * [`driver`] — [`driver::JobDriver`]: the agent that alternates
//!   compute timers and transport transfers, recording every iteration.
//! * [`stats`] — iteration-time series analysis: percentiles, CDFs,
//!   convergence detection, speedups.
//! * [`scenario`] — a one-stop builder wiring dumbbell topology + jobs +
//!   congestion control choices into a runnable simulation; used by the
//!   examples, benches, and integration tests.
//! * [`sweep`] — [`sweep::SweepRunner`]: fans independent scenario runs
//!   out across threads with results collected in input order, so figure
//!   sweeps parallelize without changing their output bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod job;
pub mod models;
pub mod scenario;
pub mod stats;
pub mod sweep;

pub use driver::JobDriver;
pub use job::{JobSpec, RestartSpec};
pub use scenario::{CongestionSpec, FnSpec, LinkFault, Scenario, ScenarioBuilder};
pub use stats::IterationStats;
pub use sweep::SweepRunner;
