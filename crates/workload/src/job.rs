//! Job specifications: the schedule-relevant geometry of one training job.

use mltcp_core::schedule::PeriodicJob;
use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A scheduled crash/restart: the job pauses just before iteration
/// `at_iter` for `outage`, then resumes training where it left off.
///
/// This models a worker failure + checkpoint restore: no iterations are
/// lost, but the job's phase relative to its peers is perturbed by the
/// outage. The interesting question downstream is how many iterations the
/// fabric needs to re-interleave the job with its neighbours (MLTCP
/// self-heals; a static Cassini-style offset plan does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartSpec {
    /// The 0-based iteration index before which the job pauses.
    pub at_iter: u32,
    /// How long the job stays down before resuming.
    pub outage: SimDuration,
}

/// A periodic DNN training/fine-tuning job.
///
/// Each iteration: compute for `compute_time` (plus Gaussian noise), then
/// transfer `bytes_per_iter` across `flows` parallel connections, then
/// immediately begin the next iteration. The ideal iteration time on a
/// bottleneck of rate `C` is `compute_time + bytes·8/C` — the `T` of the
/// paper's analysis, with communication fraction `a = comm/T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Display name (e.g. "J1 (GPT-3)").
    pub name: String,
    /// Compute-phase duration `(1 − a)·T`.
    pub compute_time: SimDuration,
    /// Total bytes transferred per iteration (split evenly over `flows`).
    pub bytes_per_iter: u64,
    /// Number of parallel flows carrying the job's traffic (data-parallel
    /// workers). The paper's jobs use 2 GPU servers ⇒ 1 flow across the
    /// bottleneck; allreduce fan-out can be modelled with more.
    pub flows: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Delay before the job's first iteration starts.
    pub start_offset: SimDuration,
    /// Standard deviation of zero-mean Gaussian noise added to each
    /// compute phase (the §4 perturbation model).
    pub noise_stddev: SimDuration,
    /// Number of equal communication sub-bursts per iteration. Real DNN
    /// allreduce traffic is often multi-burst (the paper's Fig. 1(a)
    /// GPT-3 pattern shows several spikes per comm phase); sub-bursts
    /// alternate with slices of the compute phase.
    pub bursts: u32,
    /// Centralized pacing: when set, iteration `k` may not start before
    /// `start_offset + k × pace`. This is how a Cassini-style controller
    /// *enforces* its planned schedule (static start offsets alone drift
    /// apart as soon as measured iteration times deviate from the plan).
    pub pace: Option<SimDuration>,
    /// Optional crash/restart fault: pause before `at_iter` for `outage`,
    /// then resume (see [`RestartSpec`]).
    pub restart: Option<RestartSpec>,
}

impl JobSpec {
    /// A single-flow job with no noise and no offset.
    pub fn new(
        name: impl Into<String>,
        compute_time: SimDuration,
        bytes_per_iter: u64,
        iterations: u32,
    ) -> Self {
        Self {
            name: name.into(),
            compute_time,
            bytes_per_iter,
            flows: 1,
            iterations,
            start_offset: SimDuration::ZERO,
            noise_stddev: SimDuration::ZERO,
            bursts: 1,
            pace: None,
            restart: None,
        }
    }

    /// Builder: start offset.
    pub fn with_offset(mut self, offset: SimDuration) -> Self {
        self.start_offset = offset;
        self
    }

    /// Builder: compute-time noise.
    pub fn with_noise(mut self, stddev: SimDuration) -> Self {
        self.noise_stddev = stddev;
        self
    }

    /// Builder: parallel flow count.
    pub fn with_flows(mut self, flows: usize) -> Self {
        self.flows = flows.max(1);
        self
    }

    /// Builder: communication sub-bursts per iteration (clamps to ≥ 1).
    pub fn with_bursts(mut self, bursts: u32) -> Self {
        self.bursts = bursts.max(1);
        self
    }

    /// Builder: centralized pacing period (see [`JobSpec::pace`]).
    pub fn with_pace(mut self, pace: SimDuration) -> Self {
        self.pace = Some(pace);
        self
    }

    /// Builder: crash/restart fault — pause before iteration `at_iter`
    /// for `outage`, then resume (see [`RestartSpec`]).
    pub fn with_restart(mut self, at_iter: u32, outage: SimDuration) -> Self {
        self.restart = Some(RestartSpec { at_iter, outage });
        self
    }

    /// Ideal communication-phase duration when the job has the whole
    /// bottleneck: `bytes·8 / rate` (wire overhead ignored — it is ~2.6%
    /// for MTU segments and cancels in all relative comparisons).
    pub fn ideal_comm_time(&self, bottleneck: Bandwidth) -> SimDuration {
        SimDuration(
            ((u128::from(self.bytes_per_iter) * 8 * 1_000_000_000)
                / u128::from(bottleneck.as_bps())) as u64,
        )
    }

    /// Ideal iteration time `T = compute + comm`.
    pub fn ideal_period(&self, bottleneck: Bandwidth) -> SimDuration {
        self.compute_time + self.ideal_comm_time(bottleneck)
    }

    /// Communication fraction `a = comm / T`.
    pub fn comm_fraction(&self, bottleneck: Bandwidth) -> f64 {
        let comm = self.ideal_comm_time(bottleneck).as_secs_f64();
        let t = self.ideal_period(bottleneck).as_secs_f64();
        if t > 0.0 {
            comm / t
        } else {
            0.0
        }
    }

    /// Bytes carried by each of the job's flows per iteration.
    pub fn bytes_per_flow(&self) -> u64 {
        self.bytes_per_iter / self.flows as u64
    }

    /// Projects the spec onto the analytic [`PeriodicJob`] geometry used
    /// by `mltcp-core`'s schedule metrics and the Cassini-style
    /// optimizer.
    pub fn to_periodic(&self, bottleneck: Bandwidth) -> PeriodicJob {
        PeriodicJob::new(
            self.ideal_period(bottleneck).as_secs_f64(),
            self.comm_fraction(bottleneck).clamp(f64::MIN_POSITIVE, 1.0),
            self.start_offset.as_secs_f64(),
        )
        .expect("JobSpec geometry is valid by construction")
        .with_bursts(self.bursts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_on_50gbps() {
        // GPT-2-like at millisecond scale: compute 1.5 ms, comm 0.3 ms at
        // 50 Gbps = 1.875 MB.
        let j = JobSpec::new("gpt2", SimDuration::micros(1500), 1_875_000, 10);
        let rate = Bandwidth::gbps(50);
        assert_eq!(j.ideal_comm_time(rate), SimDuration::micros(300));
        assert_eq!(j.ideal_period(rate), SimDuration::micros(1800));
        assert!((j.comm_fraction(rate) - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn per_flow_split() {
        let j = JobSpec::new("j", SimDuration::millis(1), 3_000_000, 5).with_flows(3);
        assert_eq!(j.bytes_per_flow(), 1_000_000);
    }

    #[test]
    fn to_periodic_round_trip() {
        let j = JobSpec::new("j", SimDuration::micros(600), 3_750_000, 5)
            .with_offset(SimDuration::micros(100));
        let p = j.to_periodic(Bandwidth::gbps(50));
        assert!((p.period - 1.2e-3).abs() < 1e-9);
        assert!((p.comm_fraction - 0.5).abs() < 1e-9);
        assert!((p.offset - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn builders() {
        let j = JobSpec::new("j", SimDuration::millis(1), 1000, 1)
            .with_noise(SimDuration::micros(10))
            .with_flows(0);
        assert_eq!(j.noise_stddev, SimDuration::micros(10));
        assert_eq!(j.flows, 1, "flow count clamps to >= 1");
    }
}
