//! The §5 generalization: progress-based multi-resource scheduling.
//!
//! "The aggressiveness function F(bytes_ratio) is generalizable to other
//! resource scheduling problems by replacing bytes_ratio with the
//! progress of the job. For example, in the case of CPU cores, the
//! operating system's scheduler tracks the progress of each task, and
//! assigns a number of CPU cores based on the desired aggressiveness
//! function."
//!
//! This module implements that sketch as a fixed-tick simulator: `n`
//! periodic jobs alternate a *think* phase (no CPU demand, fixed
//! duration) and a *burst* phase (`work` core-seconds, elastic in how
//! many cores it gets). Each tick, every burst-phase job bids
//! `F(progress)` and the `cores` total cores are divided proportionally
//! to the bids. With an increasing `F` the same sliding effect as in the
//! network emerges: the job furthest through its burst wins cores,
//! finishes sooner, and shifts — until bursts interleave with thinks.
//! A constant `F` reproduces fair sharing, which (exactly as on the
//! link) preserves the initial phase alignment and stays contended.

use mltcp_core::aggressiveness::Aggressiveness;
use serde::Serialize;

/// A periodic CPU job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CpuJob {
    /// Think-phase duration (seconds): no CPU demand.
    pub think: f64,
    /// Burst work (core-seconds per iteration).
    pub work: f64,
    /// Maximum cores the job can exploit at once.
    pub max_parallelism: f64,
    /// Offset of the first burst start (seconds).
    pub offset: f64,
}

impl CpuJob {
    /// Ideal iteration time when the job can always get
    /// `max_parallelism` cores: `think + work / max_parallelism`.
    pub fn ideal_period(&self) -> f64 {
        self.think + self.work / self.max_parallelism
    }
}

/// Result of one job's simulation.
#[derive(Debug, Clone, Serialize)]
pub struct CpuJobResult {
    /// Completed iteration durations (seconds).
    pub iteration_times: Vec<f64>,
}

impl CpuJobResult {
    /// Mean of the last `k` iteration times.
    pub fn tail_mean(&self, k: usize) -> f64 {
        let n = self.iteration_times.len();
        if n == 0 {
            return 0.0;
        }
        let k = k.min(n).max(1);
        self.iteration_times[n - k..].iter().sum::<f64>() / k as f64
    }
}

#[derive(Debug, Clone, Copy)]
enum CpuPhase {
    Thinking { until: f64 },
    Bursting { done: f64 },
}

/// Simulates `jobs` sharing `cores` under progress-based allocation with
/// aggressiveness `f`, for `horizon` seconds at `dt` resolution. Returns
/// per-job iteration histories.
pub fn simulate<F: Aggressiveness>(
    jobs: &[CpuJob],
    cores: f64,
    f: &F,
    horizon: f64,
    dt: f64,
) -> Vec<CpuJobResult> {
    assert!(!jobs.is_empty() && cores > 0.0 && dt > 0.0);
    let n = jobs.len();
    let mut phase: Vec<CpuPhase> = jobs
        .iter()
        .map(|j| CpuPhase::Thinking {
            until: j.offset + j.think,
        })
        .collect();
    let mut iter_start: Vec<f64> = jobs.iter().map(|j| j.offset).collect();
    let mut results: Vec<CpuJobResult> = (0..n)
        .map(|_| CpuJobResult {
            iteration_times: Vec::new(),
        })
        .collect();

    let steps = (horizon / dt).ceil() as usize;
    for step in 0..steps {
        let t = step as f64 * dt;
        // Phase transitions: think → burst.
        for p in phase.iter_mut() {
            if let CpuPhase::Thinking { until } = *p {
                if t >= until {
                    *p = CpuPhase::Bursting { done: 0.0 };
                }
            }
        }
        // Bids from bursting jobs.
        let mut bids = vec![0.0; n];
        let mut total_bid = 0.0;
        for i in 0..n {
            if let CpuPhase::Bursting { done } = phase[i] {
                let progress = (done / jobs[i].work).clamp(0.0, 1.0);
                bids[i] = f.eval(progress).max(1e-9);
                total_bid += bids[i];
            }
        }
        if total_bid <= 0.0 {
            continue;
        }
        // Proportional allocation, capped by per-job parallelism; spare
        // capacity from capped jobs is redistributed in a second pass.
        let mut alloc = vec![0.0; n];
        let mut spare = cores;
        let mut uncapped_bid = 0.0;
        for i in 0..n {
            if bids[i] > 0.0 {
                let share = cores * bids[i] / total_bid;
                if share >= jobs[i].max_parallelism {
                    alloc[i] = jobs[i].max_parallelism;
                    spare -= alloc[i];
                } else {
                    uncapped_bid += bids[i];
                }
            }
        }
        for i in 0..n {
            if bids[i] > 0.0 && alloc[i] == 0.0 && uncapped_bid > 0.0 {
                alloc[i] = (spare * bids[i] / uncapped_bid).min(jobs[i].max_parallelism);
            }
        }
        // Progress + burst completion.
        for i in 0..n {
            if let CpuPhase::Bursting { done } = phase[i] {
                let done = done + alloc[i] * dt;
                if done >= jobs[i].work {
                    let now = t + dt;
                    results[i].iteration_times.push(now - iter_start[i]);
                    iter_start[i] = now;
                    phase[i] = CpuPhase::Thinking {
                        until: now + jobs[i].think,
                    };
                } else {
                    phase[i] = CpuPhase::Bursting { done };
                }
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltcp_core::aggressiveness::{Constant, Linear};

    fn two_jobs() -> Vec<CpuJob> {
        // think 1 s, work 8 core-seconds at ≤ 8 cores ⇒ burst 1 s at full
        // parallelism ⇒ ideal period 2 s; two such jobs on 8 cores are
        // exactly compatible (a = 1/2 each).
        vec![
            CpuJob {
                think: 1.0,
                work: 8.0,
                max_parallelism: 8.0,
                offset: 0.0,
            },
            CpuJob {
                think: 1.0,
                work: 8.0,
                max_parallelism: 8.0,
                offset: 0.05, // slight stagger breaks the tie
            },
        ]
    }

    #[test]
    fn ideal_period() {
        assert_eq!(two_jobs()[0].ideal_period(), 2.0);
    }

    #[test]
    fn progress_based_allocation_interleaves_cpu_bursts() {
        let jobs = two_jobs();
        let f = Linear::paper_default();
        let res = simulate(&jobs, 8.0, &f, 120.0, 1e-3);
        for (i, r) in res.iter().enumerate() {
            let steady = r.tail_mean(5);
            assert!(
                steady < 2.0 * 1.10,
                "job {i}: steady {steady:.3}s should approach the 2 s ideal"
            );
        }
    }

    #[test]
    fn fair_sharing_stays_contended() {
        let jobs = two_jobs();
        let f = Constant(1.0);
        let res = simulate(&jobs, 8.0, &f, 120.0, 1e-3);
        // Fair split of overlapping bursts: each runs at ~4 cores during
        // overlap ⇒ periods stay well above ideal.
        let steady = res[0].tail_mean(5);
        assert!(
            steady > 2.0 * 1.3,
            "fair sharing should stay contended, got {steady:.3}s"
        );
    }

    #[test]
    fn progress_beats_fair_on_average() {
        let jobs = two_jobs();
        let prog = simulate(&jobs, 8.0, &Linear::paper_default(), 120.0, 1e-3);
        let fair = simulate(&jobs, 8.0, &Constant(1.0), 120.0, 1e-3);
        let pm: f64 = prog.iter().map(|r| r.tail_mean(5)).sum::<f64>() / 2.0;
        let fm: f64 = fair.iter().map(|r| r.tail_mean(5)).sum::<f64>() / 2.0;
        assert!(pm < fm, "progress-based {pm:.3} !< fair {fm:.3}");
    }

    #[test]
    fn parallelism_cap_respected() {
        // One job capped at 2 cores on an 8-core box: burst takes
        // work/2 seconds regardless of the free capacity.
        let jobs = vec![CpuJob {
            think: 0.5,
            work: 4.0,
            max_parallelism: 2.0,
            offset: 0.0,
        }];
        let res = simulate(&jobs, 8.0, &Linear::paper_default(), 30.0, 1e-3);
        let steady = res[0].tail_mean(3);
        assert!((steady - 2.5).abs() < 0.05, "steady={steady}");
    }
}
