//! The PIAS baseline (Bai et al., NSDI '15).
//!
//! PIAS is information-agnostic: senders demote each flow through a
//! small number of priority levels as its *sent* byte count crosses
//! per-level thresholds; switches serve strict-priority. Short flows
//! finish in high-priority levels (approximating SRPT without knowing
//! sizes). Like pFabric, this favors the jobs with smaller per-iteration
//! transfers and penalizes the big periodic transfer every iteration.

use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::queue::QueueKind;
use mltcp_netsim::time::SimDuration;
use mltcp_transport::sender::PriorityPolicy;
use mltcp_workload::scenario::ScenarioBuilder;

/// Geometric demotion thresholds: `base, base·k, base·k², …` for
/// `levels − 1` boundaries (PIAS deployments use a handful of levels
/// with roughly geometric spacing).
pub fn geometric_thresholds(base: u64, factor: u64, levels: usize) -> Vec<u64> {
    let mut t = Vec::with_capacity(levels.saturating_sub(1));
    let mut v = base.max(1);
    for _ in 1..levels.max(1) {
        t.push(v);
        v = v.saturating_mul(factor.max(2));
    }
    t
}

/// Applies the PIAS configuration: MLFQ bottleneck + byte-count demotion.
pub fn apply_pias(
    builder: ScenarioBuilder,
    bottleneck: Bandwidth,
    rtt_hint: SimDuration,
    thresholds: Vec<u64>,
) -> ScenarioBuilder {
    let bdp_bytes = bottleneck.bdp_bytes(rtt_hint).max(30_000);
    builder
        .bottleneck(bottleneck)
        .bottleneck_queue(QueueKind::Mlfq {
            cap_bytes: bdp_bytes * 4,
        })
        .priority_policy(PriorityPolicy::Pias { thresholds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltcp_netsim::time::SimTime;
    use mltcp_workload::models;
    use mltcp_workload::scenario::CongestionSpec;

    #[test]
    fn thresholds_are_geometric() {
        assert_eq!(
            geometric_thresholds(100_000, 10, 4),
            vec![100_000, 1_000_000, 10_000_000]
        );
        assert!(geometric_thresholds(0, 0, 1).is_empty());
    }

    #[test]
    fn pias_scenario_completes_and_demotes() {
        let rate = models::paper_bottleneck();
        let scale = 5e-3;
        // Thresholds sized so the GPT-2 transfer spans several levels.
        let small_bytes = models::gpt2(rate, scale, 1).bytes_per_iter;
        let thresholds = geometric_thresholds(small_bytes / 4, 4, 4);
        let b = ScenarioBuilder::new(21)
            .job(models::gpt3(rate, scale, 3), CongestionSpec::Reno)
            .job(models::gpt2(rate, scale, 3), CongestionSpec::Reno);
        let mut sc = apply_pias(b, rate, SimDuration::micros(12), thresholds).build();
        sc.run(SimTime::from_secs_f64(10.0));
        assert!(sc.all_finished());
        // The small job, which never leaves the top levels for long,
        // stays near its ideal iteration time.
        let small_ideal = sc.ideal_period(1).as_secs_f64();
        assert!(sc.stats(1).tail_mean(2) < small_ideal * 1.3);
    }
}
