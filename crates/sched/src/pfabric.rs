//! The pFabric baseline (Alizadeh et al., SIGCOMM '13).
//!
//! pFabric's design point: flows tag every packet with the flow's
//! *remaining* size; switches keep very small priority queues, serve the
//! lowest tag first, and drop the highest tag on overflow; the transport
//! is a "minimal" aggressive one (start at line rate, recover simply).
//! The net effect approximates SRPT — which §2 of the MLTCP paper shows
//! is *not* optimal for periodic DNN jobs: it starves the job with the
//! largest per-iteration transfer (GPT-3's J1) behind the smaller GPT-2
//! transfers, adding head-of-line blocking every iteration.
//!
//! In this repository pFabric = a [`ScenarioBuilder`] configuration:
//! strict-priority bottleneck queue + `PriorityPolicy::RemainingBytes`
//! senders + a BDP-sized fixed initial window.

use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::queue::QueueKind;
use mltcp_netsim::time::SimDuration;
use mltcp_transport::sender::PriorityPolicy;
use mltcp_workload::scenario::ScenarioBuilder;

/// pFabric's recommended small switch buffer, expressed in BDPs of the
/// bottleneck (the paper uses ~2×BDP per port).
pub const PFABRIC_BUFFER_BDPS: u64 = 2;

/// Applies the pFabric configuration to a scenario builder.
///
/// `rtt_hint` should be the expected base RTT (used to size the priority
/// queue and the line-rate initial window).
pub fn apply_pfabric(
    builder: ScenarioBuilder,
    bottleneck: Bandwidth,
    rtt_hint: SimDuration,
) -> ScenarioBuilder {
    let bdp_bytes = bottleneck.bdp_bytes(rtt_hint).max(30_000);
    let bdp_pkts = (bdp_bytes as f64 / 1500.0).ceil();
    builder
        .bottleneck(bottleneck)
        .bottleneck_queue(QueueKind::StrictPriority {
            cap_bytes: bdp_bytes * PFABRIC_BUFFER_BDPS,
        })
        .priority_policy(PriorityPolicy::RemainingBytes)
        // "Minimal transport": start each burst near line rate.
        .initial_cwnd(bdp_pkts * 1.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltcp_netsim::time::SimTime;
    use mltcp_workload::models;
    use mltcp_workload::scenario::CongestionSpec;

    /// Two jobs, one big transfer and one small, synchronized comm: SRPT
    /// must finish the small job's transfer at (nearly) its ideal time
    /// while delaying the big one — the head-of-line pattern of Fig 2(b).
    #[test]
    fn srpt_prefers_the_smaller_transfer() {
        use mltcp_workload::job::JobSpec;
        // A big single-burst transfer (4 ms of link time) vs a small one
        // (1 ms), synchronized starts each iteration.
        let rate = models::paper_bottleneck();
        let big = JobSpec::new("big", SimDuration::millis(4), 25_000_000, 4);
        let small = JobSpec::new("small", SimDuration::millis(4), 6_250_000, 4);
        let rtt = SimDuration::micros(12);
        let b = ScenarioBuilder::new(11)
            .job(big, CongestionSpec::Reno)
            .job(small, CongestionSpec::Reno);
        let mut sc = apply_pfabric(b, rate, rtt).build();
        sc.run(SimTime::from_secs_f64(10.0));
        assert!(sc.all_finished());
        let small_ideal = sc.ideal_period(1).as_secs_f64();
        let big_ideal = sc.ideal_period(0).as_secs_f64();
        // The small job's first (fully synchronized) iteration runs at
        // (nearly) ideal: SRPT lets it cut through the big transfer…
        let small_first = sc.stats(1).durations()[0];
        assert!(
            small_first < small_ideal * 1.15,
            "small: {small_first:.6} vs ideal {small_ideal:.6}"
        );
        // …while the big transfer absorbs the whole collision (it is
        // delayed by ≈ the small transfer's 1 ms of link time).
        let big_first = sc.stats(0).durations()[0];
        assert!(
            big_first > big_ideal * 1.08,
            "big job should be delayed by SRPT at the synchronized start: {big_first:.6} vs {big_ideal:.6}"
        );
    }
}
