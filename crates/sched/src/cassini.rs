//! A Cassini-style centralized interleaving scheduler.
//!
//! Cassini formulates network-aware job scheduling as an ILP over a
//! "compatibility ring"; for a single bottleneck link — the setting of
//! every experiment in the MLTCP paper — the problem reduces to choosing
//! one start-time offset per job so the periodic communication phases
//! tile the hyperperiod with minimal overlap. This module solves that
//! reduced problem *exactly up to grid resolution*: greedy sequential
//! placement on a fine offset grid followed by rounds of coordinate
//! descent, minimizing the excess-demand integral. For compatible mixes
//! (`Σ aᵢ ≤ 1`) this reaches zero contention, i.e. the ILP optimum.
//!
//! The returned offsets are *communication-phase* start times; use
//! [`driver_offsets`] to convert them into job (compute-phase) start
//! offsets for the simulator's workload driver.

use mltcp_core::schedule::{contention, hyperperiod, ContentionReport, PeriodicJob};
use mltcp_netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The optimizer's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterleavedSchedule {
    /// One communication-phase offset per job (seconds, within the job's
    /// own period).
    pub offsets: Vec<f64>,
    /// Residual contention at those offsets.
    pub report: ContentionReport,
}

impl InterleavedSchedule {
    /// Whether the schedule is fully interleaved (no two comm phases
    /// ever overlap, up to floating-point boundary slop in the sampled
    /// contention check — exactly-packed mixes abut at measure-zero
    /// boundaries).
    pub fn is_fully_interleaved(&self) -> bool {
        self.report.peak_overlap <= 1 || self.report.contended_time_fraction < 1e-3
    }
}

/// Excess-demand integral for a candidate offset assignment.
fn excess(jobs: &[PeriodicJob], samples: usize) -> f64 {
    contention(jobs, samples).excess_demand
}

/// Chooses communication-phase offsets minimizing contention.
///
/// `grid` is the number of candidate offsets tried per job and per
/// refinement round (resolution = period / grid); `samples` the demand
/// sampling density over the hyperperiod. Defaults of (240, 4096) solve
/// every mix in this repository in well under a second.
pub fn optimize_offsets(jobs: &[PeriodicJob], grid: usize, samples: usize) -> InterleavedSchedule {
    assert!(!jobs.is_empty(), "need at least one job");
    let grid = grid.max(8);
    let samples = samples.max(256);
    let mut placed: Vec<PeriodicJob> = Vec::with_capacity(jobs.len());

    // Greedy sequential placement: each job picks the offset minimizing
    // the excess among the jobs placed so far. Sort by descending comm
    // duration first (big rocks first) but remember original order.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        let da = jobs[a].comm_duration();
        let db = jobs[b].comm_duration();
        db.partial_cmp(&da).expect("finite durations")
    });
    let mut offsets = vec![0.0; jobs.len()];
    for &idx in &order {
        let job = jobs[idx];
        let mut best = (f64::INFINITY, 0.0);
        for g in 0..grid {
            let off = job.period * g as f64 / grid as f64;
            placed.push(job.with_offset(off));
            let e = excess(&placed, samples);
            placed.pop();
            if e < best.0 {
                best = (e, off);
            }
            if e == 0.0 {
                break; // can't beat zero
            }
        }
        offsets[idx] = best.1;
        placed.push(job.with_offset(best.1));
    }

    // Coordinate descent refinement.
    let mut current: Vec<PeriodicJob> = jobs
        .iter()
        .zip(&offsets)
        .map(|(j, &o)| j.with_offset(o))
        .collect();
    let mut best_excess = excess(&current, samples);
    for _round in 0..4 {
        if best_excess == 0.0 {
            break;
        }
        let mut improved = false;
        for i in 0..current.len() {
            let job = jobs[i];
            let mut best = (best_excess, current[i].offset);
            for g in 0..grid {
                let off = job.period * g as f64 / grid as f64;
                let prev = current[i];
                current[i] = job.with_offset(off);
                let e = excess(&current, samples);
                if e < best.0 - 1e-12 {
                    best = (e, off);
                } else {
                    current[i] = prev;
                    continue;
                }
                current[i] = prev;
            }
            if best.1 != current[i].offset {
                current[i] = job.with_offset(best.1);
                best_excess = best.0;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    let offsets: Vec<f64> = current.iter().map(|j| j.offset).collect();
    InterleavedSchedule {
        report: contention(&current, samples),
        offsets,
    }
}

/// Converts communication-phase offsets into *driver* start offsets: the
/// workload driver starts with a compute phase of duration `compute_i`,
/// so its start offset is `(comm_offset − compute) mod period`.
pub fn driver_offsets(
    schedule: &InterleavedSchedule,
    compute_times: &[SimDuration],
    periods: &[f64],
) -> Vec<SimDuration> {
    schedule
        .offsets
        .iter()
        .zip(compute_times)
        .zip(periods)
        .map(|((&comm_off, comp), &period)| {
            let mut start = (comm_off - comp.as_secs_f64()) % period;
            if start < 0.0 {
                start += period;
            }
            SimDuration::from_secs_f64(start)
        })
        .collect()
}

/// The hyperperiod the optimizer reasons over (re-exported convenience).
pub fn planning_horizon(jobs: &[PeriodicJob]) -> f64 {
    hyperperiod(jobs, 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(t: f64, a: f64) -> PeriodicJob {
        PeriodicJob::new(t, a, 0.0).unwrap()
    }

    #[test]
    fn two_half_jobs_interleave_perfectly() {
        let jobs = [job(1.8, 0.5), job(1.8, 0.5)];
        let s = optimize_offsets(&jobs, 120, 2048);
        assert!(s.is_fully_interleaved(), "report: {:?}", s.report);
        // Offsets must differ by T/2 on the circle.
        let d = (s.offsets[0] - s.offsets[1]).rem_euclid(1.8);
        let d = d.min(1.8 - d);
        assert!((d - 0.9).abs() < 0.05, "Δ={d}");
    }

    #[test]
    fn six_sixth_jobs_tile_the_period() {
        let jobs = vec![job(1.8, 1.0 / 6.0); 6];
        let s = optimize_offsets(&jobs, 240, 4096);
        assert!(
            s.is_fully_interleaved(),
            "six a=1/6 jobs are exactly compatible; report: {:?}",
            s.report
        );
    }

    #[test]
    fn fig2_mix_reaches_zero_contention() {
        // J1: T=1.2 a=1/2 split into two sub-bursts (the Fig. 1(a)
        // traffic shape); J2..J4: T=1.8 a=1/6 — Σa = 1 and the mix tiles
        // exactly (the Fig. 2(a) optimal schedule).
        let jobs = [
            job(1.2, 0.5).with_bursts(2),
            job(1.8, 1.0 / 6.0),
            job(1.8, 1.0 / 6.0),
            job(1.8, 1.0 / 6.0),
        ];
        let s = optimize_offsets(&jobs, 240, 8192);
        assert!(
            s.is_fully_interleaved(),
            "Fig. 2 mix must interleave; report: {:?}",
            s.report
        );
    }

    #[test]
    fn fig2_mix_with_contiguous_gpt3_comm_cannot_tile() {
        // Counterpoint documenting the geometry: with one contiguous
        // 0.6 s comm phase, a 1.8 s-period GPT-2 job alternates between
        // two tracks 0.6 s apart and one always collides — no zero-
        // contention schedule exists.
        let jobs = [
            job(1.2, 0.5),
            job(1.8, 1.0 / 6.0),
            job(1.8, 1.0 / 6.0),
            job(1.8, 1.0 / 6.0),
        ];
        let s = optimize_offsets(&jobs, 240, 8192);
        assert!(!s.is_fully_interleaved());
    }

    #[test]
    fn incompatible_mix_minimizes_rather_than_eliminates() {
        let jobs = vec![job(1.0, 0.4); 3]; // Σa = 1.2 > 1
        let s = optimize_offsets(&jobs, 120, 2048);
        assert!(!s.is_fully_interleaved());
        // But still far better than synchronized start.
        let sync = contention(&jobs, 2048);
        assert!(s.report.excess_demand < sync.excess_demand / 2.0);
    }

    #[test]
    fn single_job_trivial() {
        let s = optimize_offsets(&[job(1.0, 0.5)], 64, 512);
        assert!(s.is_fully_interleaved());
        assert_eq!(s.offsets.len(), 1);
    }

    #[test]
    fn driver_offsets_subtract_compute() {
        let sched = InterleavedSchedule {
            offsets: vec![0.9, 0.1],
            report: ContentionReport {
                peak_overlap: 1,
                contended_time_fraction: 0.0,
                excess_demand: 0.0,
            },
        };
        let offs = driver_offsets(
            &sched,
            &[
                SimDuration::from_secs_f64(0.6),
                SimDuration::from_secs_f64(1.5),
            ],
            &[1.2, 1.8],
        );
        assert!((offs[0].as_secs_f64() - 0.3).abs() < 1e-9);
        // 0.1 - 1.5 mod 1.8 = 0.4.
        assert!((offs[1].as_secs_f64() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn unequal_periods_with_slack() {
        let jobs = [job(1.0, 0.25), job(2.0, 0.25)];
        let s = optimize_offsets(&jobs, 160, 4096);
        assert!(s.is_fully_interleaved(), "report: {:?}", s.report);
    }
}
