//! # mltcp-sched
//!
//! The flow-scheduling baselines the paper compares MLTCP against, plus
//! the §5 multi-resource generalization:
//!
//! * [`cassini`] — a centralized interleaving scheduler in the spirit of
//!   Cassini (Rajasekaran et al., NSDI '24). On a single bottleneck the
//!   ILP reduces to choosing start-time offsets for the jobs' periodic
//!   communication phases; we solve that exactly with a grid +
//!   coordinate-descent search that reaches zero contention whenever the
//!   mix is compatible.
//! * [`pfabric`] — the pFabric (SIGCOMM '13) design point: switches do
//!   shortest-remaining-size-first with priority queues + lowest-priority
//!   drop; senders run a minimal, aggressive transport.
//! * [`pias`] — PIAS (NSDI '15): information-agnostic MLFQ, demoting a
//!   flow's priority as it sends more bytes.
//! * [`multires`] — the paper's §5 sketch: the aggressiveness function
//!   generalized to CPU-core scheduling via job *progress*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cassini;
pub mod multires;
pub mod pfabric;
pub mod pias;

pub use cassini::{optimize_offsets, InterleavedSchedule};
