//! Metrics registry: monotonic counters, gauges, and log-linear
//! histograms, snapshotted per scenario and serialized alongside bench
//! results.

use crate::event::{DropReason, EventKind, FaultKind, RetxKind, TelemetryEvent};
use crate::sink::TelemetrySink;
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log-linear buckets: 8 exact values (0–7) plus 4 linear
/// sub-buckets per power-of-two decade up to `u64::MAX`.
const BUCKETS: usize = 252;

fn bucket_index(v: u64) -> usize {
    let idx = if v < 8 {
        v as usize
    } else {
        let k = 63 - v.leading_zeros() as usize; // v in [2^k, 2^{k+1})
        8 + (k - 3) * 4 + ((v >> (k - 2)) & 3) as usize
    };
    debug_assert!(idx < BUCKETS);
    idx
}

/// Inclusive `(low, high)` value range of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 8 {
        (idx as u64, idx as u64)
    } else {
        let b = idx - 8;
        let k = b / 4 + 3;
        let sub = (b % 4) as u64;
        let width = 1u64 << (k - 2);
        let low = (1u64 << k) + sub * width;
        (low, low + width - 1)
    }
}

/// A log-linear histogram of `u64` observations.
///
/// Values 0–7 are exact; beyond that each power-of-two decade splits
/// into 4 linear sub-buckets, so relative quantile error stays under
/// ~12.5% at any magnitude while the whole histogram is one flat array.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket midpoints;
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * (self.count.saturating_sub(1)) as f64) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > target {
                let (low, high) = bucket_bounds(idx);
                // Clamp to the observed range so p0/p100 are exact.
                let mid = (low as f64 + high as f64) / 2.0;
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Summarizes into the serializable form.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Serializable summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket-midpoint approximation).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

#[derive(Debug, Clone)]
struct Named<T> {
    name: String,
    value: T,
}

/// A registry of named counters, gauges, and histograms with cheap
/// handle-based updates (`usize` indices; no lookup on the hot path).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<Named<u64>>,
    gauges: Vec<Named<f64>>,
    histograms: Vec<Named<Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a monotonic counter; returns its handle.
    pub fn counter(&mut self, name: &str) -> usize {
        if let Some(i) = self.counters.iter().position(|n| n.name == name) {
            return i;
        }
        self.counters.push(Named {
            name: name.to_string(),
            value: 0,
        });
        self.counters.len() - 1
    }

    /// Registers (or finds) a gauge; returns its handle.
    pub fn gauge(&mut self, name: &str) -> usize {
        if let Some(i) = self.gauges.iter().position(|n| n.name == name) {
            return i;
        }
        self.gauges.push(Named {
            name: name.to_string(),
            value: 0.0,
        });
        self.gauges.len() - 1
    }

    /// Registers (or finds) a histogram; returns its handle.
    pub fn histogram(&mut self, name: &str) -> usize {
        if let Some(i) = self.histograms.iter().position(|n| n.name == name) {
            return i;
        }
        self.histograms.push(Named {
            name: name.to_string(),
            value: Histogram::new(),
        });
        self.histograms.len() - 1
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn inc(&mut self, handle: usize, n: u64) {
        self.counters[handle].value += n;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, handle: usize, v: f64) {
        self.gauges[handle].value = v;
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&mut self, handle: usize, v: u64) {
        self.histograms[handle].value.observe(v);
    }

    /// Snapshots everything, name-sorted for deterministic output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .iter()
            .map(|n| (n.name.clone(), n.value))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .iter()
            .map(|n| (n.name.clone(), n.value))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistSummary)> = self
            .histograms
            .iter()
            .map(|n| (n.name.clone(), n.value.summary()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A name-sorted, plain-data snapshot of a [`MetricsRegistry`].
/// `Clone + Send`, so sweep workers can hand it across threads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Serializes as a compact JSON object (counters, gauges, histogram
    /// summaries) for embedding alongside bench results.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let mut s = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{v}", esc(name));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", esc(name), num(*v));
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                esc(name),
                h.count,
                h.min,
                h.max,
                num(h.mean),
                num(h.p50),
                num(h.p90),
                num(h.p99)
            );
        }
        s.push_str("}}");
        s
    }
}

/// A [`TelemetrySink`] that aggregates the event stream into a
/// [`MetricsRegistry`]: per-kind event counters, per-reason drop
/// counters, retransmit counters, per-flow RTT histograms, queue-depth
/// histograms, and fault windows (brownout / link-downtime seconds).
#[derive(Debug)]
pub struct MetricsSink {
    reg: MetricsRegistry,
    kind_counters: [usize; EventKind::COUNT],
    drop_counters: [usize; DropReason::ALL.len()],
    drops_total: usize,
    retx_fast: usize,
    retx_rto: usize,
    ecn_marks: usize,
    qdepth_bytes: usize,
    qdepth_pkts: usize,
    rtt_by_flow: BTreeMap<u64, usize>,
    /// Open brownout window start per link (RateFactor < 1 opens).
    brown_open: BTreeMap<u32, u64>,
    /// Accumulated brownout ns per link.
    brown_ns: BTreeMap<u32, u64>,
    /// Open downtime window start per link (LinkDown opens).
    down_open: BTreeMap<u32, u64>,
    /// Accumulated downtime ns per link.
    down_ns: BTreeMap<u32, u64>,
    last_t: u64,
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSink {
    /// A sink with the standard metric families pre-registered.
    pub fn new() -> Self {
        let mut reg = MetricsRegistry::new();
        let mut kind_counters = [0usize; EventKind::COUNT];
        for k in EventKind::ALL {
            kind_counters[k.index()] = reg.counter(&format!("events/{}", k.name()));
        }
        let mut drop_counters = [0usize; DropReason::ALL.len()];
        for (i, r) in DropReason::ALL.into_iter().enumerate() {
            drop_counters[i] = reg.counter(&format!("drops/{}", r.name()));
        }
        let drops_total = reg.counter("drops/total");
        let retx_fast = reg.counter("retx/fast");
        let retx_rto = reg.counter("retx/rto");
        let ecn_marks = reg.counter("ecn/marks");
        let qdepth_bytes = reg.histogram("queue/bytes");
        let qdepth_pkts = reg.histogram("queue/pkts");
        Self {
            reg,
            kind_counters,
            drop_counters,
            drops_total,
            retx_fast,
            retx_rto,
            ecn_marks,
            qdepth_bytes,
            qdepth_pkts,
            rtt_by_flow: BTreeMap::new(),
            brown_open: BTreeMap::new(),
            brown_ns: BTreeMap::new(),
            down_open: BTreeMap::new(),
            down_ns: BTreeMap::new(),
            last_t: 0,
        }
    }

    fn drop_reason_handle(&self, reason: DropReason) -> usize {
        let i = DropReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.drop_counters[i]
    }

    /// Snapshots the registry plus the derived fault gauges.
    ///
    /// Windows still open at the last observed event are closed at that
    /// timestamp. Brownout / downtime seconds are reported as the
    /// *maximum* over links, not the sum — a dumbbell fault hits both
    /// directions of the same bottleneck and summing would double-count
    /// the outage.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.reg.snapshot();
        let close = |open: &BTreeMap<u32, u64>, acc: &BTreeMap<u32, u64>| -> f64 {
            let mut max_ns = 0u64;
            for (&link, &ns) in acc {
                let extra = open
                    .get(&link)
                    .map(|&start| self.last_t.saturating_sub(start))
                    .unwrap_or(0);
                max_ns = max_ns.max(ns + extra);
            }
            for (&link, &start) in open {
                if !acc.contains_key(&link) {
                    max_ns = max_ns.max(self.last_t.saturating_sub(start));
                }
            }
            max_ns as f64 / 1e9
        };
        snap.gauges.push((
            "fault/brownout_s".to_string(),
            close(&self.brown_open, &self.brown_ns),
        ));
        snap.gauges.push((
            "fault/downtime_s".to_string(),
            close(&self.down_open, &self.down_ns),
        ));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

impl TelemetrySink for MetricsSink {
    fn record(&mut self, ev: &TelemetryEvent) {
        self.last_t = self.last_t.max(ev.t_ns());
        self.reg.inc(self.kind_counters[ev.kind().index()], 1);
        match *ev {
            TelemetryEvent::Rtt { flow, rtt_ns, .. } => {
                let h = match self.rtt_by_flow.get(&flow) {
                    Some(&h) => h,
                    None => {
                        let h = self.reg.histogram(&format!("rtt_ns/flow{flow}"));
                        self.rtt_by_flow.insert(flow, h);
                        h
                    }
                };
                self.reg.observe(h, rtt_ns);
            }
            TelemetryEvent::EcnMark { .. } => {
                self.reg.inc(self.ecn_marks, 1);
            }
            TelemetryEvent::QueueDepth { bytes, packets, .. } => {
                self.reg.observe(self.qdepth_bytes, bytes);
                self.reg.observe(self.qdepth_pkts, packets as u64);
            }
            TelemetryEvent::Drop { reason, .. } => {
                self.reg.inc(self.drop_reason_handle(reason), 1);
                self.reg.inc(self.drops_total, 1);
            }
            TelemetryEvent::Retx { kind, .. } => {
                let h = match kind {
                    RetxKind::Fast => self.retx_fast,
                    RetxKind::Rto => self.retx_rto,
                };
                self.reg.inc(h, 1);
            }
            TelemetryEvent::Fault {
                t_ns,
                link,
                kind,
                factor,
            } => match kind {
                FaultKind::RateFactor if factor < 1.0 => {
                    self.brown_open.entry(link).or_insert(t_ns);
                }
                FaultKind::RateFactor => {
                    if let Some(start) = self.brown_open.remove(&link) {
                        *self.brown_ns.entry(link).or_insert(0) += t_ns.saturating_sub(start);
                    }
                }
                FaultKind::LinkDown => {
                    self.down_open.entry(link).or_insert(t_ns);
                }
                FaultKind::LinkUp => {
                    if let Some(start) = self.down_open.remove(&link) {
                        *self.down_ns.entry(link).or_insert(0) += t_ns.saturating_sub(start);
                    }
                }
                FaultKind::LossModel | FaultKind::LossRestore => {}
            },
            TelemetryEvent::Cwnd { .. }
            | TelemetryEvent::Gain { .. }
            | TelemetryEvent::Phase { .. } => {}
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2] {
                let idx = bucket_index(probe);
                assert!(idx >= last, "index regressed at {probe}");
                assert!(idx < BUCKETS);
                let (low, high) = bucket_bounds(idx);
                assert!(
                    (low..=high).contains(&probe),
                    "{probe} outside bucket [{low}, {high}]"
                );
                last = idx;
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v * 1000);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1000);
        assert_eq!(s.max, 1_000_000);
        let rel = |got: f64, want: f64| (got - want).abs() / want;
        assert!(rel(s.p50, 500_000.0) < 0.15, "p50 = {}", s.p50);
        assert!(rel(s.p90, 900_000.0) < 0.15, "p90 = {}", s.p90);
        assert!(rel(s.mean, 500_500.0) < 0.01, "mean = {}", s.mean);
    }

    #[test]
    fn registry_handles_and_snapshot_sorted() {
        let mut reg = MetricsRegistry::new();
        let b = reg.counter("b");
        let a = reg.counter("a");
        assert_eq!(reg.counter("b"), b, "re-registration returns same handle");
        reg.inc(b, 2);
        reg.inc(a, 1);
        let g = reg.gauge("g");
        reg.set(g, 2.5);
        let h = reg.histogram("h");
        reg.observe(h, 7);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(snap.counter("b"), 2);
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert!(snap.to_json().contains("\"counters\""));
    }

    #[test]
    fn metrics_sink_aggregates_faults_and_drops() {
        let mut sink = MetricsSink::new();
        sink.record(&TelemetryEvent::Fault {
            t_ns: 1_000_000_000,
            link: 0,
            kind: FaultKind::RateFactor,
            factor: 0.25,
        });
        sink.record(&TelemetryEvent::Fault {
            t_ns: 1_000_000_000,
            link: 1,
            kind: FaultKind::RateFactor,
            factor: 0.25,
        });
        sink.record(&TelemetryEvent::Drop {
            t_ns: 2_000_000_000,
            link: 0,
            flow: 9,
            reason: DropReason::QueueFull,
        });
        sink.record(&TelemetryEvent::Retx {
            t_ns: 2_500_000_000,
            flow: 9,
            job: 0,
            kind: RetxKind::Rto,
            count: 1,
        });
        sink.record(&TelemetryEvent::Fault {
            t_ns: 3_000_000_000,
            link: 0,
            kind: FaultKind::RateFactor,
            factor: 1.0,
        });
        sink.record(&TelemetryEvent::Fault {
            t_ns: 3_000_000_000,
            link: 1,
            kind: FaultKind::RateFactor,
            factor: 1.0,
        });
        let snap = sink.snapshot();
        assert_eq!(snap.counter("drops/queue_full"), 1);
        assert_eq!(snap.counter("drops/total"), 1);
        assert_eq!(snap.counter("retx/rto"), 1);
        assert_eq!(snap.counter("events/fault"), 4);
        // Both directions browned out for the same 2 s: max, not sum.
        assert_eq!(snap.gauge("fault/brownout_s"), Some(2.0));
        assert_eq!(snap.gauge("fault/downtime_s"), Some(0.0));
    }

    #[test]
    fn open_fault_window_closes_at_last_event() {
        let mut sink = MetricsSink::new();
        sink.record(&TelemetryEvent::Fault {
            t_ns: 0,
            link: 3,
            kind: FaultKind::LinkDown,
            factor: 1.0,
        });
        sink.record(&TelemetryEvent::Phase {
            t_ns: 5_000_000_000,
            job: 0,
            iter: 0,
            phase: crate::event::PhaseKind::IterEnd,
        });
        let snap = sink.snapshot();
        assert_eq!(snap.gauge("fault/downtime_s"), Some(5.0));
    }
}
