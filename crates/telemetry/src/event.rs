//! The typed telemetry event vocabulary.
//!
//! Every event is a small `Copy` struct variant carrying raw primitives
//! only — timestamps in nanoseconds, flow/link/job ids as integers — so
//! emitting one costs a register-sized copy, never an allocation, and
//! the crate stays a dependency-free leaf.

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Arrival exceeded the queue's byte capacity (drop-tail).
    QueueFull,
    /// Evicted from a strict-priority queue by a more urgent arrival.
    Evicted,
    /// The link's stochastic loss process fired.
    RandomLoss,
    /// Cut mid-flight when the carrying link went down (stale epoch).
    LinkCut,
    /// Drained from an egress queue when its link went down.
    Drained,
    /// No route from the node toward the destination.
    NoRoute,
    /// Arrived at a host with no agent bound to the flow.
    Unbound,
}

impl DropReason {
    /// All reasons, in serialization order.
    pub const ALL: [DropReason; 7] = [
        DropReason::QueueFull,
        DropReason::Evicted,
        DropReason::RandomLoss,
        DropReason::LinkCut,
        DropReason::Drained,
        DropReason::NoRoute,
        DropReason::Unbound,
    ];

    /// Stable short name (used in JSONL and metric names).
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::Evicted => "evicted",
            DropReason::RandomLoss => "random_loss",
            DropReason::LinkCut => "link_cut",
            DropReason::Drained => "drained",
            DropReason::NoRoute => "no_route",
            DropReason::Unbound => "unbound",
        }
    }

    /// Parses the short name back (inverse of [`DropReason::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|r| r.name() == s)
    }
}

/// Which loss-recovery mechanism fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetxKind {
    /// Fast retransmit (triple duplicate ack).
    Fast,
    /// Retransmission timeout.
    Rto,
}

impl RetxKind {
    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            RetxKind::Fast => "fast",
            RetxKind::Rto => "rto",
        }
    }

    /// Parses the short name back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fast" => Some(RetxKind::Fast),
            "rto" => Some(RetxKind::Rto),
            _ => None,
        }
    }
}

/// An iteration-phase boundary in a training job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// The iteration's compute phase began.
    ComputeStart,
    /// The communication phase (first burst) began.
    CommStart,
    /// The iteration completed (last transfer acked).
    IterEnd,
}

impl PhaseKind {
    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::ComputeStart => "compute",
            PhaseKind::CommStart => "comm",
            PhaseKind::IterEnd => "end",
        }
    }

    /// Parses the short name back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "compute" => Some(PhaseKind::ComputeStart),
            "comm" => Some(PhaseKind::CommStart),
            "end" => Some(PhaseKind::IterEnd),
            _ => None,
        }
    }
}

/// Which fault action was applied to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The link went down.
    LinkDown,
    /// The link came back up.
    LinkUp,
    /// The serialization rate was scaled by `factor` (brownout when < 1,
    /// restore when back to 1).
    RateFactor,
    /// The loss model was replaced (bursty-loss window opened).
    LossModel,
    /// The configured loss model was restored (window closed).
    LossRestore,
}

impl FaultKind {
    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "link_down",
            FaultKind::LinkUp => "link_up",
            FaultKind::RateFactor => "rate_factor",
            FaultKind::LossModel => "loss_model",
            FaultKind::LossRestore => "loss_restore",
        }
    }

    /// Parses the short name back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "link_down" => Some(FaultKind::LinkDown),
            "link_up" => Some(FaultKind::LinkUp),
            "rate_factor" => Some(FaultKind::RateFactor),
            "loss_model" => Some(FaultKind::LossModel),
            "loss_restore" => Some(FaultKind::LossRestore),
            _ => None,
        }
    }
}

/// One telemetry event. All variants are `Copy` and carry a `t_ns`
/// simulated-time stamp; sinks receive them in simulation order (the
/// emitting layers run inside the deterministic event loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// cwnd/ssthresh after a congestion-control update (good ack, fast
    /// retransmit, or RTO collapse).
    Cwnd {
        /// Simulated time (ns).
        t_ns: u64,
        /// Flow id.
        flow: u64,
        /// Owning job index.
        job: u32,
        /// Congestion window, packets (fractional).
        cwnd: f64,
        /// Slow-start threshold, packets.
        ssthresh: f64,
    },
    /// The MLTCP gain `F(bytes_ratio)` changed for a flow.
    Gain {
        /// Simulated time (ns).
        t_ns: u64,
        /// Flow id.
        flow: u64,
        /// Owning job index.
        job: u32,
        /// The gain applied to the base algorithm's increment.
        gain: f64,
        /// The iteration progress ratio that produced it.
        bytes_ratio: f64,
    },
    /// A Karn-valid RTT sample.
    Rtt {
        /// Simulated time (ns).
        t_ns: u64,
        /// Flow id.
        flow: u64,
        /// Owning job index.
        job: u32,
        /// The sample, nanoseconds.
        rtt_ns: u64,
    },
    /// An ECN-capable packet received a CE mark at a queue.
    EcnMark {
        /// Simulated time (ns).
        t_ns: u64,
        /// Link index of the marking queue.
        link: u32,
        /// Flow id of the marked packet.
        flow: u64,
    },
    /// Queue backlog observed after an accepted enqueue.
    QueueDepth {
        /// Simulated time (ns).
        t_ns: u64,
        /// Link index.
        link: u32,
        /// Backlog, bytes.
        bytes: u64,
        /// Backlog, packets.
        packets: u32,
    },
    /// A packet was dropped.
    Drop {
        /// Simulated time (ns).
        t_ns: u64,
        /// Link index ([`TelemetryEvent::NO_LINK`] when not link-bound).
        link: u32,
        /// Flow id of the dropped packet (0 when unknown).
        flow: u64,
        /// Why.
        reason: DropReason,
    },
    /// A loss-recovery transition fired at a sender.
    Retx {
        /// Simulated time (ns).
        t_ns: u64,
        /// Flow id.
        flow: u64,
        /// Owning job index.
        job: u32,
        /// Fast retransmit or RTO.
        kind: RetxKind,
        /// Running count of this kind for the flow (RTO: consecutive run
        /// length; fast: cumulative fast-retransmit events).
        count: u32,
    },
    /// A job crossed an iteration-phase boundary.
    Phase {
        /// Simulated time (ns).
        t_ns: u64,
        /// Job index.
        job: u32,
        /// Iteration index.
        iter: u32,
        /// Which boundary.
        phase: PhaseKind,
    },
    /// A fault epoch: an installed fault action was applied to a link.
    Fault {
        /// Simulated time (ns).
        t_ns: u64,
        /// Link index.
        link: u32,
        /// Which action.
        kind: FaultKind,
        /// Rate factor for [`FaultKind::RateFactor`] (1.0 otherwise).
        factor: f64,
    },
}

/// Fieldless mirror of [`TelemetryEvent`], for counters and dispatch
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`TelemetryEvent::Cwnd`].
    Cwnd,
    /// [`TelemetryEvent::Gain`].
    Gain,
    /// [`TelemetryEvent::Rtt`].
    Rtt,
    /// [`TelemetryEvent::EcnMark`].
    EcnMark,
    /// [`TelemetryEvent::QueueDepth`].
    QueueDepth,
    /// [`TelemetryEvent::Drop`].
    Drop,
    /// [`TelemetryEvent::Retx`].
    Retx,
    /// [`TelemetryEvent::Phase`].
    Phase,
    /// [`TelemetryEvent::Fault`].
    Fault,
}

impl EventKind {
    /// Number of kinds.
    pub const COUNT: usize = 9;

    /// All kinds, in index order.
    pub const ALL: [EventKind; Self::COUNT] = [
        EventKind::Cwnd,
        EventKind::Gain,
        EventKind::Rtt,
        EventKind::EcnMark,
        EventKind::QueueDepth,
        EventKind::Drop,
        EventKind::Retx,
        EventKind::Phase,
        EventKind::Fault,
    ];

    /// Dense index (`0..COUNT`).
    pub fn index(self) -> usize {
        match self {
            EventKind::Cwnd => 0,
            EventKind::Gain => 1,
            EventKind::Rtt => 2,
            EventKind::EcnMark => 3,
            EventKind::QueueDepth => 4,
            EventKind::Drop => 5,
            EventKind::Retx => 6,
            EventKind::Phase => 7,
            EventKind::Fault => 8,
        }
    }

    /// Stable short name (the JSONL `"e"` tag).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Cwnd => "cwnd",
            EventKind::Gain => "gain",
            EventKind::Rtt => "rtt",
            EventKind::EcnMark => "ecn",
            EventKind::QueueDepth => "qdepth",
            EventKind::Drop => "drop",
            EventKind::Retx => "retx",
            EventKind::Phase => "phase",
            EventKind::Fault => "fault",
        }
    }

    /// Parses the short name back.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl TelemetryEvent {
    /// Sentinel link index for drops not attributable to a link.
    pub const NO_LINK: u32 = u32::MAX;

    /// The event's fieldless kind.
    pub fn kind(&self) -> EventKind {
        match self {
            TelemetryEvent::Cwnd { .. } => EventKind::Cwnd,
            TelemetryEvent::Gain { .. } => EventKind::Gain,
            TelemetryEvent::Rtt { .. } => EventKind::Rtt,
            TelemetryEvent::EcnMark { .. } => EventKind::EcnMark,
            TelemetryEvent::QueueDepth { .. } => EventKind::QueueDepth,
            TelemetryEvent::Drop { .. } => EventKind::Drop,
            TelemetryEvent::Retx { .. } => EventKind::Retx,
            TelemetryEvent::Phase { .. } => EventKind::Phase,
            TelemetryEvent::Fault { .. } => EventKind::Fault,
        }
    }

    /// The event's simulated timestamp, nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match *self {
            TelemetryEvent::Cwnd { t_ns, .. }
            | TelemetryEvent::Gain { t_ns, .. }
            | TelemetryEvent::Rtt { t_ns, .. }
            | TelemetryEvent::EcnMark { t_ns, .. }
            | TelemetryEvent::QueueDepth { t_ns, .. }
            | TelemetryEvent::Drop { t_ns, .. }
            | TelemetryEvent::Retx { t_ns, .. }
            | TelemetryEvent::Phase { t_ns, .. }
            | TelemetryEvent::Fault { t_ns, .. } => t_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_matches_all_order() {
        for (i, k) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(EventKind::parse(k.name()), Some(k));
        }
    }

    #[test]
    fn names_round_trip() {
        for r in DropReason::ALL {
            assert_eq!(DropReason::parse(r.name()), Some(r));
        }
        for k in [RetxKind::Fast, RetxKind::Rto] {
            assert_eq!(RetxKind::parse(k.name()), Some(k));
        }
        for p in [
            PhaseKind::ComputeStart,
            PhaseKind::CommStart,
            PhaseKind::IterEnd,
        ] {
            assert_eq!(PhaseKind::parse(p.name()), Some(p));
        }
        for f in [
            FaultKind::LinkDown,
            FaultKind::LinkUp,
            FaultKind::RateFactor,
            FaultKind::LossModel,
            FaultKind::LossRestore,
        ] {
            assert_eq!(FaultKind::parse(f.name()), Some(f));
        }
    }

    #[test]
    fn kind_and_timestamp_accessors() {
        let ev = TelemetryEvent::Phase {
            t_ns: 42,
            job: 1,
            iter: 2,
            phase: PhaseKind::CommStart,
        };
        assert_eq!(ev.kind(), EventKind::Phase);
        assert_eq!(ev.t_ns(), 42);
    }

    /// Events sit on the hot emission path: keep them register-friendly.
    #[test]
    fn event_size_stays_small() {
        assert!(std::mem::size_of::<TelemetryEvent>() <= 40);
    }
}
