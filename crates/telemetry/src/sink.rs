//! The [`TelemetrySink`] trait and the in-memory sink implementations.

use crate::event::TelemetryEvent;
use crate::metrics::{MetricsSink, MetricsSnapshot};
use std::any::Any;

/// A consumer of telemetry events.
///
/// Sinks are strictly observational: `record` takes a borrowed event and
/// returns nothing, so an installed sink cannot perturb the simulation
/// that feeds it. Events arrive in simulation order. A sink lives inside
/// one simulator (simulations never migrate threads), so implementations
/// need not be `Send`.
pub trait TelemetrySink: Any {
    /// Consumes one event.
    fn record(&mut self, ev: &TelemetryEvent);

    /// Associates a job index with a display name. Called once per job
    /// when a sink is attached to a scenario, before any events.
    fn job_name(&mut self, job: u32, name: &str) {
        let _ = (job, name);
    }

    /// Flushes buffered output (called when the sink is detached).
    fn flush(&mut self) {}

    /// Consumes the boxed sink for downcasting back to its concrete type
    /// (how harnesses retrieve a recorder or metrics sink after a run).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A sink that discards everything. Useful for measuring the cost of the
/// dispatch machinery itself, and as the "enabled but inert" arm of
/// determinism tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    #[inline]
    fn record(&mut self, _ev: &TelemetryEvent) {}

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A bounded ring-buffer recorder: keeps the most recent `capacity`
/// events, dropping the oldest beyond that. Allocation happens once, up
/// front; recording is an index write.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<TelemetryEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    total: u64,
    jobs: Vec<(u32, String)>,
}

impl RingRecorder {
    /// Creates a recorder holding up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
            jobs: Vec::new(),
        }
    }

    /// Total events offered (recorded + overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events overwritten because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Job names registered at attach time, in registration order.
    pub fn jobs(&self) -> &[(u32, String)] {
        &self.jobs
    }
}

impl TelemetrySink for RingRecorder {
    #[inline]
    fn record(&mut self, ev: &TelemetryEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(*ev);
        } else {
            self.buf[self.head] = *ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn job_name(&mut self, job: u32, name: &str) {
        self.jobs.push((job, name.to_string()));
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Fans each event out to several sinks (e.g. a metrics aggregator plus
/// a JSONL trace writer in the same run).
pub struct TeeSink {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl TeeSink {
    /// Combines the given sinks; each receives every event in order.
    pub fn new(sinks: Vec<Box<dyn TelemetrySink>>) -> Self {
        Self { sinks }
    }

    /// Dissolves the tee back into its parts (flushing first).
    pub fn into_parts(mut self) -> Vec<Box<dyn TelemetrySink>> {
        for s in &mut self.sinks {
            s.flush();
        }
        self.sinks
    }
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TelemetrySink for TeeSink {
    fn record(&mut self, ev: &TelemetryEvent) {
        for s in &mut self.sinks {
            s.record(ev);
        }
    }

    fn job_name(&mut self, job: u32, name: &str) {
        for s in &mut self.sinks {
            s.job_name(job, name);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Extracts a [`MetricsSnapshot`] from a detached sink: works on a bare
/// [`MetricsSink`] or finds one inside a [`TeeSink`]. Returns `None`
/// when no metrics sink was installed.
pub fn take_metrics(sink: Box<dyn TelemetrySink>) -> Option<MetricsSnapshot> {
    let any = sink.into_any();
    let any = match any.downcast::<MetricsSink>() {
        Ok(m) => return Some(m.snapshot()),
        Err(other) => other,
    };
    if let Ok(tee) = any.downcast::<TeeSink>() {
        for part in tee.into_parts() {
            if let Some(snap) = take_metrics(part) {
                return Some(snap);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseKind;

    fn ev(t: u64) -> TelemetryEvent {
        TelemetryEvent::Phase {
            t_ns: t,
            job: 0,
            iter: 0,
            phase: PhaseKind::IterEnd,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = RingRecorder::new(3);
        for t in 0..5 {
            r.record(&ev(t));
        }
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.overwritten(), 2);
        let ts: Vec<u64> = r.events().iter().map(TelemetryEvent::t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn ring_under_capacity_preserves_order() {
        let mut r = RingRecorder::new(10);
        for t in 0..4 {
            r.record(&ev(t));
        }
        let ts: Vec<u64> = r.events().iter().map(TelemetryEvent::t_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3]);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn tee_fans_out_and_dissolves() {
        let mut tee = TeeSink::new(vec![
            Box::new(RingRecorder::new(8)),
            Box::new(RingRecorder::new(8)),
        ]);
        tee.job_name(0, "j");
        tee.record(&ev(1));
        tee.record(&ev(2));
        for part in tee.into_parts() {
            let r = part
                .into_any()
                .downcast::<RingRecorder>()
                .expect("ring part");
            assert_eq!(r.total_recorded(), 2);
            assert_eq!(r.jobs(), &[(0, "j".to_string())]);
        }
    }

    #[test]
    fn take_metrics_finds_sink_in_tee() {
        let mut tee = TeeSink::new(vec![Box::new(NoopSink), Box::new(MetricsSink::new())]);
        tee.record(&ev(7));
        let snap = take_metrics(Box::new(tee)).expect("metrics inside tee");
        assert_eq!(snap.counter("events/phase"), 1);
        assert!(take_metrics(Box::new(NoopSink)).is_none());
    }
}
