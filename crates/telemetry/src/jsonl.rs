//! Streaming JSONL trace writer ([`JsonlSink`]) and the matching offline
//! reader ([`Trace`]).
//!
//! The format is one flat JSON object per line. The first line is a
//! header `{"e":"hdr","v":1}`, followed by zero or more job-name lines
//! `{"e":"job","job":0,"name":"..."}`, then events tagged by
//! [`EventKind::name`] (`{"e":"cwnd","t":...,...}`). Everything is
//! hand-rolled — the crate is a dependency-free leaf — so the parser
//! accepts exactly the flat subset the writer produces.

use crate::event::{DropReason, EventKind, FaultKind, PhaseKind, RetxKind, TelemetryEvent};
use crate::sink::TelemetrySink;
use std::any::Any;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Trace format version emitted in the header line.
pub const TRACE_VERSION: u32 = 1;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Inf; `null` stands in for the one legitimate
        // non-finite value in the schema — an infinite ssthresh before
        // the first loss — and the reader maps it back to +inf.
        out.push_str("null");
    }
}

/// Serializes one event as a single JSONL line (no trailing newline).
pub fn event_to_line(ev: &TelemetryEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"e\":\"{}\",\"t\":{}", ev.kind().name(), ev.t_ns());
    match *ev {
        TelemetryEvent::Cwnd {
            flow,
            job,
            cwnd,
            ssthresh,
            ..
        } => {
            let _ = write!(s, ",\"flow\":{flow},\"job\":{job},\"cwnd\":");
            push_f64(&mut s, cwnd);
            s.push_str(",\"ssthresh\":");
            push_f64(&mut s, ssthresh);
        }
        TelemetryEvent::Gain {
            flow,
            job,
            gain,
            bytes_ratio,
            ..
        } => {
            let _ = write!(s, ",\"flow\":{flow},\"job\":{job},\"gain\":");
            push_f64(&mut s, gain);
            s.push_str(",\"ratio\":");
            push_f64(&mut s, bytes_ratio);
        }
        TelemetryEvent::Rtt {
            flow, job, rtt_ns, ..
        } => {
            let _ = write!(s, ",\"flow\":{flow},\"job\":{job},\"rtt_ns\":{rtt_ns}");
        }
        TelemetryEvent::EcnMark { link, flow, .. } => {
            let _ = write!(s, ",\"link\":{link},\"flow\":{flow}");
        }
        TelemetryEvent::QueueDepth {
            link,
            bytes,
            packets,
            ..
        } => {
            let _ = write!(s, ",\"link\":{link},\"bytes\":{bytes},\"pkts\":{packets}");
        }
        TelemetryEvent::Drop {
            link, flow, reason, ..
        } => {
            let _ = write!(
                s,
                ",\"link\":{link},\"flow\":{flow},\"reason\":\"{}\"",
                reason.name()
            );
        }
        TelemetryEvent::Retx {
            flow,
            job,
            kind,
            count,
            ..
        } => {
            let _ = write!(
                s,
                ",\"flow\":{flow},\"job\":{job},\"kind\":\"{}\",\"count\":{count}",
                kind.name()
            );
        }
        TelemetryEvent::Phase {
            job, iter, phase, ..
        } => {
            let _ = write!(
                s,
                ",\"job\":{job},\"iter\":{iter},\"phase\":\"{}\"",
                phase.name()
            );
        }
        TelemetryEvent::Fault {
            link, kind, factor, ..
        } => {
            let _ = write!(
                s,
                ",\"link\":{link},\"kind\":\"{}\",\"factor\":",
                kind.name()
            );
            push_f64(&mut s, factor);
        }
    }
    s.push('}');
    s
}

/// A streaming JSONL trace writer.
///
/// Buffered; flushed when detached from the simulator and on drop, so a
/// normally-completed run always leaves a complete file behind.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    events: u64,
}

impl JsonlSink {
    /// Creates (truncating) `path` and writes the header line.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        writeln!(out, "{{\"e\":\"hdr\",\"v\":{TRACE_VERSION}}}")?;
        Ok(Self { out, events: 0 })
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&mut self, ev: &TelemetryEvent) {
        self.events += 1;
        // I/O errors deliberately do not propagate into the simulation
        // (telemetry never perturbs); a torn trace is caught by the
        // reader's validation instead.
        let _ = writeln!(self.out, "{}", event_to_line(ev));
    }

    fn job_name(&mut self, job: u32, name: &str) {
        let mut line = String::with_capacity(48);
        let _ = write!(line, "{{\"e\":\"job\",\"job\":{job},\"name\":\"");
        escape_into(&mut line, name);
        line.push_str("\"}");
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// A schema violation (or I/O failure) found while reading a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, msg: impl Into<String>) -> TraceError {
    TraceError {
        line,
        msg: msg.into(),
    }
}

/// One parsed JSON scalar from a flat object.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    /// Numbers keep their raw text so integers round-trip exactly.
    Num(String),
    /// `null` — the writer's encoding of an infinite float (ssthresh
    /// before the first loss event).
    Null,
}

/// Parses the flat-object subset this crate writes:
/// `{"key":"string"|number|null,...}`. Rejects nesting, arrays and
/// booleans — none appear in a valid trace.
fn parse_flat_object(s: &str) -> Result<Vec<(String, Val)>, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err("expected string".into());
        }
        *i += 1;
        let mut out = String::new();
        loop {
            let Some(&c) = b.get(*i) else {
                return Err("unterminated string".into());
            };
            *i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = b.get(*i) else {
                        return Err("dangling escape".into());
                    };
                    *i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if *i + 4 > b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = &s[*i..*i + 4];
                            *i += 4;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                c => {
                    // Continuation bytes of multi-byte chars pass through
                    // unchanged: re-slice from the original str.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        // Back up and take the full UTF-8 char.
                        *i -= 1;
                        let ch = s[*i..].chars().next().ok_or("bad utf-8")?;
                        out.push(ch);
                        *i += ch.len_utf8();
                    }
                }
            }
        }
    };
    skip_ws(&mut i);
    if b.get(i) != Some(&b'{') {
        return Err("expected '{'".into());
    }
    i += 1;
    let mut fields = Vec::new();
    skip_ws(&mut i);
    if b.get(i) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&mut i);
        let val = if b.get(i) == Some(&b'"') {
            Val::Str(parse_string(&mut i)?)
        } else if s[i..].starts_with("null") {
            i += 4;
            Val::Null
        } else {
            let start = i;
            while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                i += 1;
            }
            if start == i {
                return Err(format!("expected value for key {key:?}"));
            }
            Val::Num(s[start..i].to_string())
        };
        fields.push((key, val));
        skip_ws(&mut i);
        match b.get(i) {
            Some(&b',') => i += 1,
            Some(&b'}') => {
                i += 1;
                break;
            }
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    skip_ws(&mut i);
    if i != b.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(fields)
}

struct Obj<'a> {
    fields: Vec<(String, Val)>,
    line: usize,
    tag: &'a str,
}

impl Obj<'_> {
    fn get(&self, key: &str) -> Result<&Val, TraceError> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| {
                err(
                    self.line,
                    format!("{} event missing field {key:?}", self.tag),
                )
            })
    }

    fn u64(&self, key: &str) -> Result<u64, TraceError> {
        match self.get(key)? {
            Val::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| err(self.line, format!("field {key:?} is not a u64: {raw:?}"))),
            Val::Str(_) | Val::Null => {
                Err(err(self.line, format!("field {key:?} must be a number")))
            }
        }
    }

    fn u32(&self, key: &str) -> Result<u32, TraceError> {
        let v = self.u64(key)?;
        u32::try_from(v).map_err(|_| err(self.line, format!("field {key:?} overflows u32")))
    }

    fn f64(&self, key: &str) -> Result<f64, TraceError> {
        match self.get(key)? {
            Val::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| err(self.line, format!("field {key:?} is not a number: {raw:?}"))),
            // The writer encodes an infinite float (pre-loss ssthresh)
            // as null.
            Val::Null => Ok(f64::INFINITY),
            Val::Str(_) => Err(err(self.line, format!("field {key:?} must be a number"))),
        }
    }

    fn str(&self, key: &str) -> Result<&str, TraceError> {
        match self.get(key)? {
            Val::Str(v) => Ok(v),
            Val::Num(_) | Val::Null => {
                Err(err(self.line, format!("field {key:?} must be a string")))
            }
        }
    }
}

/// A fully-loaded, schema-validated trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Job index → display name pairs, in the order recorded.
    pub jobs: Vec<(u32, String)>,
    /// All events, in recording (= simulation) order.
    pub events: Vec<TelemetryEvent>,
}

impl Trace {
    /// Reads and validates a JSONL trace file.
    ///
    /// Validation covers: header line first with a known version, every
    /// line a parseable flat object with a known `"e"` tag, all required
    /// fields present and well-typed, and event timestamps monotonically
    /// non-decreasing (the writer records in simulation order, so any
    /// regression means a torn or corrupted file).
    pub fn read<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        let file = File::open(&path)
            .map_err(|e| err(0, format!("open {}: {e}", path.as_ref().display())))?;
        Self::read_from(BufReader::new(file))
    }

    /// Reads and validates a trace from any buffered reader.
    pub fn read_from<R: BufRead>(reader: R) -> Result<Self, TraceError> {
        let mut trace = Trace::default();
        let mut saw_header = false;
        let mut last_t = 0u64;
        for (idx, line) in reader.lines().enumerate() {
            let lineno = idx + 1;
            let line = line.map_err(|e| err(lineno, format!("read: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_flat_object(&line).map_err(|m| err(lineno, m))?;
            let tag = match fields.iter().find(|(k, _)| k == "e") {
                Some((_, Val::Str(tag))) => tag.clone(),
                _ => return Err(err(lineno, "missing string tag \"e\"")),
            };
            let obj = Obj {
                fields,
                line: lineno,
                tag: &tag,
            };
            if !saw_header {
                if tag != "hdr" {
                    return Err(err(lineno, "first line must be the \"hdr\" header"));
                }
                let v = obj.u32("v")?;
                if v != TRACE_VERSION {
                    return Err(err(
                        lineno,
                        format!("unsupported trace version {v} (want {TRACE_VERSION})"),
                    ));
                }
                saw_header = true;
                continue;
            }
            match tag.as_str() {
                "hdr" => return Err(err(lineno, "duplicate header")),
                "job" => {
                    let job = obj.u32("job")?;
                    let name = obj.str("name")?.to_string();
                    trace.jobs.push((job, name));
                    continue;
                }
                _ => {}
            }
            let Some(kind) = EventKind::parse(&tag) else {
                return Err(err(lineno, format!("unknown event tag {tag:?}")));
            };
            let t_ns = obj.u64("t")?;
            if t_ns < last_t {
                return Err(err(
                    lineno,
                    format!("timestamp regressed: {t_ns} after {last_t}"),
                ));
            }
            last_t = t_ns;
            let ev = match kind {
                EventKind::Cwnd => TelemetryEvent::Cwnd {
                    t_ns,
                    flow: obj.u64("flow")?,
                    job: obj.u32("job")?,
                    cwnd: obj.f64("cwnd")?,
                    ssthresh: obj.f64("ssthresh")?,
                },
                EventKind::Gain => TelemetryEvent::Gain {
                    t_ns,
                    flow: obj.u64("flow")?,
                    job: obj.u32("job")?,
                    gain: obj.f64("gain")?,
                    bytes_ratio: obj.f64("ratio")?,
                },
                EventKind::Rtt => TelemetryEvent::Rtt {
                    t_ns,
                    flow: obj.u64("flow")?,
                    job: obj.u32("job")?,
                    rtt_ns: obj.u64("rtt_ns")?,
                },
                EventKind::EcnMark => TelemetryEvent::EcnMark {
                    t_ns,
                    link: obj.u32("link")?,
                    flow: obj.u64("flow")?,
                },
                EventKind::QueueDepth => TelemetryEvent::QueueDepth {
                    t_ns,
                    link: obj.u32("link")?,
                    bytes: obj.u64("bytes")?,
                    packets: obj.u32("pkts")?,
                },
                EventKind::Drop => TelemetryEvent::Drop {
                    t_ns,
                    link: obj.u32("link")?,
                    flow: obj.u64("flow")?,
                    reason: DropReason::parse(obj.str("reason")?).ok_or_else(|| {
                        err(
                            lineno,
                            format!("unknown drop reason {:?}", obj.str("reason")),
                        )
                    })?,
                },
                EventKind::Retx => TelemetryEvent::Retx {
                    t_ns,
                    flow: obj.u64("flow")?,
                    job: obj.u32("job")?,
                    kind: RetxKind::parse(obj.str("kind")?).ok_or_else(|| {
                        err(lineno, format!("unknown retx kind {:?}", obj.str("kind")))
                    })?,
                    count: obj.u32("count")?,
                },
                EventKind::Phase => TelemetryEvent::Phase {
                    t_ns,
                    job: obj.u32("job")?,
                    iter: obj.u32("iter")?,
                    phase: PhaseKind::parse(obj.str("phase")?).ok_or_else(|| {
                        err(lineno, format!("unknown phase {:?}", obj.str("phase")))
                    })?,
                },
                EventKind::Fault => TelemetryEvent::Fault {
                    t_ns,
                    link: obj.u32("link")?,
                    kind: FaultKind::parse(obj.str("kind")?).ok_or_else(|| {
                        err(lineno, format!("unknown fault kind {:?}", obj.str("kind")))
                    })?,
                    factor: obj.f64("factor")?,
                },
            };
            trace.events.push(ev);
        }
        if !saw_header {
            return Err(err(0, "empty trace (no header)"));
        }
        Ok(trace)
    }

    /// Display name for a job index, falling back to `job<N>`.
    pub fn job_label(&self, job: u32) -> String {
        self.jobs
            .iter()
            .find(|(j, _)| *j == job)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("job{job}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::Phase {
                t_ns: 0,
                job: 0,
                iter: 0,
                phase: PhaseKind::ComputeStart,
            },
            TelemetryEvent::Cwnd {
                t_ns: 10,
                flow: 3,
                job: 0,
                cwnd: 12.5,
                ssthresh: 64.0,
            },
            // Pre-loss ssthresh is infinite; round-trips through `null`.
            TelemetryEvent::Cwnd {
                t_ns: 10,
                flow: 4,
                job: 1,
                cwnd: 10.0,
                ssthresh: f64::INFINITY,
            },
            TelemetryEvent::Gain {
                t_ns: 11,
                flow: 3,
                job: 0,
                gain: 1.375,
                bytes_ratio: 0.5,
            },
            TelemetryEvent::Rtt {
                t_ns: 12,
                flow: 3,
                job: 0,
                rtt_ns: 84_000,
            },
            TelemetryEvent::EcnMark {
                t_ns: 13,
                link: 2,
                flow: 3,
            },
            TelemetryEvent::QueueDepth {
                t_ns: 14,
                link: 2,
                bytes: 9000,
                packets: 6,
            },
            TelemetryEvent::Drop {
                t_ns: 15,
                link: TelemetryEvent::NO_LINK,
                flow: 3,
                reason: DropReason::NoRoute,
            },
            TelemetryEvent::Retx {
                t_ns: 16,
                flow: 3,
                job: 0,
                kind: RetxKind::Rto,
                count: 2,
            },
            TelemetryEvent::Fault {
                t_ns: 17,
                link: 2,
                kind: FaultKind::RateFactor,
                factor: 0.25,
            },
        ]
    }

    fn render(events: &[TelemetryEvent]) -> String {
        let mut s = format!("{{\"e\":\"hdr\",\"v\":{TRACE_VERSION}}}\n");
        s.push_str("{\"e\":\"job\",\"job\":0,\"name\":\"vgg \\\"A\\\"\"}\n");
        for ev in events {
            s.push_str(&event_to_line(ev));
            s.push('\n');
        }
        s
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let events = sample_events();
        let text = render(&events);
        let trace = Trace::read_from(Cursor::new(text)).expect("valid trace");
        assert_eq!(trace.jobs, vec![(0, "vgg \"A\"".to_string())]);
        assert_eq!(trace.events, events);
        assert_eq!(trace.job_label(0), "vgg \"A\"");
        assert_eq!(trace.job_label(9), "job9");
    }

    #[test]
    fn reader_rejects_missing_header() {
        let text = "{\"e\":\"phase\",\"t\":0,\"job\":0,\"iter\":0,\"phase\":\"end\"}\n";
        let e = Trace::read_from(Cursor::new(text)).unwrap_err();
        assert!(e.msg.contains("header"), "{e}");
    }

    #[test]
    fn reader_rejects_time_regression() {
        let text = format!(
            "{{\"e\":\"hdr\",\"v\":{TRACE_VERSION}}}\n\
             {{\"e\":\"phase\",\"t\":5,\"job\":0,\"iter\":0,\"phase\":\"end\"}}\n\
             {{\"e\":\"phase\",\"t\":4,\"job\":0,\"iter\":1,\"phase\":\"end\"}}\n"
        );
        let e = Trace::read_from(Cursor::new(text)).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("regressed"), "{e}");
    }

    #[test]
    fn reader_rejects_unknown_tag_and_bad_fields() {
        let bad_tag =
            format!("{{\"e\":\"hdr\",\"v\":{TRACE_VERSION}}}\n{{\"e\":\"nope\",\"t\":0}}\n");
        assert!(Trace::read_from(Cursor::new(bad_tag)).is_err());
        let missing =
            format!("{{\"e\":\"hdr\",\"v\":{TRACE_VERSION}}}\n{{\"e\":\"cwnd\",\"t\":0}}\n");
        assert!(Trace::read_from(Cursor::new(missing)).is_err());
        let bad_version = "{\"e\":\"hdr\",\"v\":999}\n";
        assert!(Trace::read_from(Cursor::new(bad_version)).is_err());
    }

    #[test]
    fn jsonl_sink_writes_readable_file() {
        let path = std::env::temp_dir().join(format!(
            "mltcp-telemetry-jsonl-test-{}.jsonl",
            std::process::id()
        ));
        {
            let mut sink = JsonlSink::create(&path).expect("create");
            sink.job_name(0, "alpha");
            for ev in sample_events() {
                sink.record(&ev);
            }
            assert_eq!(sink.events_written(), 10);
            sink.flush();
        }
        let trace = Trace::read(&path).expect("valid file");
        assert_eq!(trace.events.len(), 10);
        assert_eq!(trace.jobs, vec![(0, "alpha".to_string())]);
        let _ = std::fs::remove_file(&path);
    }
}
