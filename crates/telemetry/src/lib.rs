//! # mltcp-telemetry
//!
//! Cross-stack observability for the MLTCP reproduction: a typed,
//! allocation-light telemetry event bus plus the sinks, metrics, and
//! profiling machinery that consume it.
//!
//! This is a *leaf* crate: it knows nothing about the simulator, the
//! transport, or the workload. Events carry raw primitives (`t_ns`,
//! `flow`, `job`, `link`), so every layer above can emit without a
//! dependency cycle:
//!
//! * `mltcp-netsim` emits queue depths, ECN marks, drops, and fault
//!   epochs, and hosts the sink inside the simulator core;
//! * `mltcp-transport` emits cwnd/ssthresh updates, RTT samples,
//!   RTO/fast-retransmit transitions, and MLTCP gain changes;
//! * `mltcp-workload` emits iteration-phase boundaries and attaches
//!   sinks to scenarios (registering job names);
//! * `mltcp-bench` records traces (`--trace out.jsonl`), snapshots
//!   metrics alongside figure JSON, and inspects traces offline with
//!   the `trace_inspect` binary.
//!
//! ## Determinism contract
//!
//! Sinks **observe** the simulation; they never perturb it. No sink may
//! touch the event queue, the RNG streams, or any simulation state — the
//! [`TelemetrySink::record`] hook receives a borrowed event and returns
//! nothing. An instrumented run is therefore byte-identical (same replay
//! hash) to an uninstrumented one by construction, and the bench suite
//! verifies this property end to end.
//!
//! ## Cost model
//!
//! When no sink is installed the emitting layers pay exactly one
//! predictable branch per would-be event (`Option::is_some` on the sink
//! slot) — events are only *constructed* inside the taken branch, so the
//! disabled path adds no allocation and no formatting work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod profiler;
pub mod sink;

pub use event::{DropReason, EventKind, FaultKind, PhaseKind, RetxKind, TelemetryEvent};
pub use jsonl::{JsonlSink, Trace, TraceError};
pub use metrics::{HistSummary, Histogram, MetricsRegistry, MetricsSink, MetricsSnapshot};
pub use profiler::{ProfileEntry, ProfileSnapshot, SimProfiler};
pub use sink::{take_metrics, NoopSink, RingRecorder, TeeSink, TelemetrySink};
