//! Sim-time profiler: attributes wall-clock nanoseconds to simulator
//! event kinds / phases so throughput regressions become explainable.
//!
//! The profiler itself holds no clock — the simulator measures each
//! dispatch with `std::time::Instant` and calls [`SimProfiler::record`]
//! with a label index and elapsed nanoseconds. That keeps this crate
//! free of timing policy and the profiler trivially testable.

/// Accumulates per-label event counts and wall-clock nanoseconds.
#[derive(Debug, Clone)]
pub struct SimProfiler {
    labels: Vec<&'static str>,
    events: Vec<u64>,
    nanos: Vec<u64>,
}

impl SimProfiler {
    /// A profiler with one accumulator per label.
    pub fn new(labels: &[&'static str]) -> Self {
        Self {
            labels: labels.to_vec(),
            events: vec![0; labels.len()],
            nanos: vec![0; labels.len()],
        }
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when constructed with no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds one event of `elapsed_ns` wall-clock under label `idx`.
    #[inline]
    pub fn record(&mut self, idx: usize, elapsed_ns: u64) {
        self.events[idx] += 1;
        self.nanos[idx] += elapsed_ns;
    }

    /// Snapshots the accumulated attribution.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            entries: self
                .labels
                .iter()
                .zip(self.events.iter().zip(self.nanos.iter()))
                .map(|(&label, (&events, &nanos))| ProfileEntry {
                    label,
                    events,
                    nanos,
                })
                .collect(),
        }
    }
}

/// One label's accumulated attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The label (e.g. `"deliver"`).
    pub label: &'static str,
    /// Events attributed to it.
    pub events: u64,
    /// Wall-clock nanoseconds attributed to it.
    pub nanos: u64,
}

impl ProfileEntry {
    /// Mean nanoseconds per event (0 when no events).
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.nanos as f64 / self.events as f64
        }
    }
}

/// A snapshot of a [`SimProfiler`], ready for reporting.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// Per-label attribution, in label-registration order.
    pub entries: Vec<ProfileEntry>,
}

impl ProfileSnapshot {
    /// Total events across all labels.
    pub fn total_events(&self) -> u64 {
        self.entries.iter().map(|e| e.events).sum()
    }

    /// Total attributed wall-clock nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.entries.iter().map(|e| e.nanos).sum()
    }

    /// An entry's share of total attributed time, in `[0, 1]`.
    pub fn share(&self, entry: &ProfileEntry) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            entry.nanos as f64 / total as f64
        }
    }

    /// The entry for `label`, if one was registered.
    pub fn find(&self, label: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// Entries sorted by attributed time, busiest first.
    pub fn by_time(&self) -> Vec<ProfileEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.label.cmp(b.label)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_attributes_shares() {
        let mut p = SimProfiler::new(&["deliver", "timer"]);
        p.record(0, 300);
        p.record(0, 100);
        p.record(1, 100);
        let snap = p.snapshot();
        assert_eq!(snap.total_events(), 3);
        assert_eq!(snap.total_nanos(), 500);
        let deliver = snap.entries[0];
        assert_eq!(deliver.label, "deliver");
        assert_eq!(deliver.events, 2);
        assert_eq!(deliver.ns_per_event(), 200.0);
        assert!((snap.share(&deliver) - 0.8).abs() < 1e-12);
        let busiest = snap.by_time();
        assert_eq!(busiest[0].label, "deliver");
        assert_eq!(snap.find("timer").unwrap().events, 1);
        assert!(snap.find("nope").is_none());
    }

    #[test]
    fn empty_profiler_is_safe() {
        let p = SimProfiler::new(&[]);
        assert!(p.is_empty());
        let snap = p.snapshot();
        assert_eq!(snap.total_events(), 0);
        assert_eq!(
            snap.share(&ProfileEntry {
                label: "x",
                events: 0,
                nanos: 0
            }),
            0.0
        );
    }
}
