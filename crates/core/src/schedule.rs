//! Interleaving metrics over sets of periodic jobs.
//!
//! A periodic job is described by its ideal iteration time `T`, its
//! communication fraction `a` (the comm phase lasts `a·T` and demands the
//! full link rate, per the §4 "continuous and constant demand" assumption),
//! and a start-time offset. This module computes aggregate demand profiles
//! over the hyperperiod, contention metrics, and the *compatibility*
//! condition (borrowed from Cassini) under which a fully interleaved
//! schedule exists — the regime in which the paper guarantees MLTCP's
//! convergence.

use serde::{Deserialize, Serialize};

/// A periodic job's schedule-relevant geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicJob {
    /// Ideal (isolated) iteration time in seconds.
    pub period: f64,
    /// Fraction of the period spent communicating at full link demand.
    pub comm_fraction: f64,
    /// Offset of the first communication phase's start, in seconds.
    pub offset: f64,
    /// Number of equal communication sub-bursts per iteration, spread
    /// evenly over the period (DNN allreduce traffic is often
    /// multi-burst — see the paper's Fig. 1(a) GPT-3 pattern). 1 = one
    /// contiguous comm phase.
    pub bursts: u32,
}

impl PeriodicJob {
    /// Constructs a job, validating `period > 0` and `comm_fraction ∈ (0, 1]`.
    pub fn new(period: f64, comm_fraction: f64, offset: f64) -> Option<Self> {
        if period.is_finite()
            && period > 0.0
            && comm_fraction.is_finite()
            && comm_fraction > 0.0
            && comm_fraction <= 1.0
            && offset.is_finite()
        {
            Some(Self {
                period,
                comm_fraction,
                offset,
                bursts: 1,
            })
        } else {
            None
        }
    }

    /// Splits the communication phase into `n` equal sub-bursts spread
    /// evenly over the period (builder style; `n` clamps to ≥ 1).
    pub fn with_bursts(mut self, n: u32) -> Self {
        self.bursts = n.max(1);
        self
    }

    /// Duration of the communication phase, `a·T`.
    pub fn comm_duration(&self) -> f64 {
        self.comm_fraction * self.period
    }

    /// Whether the job is communicating at time `t` (ideal schedule).
    pub fn is_communicating(&self, t: f64) -> bool {
        let mut phase = (t - self.offset) % self.period;
        if phase < 0.0 {
            phase += self.period;
        }
        let b = f64::from(self.bursts.max(1));
        let sub_period = self.period / b;
        (phase % sub_period) < self.comm_duration() / b
    }

    /// Returns a copy with a different offset.
    pub fn with_offset(&self, offset: f64) -> Self {
        Self { offset, ..*self }
    }
}

/// Least common multiple of the jobs' periods, computed on a rational grid:
/// periods are snapped to multiples of `resolution` seconds first (1 µs by
/// default is far finer than any DNN iteration time).
pub fn hyperperiod(jobs: &[PeriodicJob], resolution: f64) -> f64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = b;
            b = a % b;
            a = t;
        }
        a
    }
    let res = if resolution > 0.0 { resolution } else { 1e-6 };
    let mut l: u64 = 1;
    for j in jobs {
        let p = (j.period / res).round().max(1.0) as u64;
        l = l / gcd(l, p) * p;
        // Guard against pathological mixes blowing up the grid.
        if l > 1_000_000_000_000 {
            return l as f64 * res;
        }
    }
    l as f64 * res
}

/// The aggregate number of jobs communicating at each of `samples` points
/// over `[0, horizon)`.
pub fn demand_profile(jobs: &[PeriodicJob], horizon: f64, samples: usize) -> Vec<u32> {
    let n = samples.max(1);
    (0..n)
        .map(|i| {
            let t = horizon * i as f64 / n as f64;
            jobs.iter().filter(|j| j.is_communicating(t)).count() as u32
        })
        .collect()
}

/// Contention metrics over one hyperperiod of an ideal (no-slowdown)
/// schedule with the given offsets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Maximum number of simultaneously communicating jobs.
    pub peak_overlap: u32,
    /// Fraction of time at least two jobs communicate simultaneously.
    pub contended_time_fraction: f64,
    /// Time-integral of `(overlap − 1)⁺`, the total excess demand
    /// (seconds of communication that must be delayed or slowed).
    pub excess_demand: f64,
}

/// Evaluates contention for the jobs' current offsets.
pub fn contention(jobs: &[PeriodicJob], samples: usize) -> ContentionReport {
    let horizon = hyperperiod(jobs, 1e-6);
    let profile = demand_profile(jobs, horizon, samples);
    let n = profile.len().max(1);
    let dt = horizon / n as f64;
    let mut peak = 0u32;
    let mut contended = 0usize;
    let mut excess = 0.0;
    for &d in &profile {
        peak = peak.max(d);
        if d >= 2 {
            contended += 1;
            excess += (d - 1) as f64 * dt;
        }
    }
    ContentionReport {
        peak_overlap: peak,
        contended_time_fraction: contended as f64 / n as f64,
        excess_demand: excess,
    }
}

/// The Cassini-style compatibility condition for a single full-rate link:
/// within one hyperperiod `H`, the total communication time demanded by all
/// jobs must fit, i.e. `Σ_j (H / T_j) · a_j · T_j = H · Σ_j a_j ≤ H`.
///
/// Equivalently `Σ a_j ≤ 1`. Only in this regime does a zero-contention
/// (fully interleaved) schedule exist, and only there does the paper's
/// convergence guarantee apply.
pub fn is_compatible(jobs: &[PeriodicJob]) -> bool {
    jobs.iter().map(|j| j.comm_fraction).sum::<f64>() <= 1.0 + 1e-9
}

/// Total communication demand `Σ a_j` (utilization of the bottleneck by
/// ideal schedules; 1.0 = perfectly packed).
pub fn total_comm_demand(jobs: &[PeriodicJob]) -> f64 {
    jobs.iter().map(|j| j.comm_fraction).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(t: f64, a: f64, off: f64) -> PeriodicJob {
        PeriodicJob::new(t, a, off).unwrap()
    }

    #[test]
    fn is_communicating_respects_phase() {
        let j = job(1.8, 1.0 / 6.0, 0.0);
        assert!(j.is_communicating(0.0));
        assert!(j.is_communicating(0.29));
        assert!(!j.is_communicating(0.31));
        assert!(j.is_communicating(1.8 + 0.1));
        // Negative time wraps.
        assert!(!j.is_communicating(-0.1));
        assert!(j.is_communicating(-1.7));
    }

    #[test]
    fn offset_shifts_the_phase() {
        let j = job(1.8, 1.0 / 6.0, 0.5);
        assert!(!j.is_communicating(0.0));
        assert!(j.is_communicating(0.6));
    }

    #[test]
    fn hyperperiod_of_fig2_mix() {
        // J1: T = 1.2 s, J2..J4: T = 1.8 s ⇒ hyperperiod 3.6 s.
        let jobs = [
            job(1.2, 0.5, 0.0),
            job(1.8, 1.0 / 6.0, 0.0),
            job(1.8, 1.0 / 6.0, 0.0),
            job(1.8, 1.0 / 6.0, 0.0),
        ];
        assert!((hyperperiod(&jobs, 1e-6) - 3.6).abs() < 1e-6);
    }

    #[test]
    fn synchronized_identical_jobs_fully_contend() {
        let jobs = vec![job(1.8, 1.0 / 6.0, 0.0); 6];
        let rep = contention(&jobs, 10_000);
        assert_eq!(rep.peak_overlap, 6);
        assert!(rep.excess_demand > 0.0);
    }

    #[test]
    fn perfectly_staggered_jobs_do_not_contend() {
        // Six a=1/6 jobs offset by exactly aT each: zero overlap.
        let at = 1.8 / 6.0;
        let jobs: Vec<_> = (0..6).map(|i| job(1.8, 1.0 / 6.0, at * i as f64)).collect();
        let rep = contention(&jobs, 10_000);
        assert_eq!(rep.peak_overlap, 1);
        assert_eq!(rep.contended_time_fraction, 0.0);
        assert_eq!(rep.excess_demand, 0.0);
    }

    #[test]
    fn compatibility_condition() {
        let six = vec![job(1.8, 1.0 / 6.0, 0.0); 6];
        assert!(is_compatible(&six));
        assert!((total_comm_demand(&six) - 1.0).abs() < 1e-9);

        let seven = vec![job(1.8, 1.0 / 6.0, 0.0); 7];
        assert!(!is_compatible(&seven));
    }

    #[test]
    fn fig2_mix_is_compatible() {
        let jobs = [
            job(1.2, 0.5, 0.0),
            job(1.8, 1.0 / 6.0, 0.0),
            job(1.8, 1.0 / 6.0, 0.0),
            job(1.8, 1.0 / 6.0, 0.0),
        ];
        assert!(is_compatible(&jobs));
        assert!(total_comm_demand(&jobs) <= 1.0 + 1e-12);
    }

    #[test]
    fn invalid_jobs_rejected() {
        assert!(PeriodicJob::new(0.0, 0.5, 0.0).is_none());
        assert!(PeriodicJob::new(1.0, 0.0, 0.0).is_none());
        assert!(PeriodicJob::new(1.0, 1.1, 0.0).is_none());
        assert!(PeriodicJob::new(1.0, 0.5, f64::NAN).is_none());
    }

    #[test]
    fn demand_profile_length_and_values() {
        let jobs = [job(1.0, 0.5, 0.0), job(1.0, 0.5, 0.5)];
        let p = demand_profile(&jobs, 1.0, 100);
        assert_eq!(p.len(), 100);
        assert!(p.iter().all(|&d| d == 1));
    }
}
