//! Per-flow iteration tracking — the state machine of Algorithm 1.
//!
//! MLTCP needs two pieces of per-job information: `TOTAL_BYTES`, the number
//! of bytes the flow transfers every training iteration, and `COMP_TIME`, a
//! threshold on the gap between consecutive acks that signals an iteration
//! boundary (the job went back to computing). The tracker updates
//! `bytes_sent` on every ack, resets at iteration boundaries, and exposes
//! `bytes_ratio = min(1, bytes_sent / total_bytes)` — the argument of the
//! bandwidth aggressiveness function.
//!
//! The paper's deployment "automatically learns these values by measuring
//! the total amount of data and computation time during the first few
//! iterations"; [`AutoTuner`] reproduces that: it watches the ack stream,
//! segments it into bursts separated by multi-RTT silences, and locks in
//! the measured per-iteration byte count and gap threshold.

use serde::{Deserialize, Serialize};

/// Timestamps are nanoseconds since simulation (or connection) start.
pub type Nanos = u64;

/// Configuration of an [`IterationTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// `TOTAL_BYTES`: bytes transferred per training iteration.
    pub total_bytes: u64,
    /// `COMP_TIME`: ack-gap threshold (ns) marking an iteration boundary.
    /// The paper sets this to "several round-trip times" below the job's
    /// compute-phase duration.
    pub comp_time_threshold: Nanos,
    /// Minimum bytes that must have been delivered before a long ack gap
    /// is accepted as an iteration boundary. `0` reproduces Algorithm 1
    /// exactly (any long gap resets). A value near `total_bytes` extends
    /// the algorithm to *multi-burst* iterations: real allreduce traffic
    /// (the paper's Fig. 1(a) GPT-3 pattern) pauses mid-iteration, and
    /// when those pauses rival the compute gap, pure gap detection would
    /// wrongly reset `bytes_ratio` between sub-bursts. Requires oracle
    /// knowledge of `total_bytes`, which the deployment's first-iterations
    /// measurement provides.
    pub min_bytes_for_reset: u64,
}

impl TrackerConfig {
    /// Oracle configuration: both values known a priori (e.g. from a job
    /// profile), as in the paper's testbed experiments.
    pub fn oracle(total_bytes: u64, comp_time_threshold: Nanos) -> Self {
        Self {
            total_bytes,
            comp_time_threshold,
            min_bytes_for_reset: 0,
        }
    }

    /// Oracle configuration for multi-burst iterations: a long gap only
    /// resets once at least `frac` of `total_bytes` was delivered.
    pub fn oracle_multiburst(total_bytes: u64, comp_time_threshold: Nanos, frac: f64) -> Self {
        Self {
            total_bytes,
            comp_time_threshold,
            min_bytes_for_reset: (total_bytes as f64 * frac.clamp(0.0, 1.0)) as u64,
        }
    }
}

/// Algorithm 1 state: tracks bytes delivered in the current iteration and
/// detects iteration boundaries from gaps in the ack stream.
///
/// Call [`IterationTracker::on_ack`] from the congestion-avoidance hook for
/// every cumulative ack; it returns the up-to-date `bytes_ratio` to feed the
/// aggressiveness function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationTracker {
    config: TrackerConfig,
    bytes_sent: u64,
    bytes_ratio: f64,
    prev_ack_tstamp: Option<Nanos>,
    iterations_seen: u64,
}

impl IterationTracker {
    /// Creates a tracker in the initial (pre-first-ack) state.
    pub fn new(config: TrackerConfig) -> Self {
        Self {
            config,
            bytes_sent: 0,
            bytes_ratio: 0.0,
            prev_ack_tstamp: None,
            iterations_seen: 0,
        }
    }

    /// Processes one cumulative ack delivered at time `now` acknowledging
    /// `acked_bytes` new bytes, per Algorithm 1 lines 7–17, and returns the
    /// current `bytes_ratio ∈ [0, 1]`.
    ///
    /// A gap larger than `COMP_TIME` since the previous ack resets the
    /// per-iteration counters (lines 10–13): the flow is starting a new
    /// training iteration. Note the reset happens *before* the current
    /// ack's bytes are counted toward the new iteration.
    pub fn on_ack(&mut self, now: Nanos, acked_bytes: u64) -> f64 {
        self.on_ack_hinted(now, acked_bytes, false)
    }

    /// [`IterationTracker::on_ack`] with a loss-recovery hint.
    ///
    /// When `loss_recovery_gap` is true, the silence preceding this ack
    /// was a retransmission blackout (the transport fired ≥ 1 RTO while
    /// data was outstanding), not a compute phase — the iteration cannot
    /// have ended, because un-acked bytes of it are still in the pipe. A
    /// blackout longer than `COMP_TIME` would otherwise be misread as an
    /// iteration boundary and spuriously reset `bytes_ratio` to 0,
    /// throttling the flow (via `F(0)`) exactly when it is trying to
    /// recover. Bytes still accumulate and the gap clock still advances.
    pub fn on_ack_hinted(&mut self, now: Nanos, acked_bytes: u64, loss_recovery_gap: bool) -> f64 {
        let boundary = match self.prev_ack_tstamp {
            Some(prev) => {
                !loss_recovery_gap
                    && now.saturating_sub(prev) > self.config.comp_time_threshold
                    && self.bytes_sent >= self.config.min_bytes_for_reset
            }
            None => false,
        };
        if boundary {
            // Start of a new training iteration: state reset.
            self.bytes_sent = 0;
            self.bytes_ratio = 0.0;
            self.iterations_seen += 1;
        }
        self.bytes_sent = self.bytes_sent.saturating_add(acked_bytes);
        if self.config.total_bytes > 0 {
            self.bytes_ratio = (self.bytes_sent as f64 / self.config.total_bytes as f64).min(1.0);
        } else {
            self.bytes_ratio = 0.0;
        }
        self.prev_ack_tstamp = Some(now);
        self.bytes_ratio
    }

    /// The current `bytes_ratio` without consuming an ack.
    pub fn bytes_ratio(&self) -> f64 {
        self.bytes_ratio
    }

    /// Bytes acknowledged so far in the current iteration.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Number of iteration boundaries detected so far.
    pub fn iterations_seen(&self) -> u64 {
        self.iterations_seen
    }

    /// The active configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Replaces the configuration (used when an [`AutoTuner`] locks in
    /// learned values mid-connection). Counters are preserved.
    pub fn reconfigure(&mut self, config: TrackerConfig) {
        self.config = config;
        if self.config.total_bytes > 0 {
            self.bytes_ratio = (self.bytes_sent as f64 / self.config.total_bytes as f64).min(1.0);
        }
    }
}

/// Online learner for `TOTAL_BYTES` and `COMP_TIME`.
///
/// Mirrors the paper's deployment: during the first `warmup_iterations`
/// bursts it records per-burst byte totals and the silences between bursts,
/// then yields a [`TrackerConfig`] with
///
/// * `total_bytes` = the median of observed burst sizes (robust to a
///   truncated first burst), and
/// * `comp_time_threshold` = half the median inter-burst silence, which is
///   comfortably above "several RTTs" and below the compute time.
///
/// Bursts are segmented by silences longer than `min_gap` (a few RTTs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoTuner {
    min_gap: Nanos,
    warmup_iterations: usize,
    current_burst_bytes: u64,
    prev_ack_tstamp: Option<Nanos>,
    burst_sizes: Vec<u64>,
    gaps: Vec<Nanos>,
    locked: Option<TrackerConfig>,
}

impl AutoTuner {
    /// Creates an auto-tuner; `min_gap` should be several RTTs (the minimum
    /// silence treated as a compute phase) and `warmup_iterations` the
    /// number of complete bursts to observe before locking in.
    pub fn new(min_gap: Nanos, warmup_iterations: usize) -> Self {
        Self {
            min_gap: min_gap.max(1),
            warmup_iterations: warmup_iterations.max(1),
            current_burst_bytes: 0,
            prev_ack_tstamp: None,
            burst_sizes: Vec::new(),
            gaps: Vec::new(),
            locked: None,
        }
    }

    /// Feeds one ack observation. Returns `Some(config)` exactly once, at
    /// the moment enough complete bursts have been observed.
    pub fn on_ack(&mut self, now: Nanos, acked_bytes: u64) -> Option<TrackerConfig> {
        self.on_ack_hinted(now, acked_bytes, false)
    }

    /// [`AutoTuner::on_ack`] with a loss-recovery hint: a silence caused
    /// by a retransmission blackout is neither a burst boundary nor a
    /// compute-phase sample, so it must not contaminate the learned
    /// `total_bytes` / `comp_time_threshold` (the burst keeps
    /// accumulating across the outage).
    pub fn on_ack_hinted(
        &mut self,
        now: Nanos,
        acked_bytes: u64,
        loss_recovery_gap: bool,
    ) -> Option<TrackerConfig> {
        if self.locked.is_some() {
            self.prev_ack_tstamp = Some(now);
            return None;
        }
        if let Some(prev) = self.prev_ack_tstamp {
            let gap = now.saturating_sub(prev);
            if gap > self.min_gap && !loss_recovery_gap {
                // Burst ended at `prev`; record it and the silence.
                if self.current_burst_bytes > 0 {
                    self.burst_sizes.push(self.current_burst_bytes);
                    self.gaps.push(gap);
                }
                self.current_burst_bytes = 0;
            }
        }
        self.current_burst_bytes = self.current_burst_bytes.saturating_add(acked_bytes);
        self.prev_ack_tstamp = Some(now);

        if self.burst_sizes.len() >= self.warmup_iterations {
            let cfg = TrackerConfig {
                total_bytes: median_u64(&self.burst_sizes),
                comp_time_threshold: (median_u64(&self.gaps) / 2).max(self.min_gap),
                min_bytes_for_reset: 0,
            };
            self.locked = Some(cfg);
            return Some(cfg);
        }
        None
    }

    /// The learned configuration, if warmup has completed.
    pub fn learned(&self) -> Option<TrackerConfig> {
        self.locked
    }

    /// Number of complete bursts observed so far.
    pub fn bursts_observed(&self) -> usize {
        self.burst_sizes.len()
    }
}

fn median_u64(xs: &[u64]) -> u64 {
    debug_assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Nanos = 1_000_000;

    #[test]
    fn ratio_accumulates_within_an_iteration() {
        let mut t = IterationTracker::new(TrackerConfig::oracle(10_000, 50 * MS));
        assert_eq!(t.on_ack(0, 2_500), 0.25);
        assert_eq!(t.on_ack(MS, 2_500), 0.5);
        assert_eq!(t.on_ack(2 * MS, 5_000), 1.0);
        assert_eq!(t.iterations_seen(), 0);
    }

    #[test]
    fn ratio_is_capped_at_one() {
        let mut t = IterationTracker::new(TrackerConfig::oracle(1_000, 50 * MS));
        assert_eq!(t.on_ack(0, 5_000), 1.0);
    }

    #[test]
    fn gap_beyond_comp_time_resets_state() {
        let mut t = IterationTracker::new(TrackerConfig::oracle(10_000, 50 * MS));
        t.on_ack(0, 10_000);
        assert_eq!(t.bytes_ratio(), 1.0);
        // 60 ms silence > 50 ms threshold: new iteration; the triggering
        // ack's bytes count toward the NEW iteration.
        let r = t.on_ack(60 * MS, 1_000);
        assert_eq!(r, 0.1);
        assert_eq!(t.iterations_seen(), 1);
    }

    #[test]
    fn gap_equal_to_threshold_does_not_reset() {
        // Algorithm 1 line 10 uses strict `>`.
        let mut t = IterationTracker::new(TrackerConfig::oracle(10_000, 50 * MS));
        t.on_ack(0, 5_000);
        let r = t.on_ack(50 * MS, 1_000);
        assert_eq!(r, 0.6);
        assert_eq!(t.iterations_seen(), 0);
    }

    #[test]
    fn first_ack_never_counts_as_boundary() {
        let mut t = IterationTracker::new(TrackerConfig::oracle(10_000, 50 * MS));
        let r = t.on_ack(1_000_000 * MS, 1_000);
        assert_eq!(r, 0.1);
        assert_eq!(t.iterations_seen(), 0);
    }

    #[test]
    fn zero_total_bytes_is_inert() {
        let mut t = IterationTracker::new(TrackerConfig::oracle(0, 50 * MS));
        assert_eq!(t.on_ack(0, 1_000), 0.0);
    }

    #[test]
    fn reconfigure_rescales_ratio() {
        let mut t = IterationTracker::new(TrackerConfig::oracle(10_000, 50 * MS));
        t.on_ack(0, 5_000);
        assert_eq!(t.bytes_ratio(), 0.5);
        t.reconfigure(TrackerConfig::oracle(20_000, 50 * MS));
        assert_eq!(t.bytes_ratio(), 0.25);
    }

    #[test]
    fn multiburst_gate_suppresses_mid_iteration_resets() {
        // 2-burst iteration: gaps between sub-bursts must NOT reset until
        // the iteration's bytes are through.
        let mut t = IterationTracker::new(TrackerConfig::oracle_multiburst(10_000, 50 * MS, 0.9));
        t.on_ack(0, 5_000); // burst 1
        assert_eq!(t.bytes_ratio(), 0.5);
        // 100 ms silence, but only half the bytes sent: no reset.
        let r = t.on_ack(100 * MS, 1_000);
        assert_eq!(r, 0.6);
        assert_eq!(t.iterations_seen(), 0);
        t.on_ack(101 * MS, 4_000); // burst 2 completes the iteration
        assert_eq!(t.bytes_ratio(), 1.0);
        // Now a long silence does reset.
        let r = t.on_ack(300 * MS, 1_000);
        assert_eq!(r, 0.1);
        assert_eq!(t.iterations_seen(), 1);
    }

    /// Regression: a retransmission-storm ack gap (an RTO blackout longer
    /// than `COMP_TIME`) must not reset `bytes_sent` mid-iteration when
    /// the transport flags it as loss recovery.
    #[test]
    fn loss_recovery_gap_does_not_reset_mid_iteration() {
        let cfg = TrackerConfig::oracle(10_000, 50 * MS);
        let mut hinted = IterationTracker::new(cfg);
        hinted.on_ack(0, 4_000);
        assert_eq!(hinted.bytes_ratio(), 0.4);
        // A 400 ms blackout (8× the threshold), then the first good ack
        // after recovery arrives flagged: the iteration continues.
        let r = hinted.on_ack_hinted(400 * MS, 2_000, true);
        assert_eq!(r, 0.6);
        assert_eq!(hinted.bytes_sent(), 6_000);
        assert_eq!(hinted.iterations_seen(), 0);
        // The same gap WITHOUT the hint is (mis)read as a boundary —
        // exactly the spurious reset the hint guards against.
        let mut unhinted = IterationTracker::new(cfg);
        unhinted.on_ack(0, 4_000);
        let r = unhinted.on_ack(400 * MS, 2_000);
        assert_eq!(r, 0.2);
        assert_eq!(unhinted.iterations_seen(), 1);
        // A genuine compute gap after recovery still resets the hinted
        // tracker normally.
        hinted.on_ack(401 * MS, 4_000);
        assert_eq!(hinted.bytes_ratio(), 1.0);
        let r = hinted.on_ack(600 * MS, 1_000);
        assert_eq!(r, 0.1);
        assert_eq!(hinted.iterations_seen(), 1);
    }

    /// The auto-tuner must not record a blackout silence as a compute
    /// gap, nor split the interrupted burst in two.
    #[test]
    fn autotuner_ignores_loss_recovery_gaps() {
        let run = |blackout: bool| {
            let mut at = AutoTuner::new(2 * MS, 3);
            let mut learned = None;
            let mut now = 0;
            for burst in 0..4 {
                for i in 0..10 {
                    if burst == 1 && i == 5 && blackout {
                        // 30 ms RTO silence mid-burst; the next ack is
                        // flagged as loss recovery.
                        now += 30 * MS;
                        if let Some(cfg) = at.on_ack_hinted(now, 1500, true) {
                            learned = Some(cfg);
                        }
                    } else if let Some(cfg) = at.on_ack(now, 1500) {
                        learned = Some(cfg);
                    }
                    now += 100_000;
                }
                now += 100 * MS;
            }
            learned.expect("locks after 3 complete bursts")
        };
        let clean = run(false);
        let faulted = run(true);
        // Same burst size learned; the blackout neither halves a burst
        // nor injects a 30 ms "compute gap" sample.
        assert_eq!(faulted.total_bytes, clean.total_bytes);
        assert!(faulted.comp_time_threshold > 40 * MS);
    }

    #[test]
    fn zero_gate_matches_algorithm_1() {
        let mut a = IterationTracker::new(TrackerConfig::oracle(10_000, 50 * MS));
        let mut b = IterationTracker::new(TrackerConfig {
            min_bytes_for_reset: 0,
            ..TrackerConfig::oracle(10_000, 50 * MS)
        });
        let acks = [
            (0u64, 2000u64),
            (60 * MS, 3000),
            (61 * MS, 1000),
            (200 * MS, 500),
        ];
        for (ts, by) in acks {
            assert_eq!(a.on_ack(ts, by), b.on_ack(ts, by));
        }
    }

    #[test]
    fn autotuner_learns_burst_size_and_gap() {
        let mut at = AutoTuner::new(2 * MS, 3);
        let mut learned = None;
        let mut now = 0;
        // Four bursts of 10 acks × 1500 B spaced 0.1 ms, separated by 100 ms.
        for _burst in 0..4 {
            for _ in 0..10 {
                if let Some(cfg) = at.on_ack(now, 1500) {
                    learned = Some(cfg);
                }
                now += 100_000;
            }
            now += 100 * MS;
        }
        let cfg = learned.expect("should lock after 3 complete bursts");
        assert_eq!(cfg.total_bytes, 15_000);
        // Gap observed ≈ 100 ms + 0.1 ms; threshold = half of that.
        assert!(cfg.comp_time_threshold > 40 * MS && cfg.comp_time_threshold < 60 * MS);
    }

    #[test]
    fn autotuner_locks_exactly_once() {
        let mut at = AutoTuner::new(MS, 1);
        let mut locks = 0;
        let mut now = 0;
        for _ in 0..3 {
            for _ in 0..5 {
                if at.on_ack(now, 1000).is_some() {
                    locks += 1;
                }
                now += 1000;
            }
            now += 10 * MS;
        }
        assert_eq!(locks, 1);
        assert!(at.learned().is_some());
    }

    #[test]
    fn autotuner_median_is_robust_to_short_first_burst() {
        let mut at = AutoTuner::new(MS, 3);
        let mut now = 0;
        let mut learned = None;
        let bursts = [2u64, 10, 10, 10]; // first burst truncated
        for n in bursts {
            for _ in 0..n {
                if let Some(cfg) = at.on_ack(now, 1500) {
                    learned = Some(cfg);
                }
                now += 1000;
            }
            now += 10 * MS;
        }
        assert_eq!(learned.unwrap().total_bytes, 15_000);
    }
}
