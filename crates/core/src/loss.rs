//! The convergence loss function of §4 (Eq. 4):
//! `Loss(Δ) = −∫₀^Δ Shift(λ) dλ`.
//!
//! Because the shift is what MLTCP adds to the configuration each
//! iteration, moving along `+Shift` is exactly moving along `−∇Loss`:
//! MLTCP performs gradient descent on this loss, whose minima are the
//! fully-interleaved configurations (Fig. 5c).
//!
//! For the linear aggressiveness function the integral has a closed form.
//! With `b = a·T` and `k = b·Intercept/Slope`,
//!
//! ```text
//! Shift(Δ) = Δ(b − Δ)/(k + Δ)
//! ∫₀^x Shift = −x²/2 + (b + k)·x − k(b + k)·ln(1 + x/k)
//! Loss(x)   =  x²/2 − (b + k)·x + k(b + k)·ln(1 + x/k)
//! ```
//!
//! This module provides the closed form, a generic quadrature fallback used
//! to cross-check it (and to handle non-linear aggressiveness functions),
//! and the periodic extension whose landscape Fig. 5(c) plots.

use crate::shift::ShiftFunction;

/// Closed-form loss for the linear aggressiveness function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossFunction {
    shift: ShiftFunction,
}

impl LossFunction {
    /// Wraps a [`ShiftFunction`] (Eq. 3) into its integrated loss (Eq. 4).
    pub fn new(shift: ShiftFunction) -> Self {
        Self { shift }
    }

    /// The underlying shift function.
    pub fn shift(&self) -> &ShiftFunction {
        &self.shift
    }

    /// `Loss(Δ)` on the native domain. Outside `[0, a·T]` the shift is zero,
    /// so the loss continues flat at its boundary value.
    pub fn eval(&self, delta: f64) -> f64 {
        let b = self.shift.comm_duration();
        let s = self.shift.params.slope;
        let i = self.shift.params.intercept;
        let x = delta.clamp(0.0, b);
        if s == 0.0 {
            // Zero slope ⇒ zero shift ⇒ flat loss.
            return 0.0;
        }
        let k = b * i / s;
        0.5 * x * x - (b + k) * x + k * (b + k) * (1.0 + x / k).ln()
    }

    /// The periodic loss landscape on `[0, T)` that Fig. 5(c) sketches:
    /// integrating `−Shift` with the periodic (anti-symmetric) extension.
    ///
    /// Maximum at `Δ = 0` (full overlap), descending to a flat minimum
    /// plateau `[a·T, T − a·T]` (full interleaving), then rising again
    /// symmetrically toward `Δ = T`.
    pub fn eval_periodic(&self, delta: f64) -> f64 {
        let t = self.shift.period;
        let mut d = delta % t;
        if d < 0.0 {
            d += t;
        }
        let at = self.shift.comm_duration();
        if d <= at {
            self.eval(d)
        } else if d >= t - at {
            // ∫ of −(−Shift(T − λ)) mirrors the left branch.
            self.eval(t - d)
        } else {
            self.eval(at)
        }
    }

    /// The depth of the loss basin: `Loss(0) − Loss(a·T) = −Loss(a·T)`
    /// (since `Loss(0) = 0`), i.e. how much "potential" full overlap has
    /// relative to full interleaving. Always ≥ 0.
    pub fn basin_depth(&self) -> f64 {
        -self.eval(self.shift.comm_duration())
    }
}

/// Numerically integrates `−shift_fn` from `0` to `delta` with Simpson's
/// rule (`steps` subintervals, rounded up to even). Cross-checks the closed
/// form and supports arbitrary (e.g. non-linear-F) shift functions.
pub fn loss_by_quadrature<F: Fn(f64) -> f64>(shift_fn: F, delta: f64, steps: usize) -> f64 {
    if delta == 0.0 {
        return 0.0;
    }
    let n = (steps.max(2) + 1) & !1; // even
    let h = delta / n as f64;
    let mut acc = shift_fn(0.0) + shift_fn(delta);
    for j in 1..n {
        let w = if j % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * shift_fn(j as f64 * h);
    }
    -(acc * h / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MltcpParams;

    fn paper_loss() -> LossFunction {
        LossFunction::new(ShiftFunction::new(MltcpParams::PAPER, 1.8, 0.5).unwrap())
    }

    #[test]
    fn loss_at_zero_is_zero() {
        assert_eq!(paper_loss().eval(0.0), 0.0);
    }

    #[test]
    fn closed_form_matches_quadrature() {
        let l = paper_loss();
        let at = l.shift().comm_duration();
        for i in 1..=20 {
            let d = at * i as f64 / 20.0;
            let numeric = loss_by_quadrature(|x| l.shift().eval(x), d, 2000);
            assert!(
                (l.eval(d) - numeric).abs() < 1e-8,
                "at Δ={d}: closed={} numeric={numeric}",
                l.eval(d)
            );
        }
    }

    #[test]
    fn loss_is_strictly_decreasing_on_overlap_region() {
        let l = paper_loss();
        let at = l.shift().comm_duration();
        let mut prev = l.eval(0.0);
        for i in 1..=100 {
            let v = l.eval(at * i as f64 / 100.0);
            assert!(v < prev, "loss must decrease while overlap persists");
            prev = v;
        }
    }

    #[test]
    fn periodic_landscape_has_flat_minimum_plateau() {
        let shift = ShiftFunction::new(MltcpParams::PAPER, 1.8, 1.0 / 6.0).unwrap();
        let l = LossFunction::new(shift);
        let at = l.shift().comm_duration();
        let t = l.shift().period;
        let floor = l.eval(at);
        // Plateau between aT and T-aT.
        for i in 0..=20 {
            let d = at + (t - 2.0 * at) * i as f64 / 20.0;
            assert!((l.eval_periodic(d) - floor).abs() < 1e-12);
        }
        // Global maximum at the overlap points 0 and T.
        assert!(l.eval_periodic(0.0) > floor);
        assert!((l.eval_periodic(0.0) - l.eval_periodic(t - 1e-9)).abs() < 1e-6);
    }

    #[test]
    fn half_comm_fraction_minimum_is_at_half_period() {
        // Fig. 5(c): with a = 1/2 the plateau collapses to the single point
        // Δ = T/2, the fully interleaved configuration.
        let l = paper_loss();
        let t = l.shift().period;
        let min_at = t / 2.0;
        let vmin = l.eval_periodic(min_at);
        for i in 1..100 {
            let d = t * i as f64 / 100.0;
            assert!(l.eval_periodic(d) >= vmin - 1e-12);
        }
    }

    #[test]
    fn basin_depth_positive() {
        assert!(paper_loss().basin_depth() > 0.0);
    }

    #[test]
    fn gradient_of_loss_is_negative_shift() {
        // Finite-difference check: dLoss/dΔ = −Shift(Δ).
        let l = paper_loss();
        let at = l.shift().comm_duration();
        let h = 1e-6;
        for i in 1..20 {
            let d = at * i as f64 / 20.0;
            let fd = (l.eval(d + h) - l.eval(d - h)) / (2.0 * h);
            assert!(
                (fd + l.shift().eval(d)).abs() < 1e-5,
                "at {d}: d/dΔ={fd}, -shift={}",
                -l.shift().eval(d)
            );
        }
    }

    #[test]
    fn quadrature_handles_zero_delta() {
        assert_eq!(loss_by_quadrature(|x| x, 0.0, 100), 0.0);
    }
}
