//! # mltcp-core
//!
//! The algorithmic heart of **MLTCP** (Rajasekaran et al., HotNets '24):
//! a distributed technique that augments congestion control so the flows of
//! periodic DNN training jobs converge to an *interleaved* schedule —
//! approximating a centralized (Cassini-style) flow schedule with no
//! controller, no priority queues, and no switch support.
//!
//! This crate is intentionally free of any simulator or transport
//! dependency: it contains only the pure algorithm and its theory, so it can
//! be dropped into a real stack, a simulator (see `mltcp-transport` /
//! `mltcp-netsim`), or analyzed standalone.
//!
//! ## Contents
//!
//! * [`aggressiveness`] — the bandwidth aggressiveness function
//!   `F(bytes_ratio)` (paper Eq. 2) and the six candidate functions of
//!   Fig. 3, plus validity checks for the paper's three requirements.
//! * [`tracker`] — per-flow iteration state of Algorithm 1:
//!   `bytes_sent`, ack-gap iteration-boundary detection, `bytes_ratio`,
//!   and online learning of `TOTAL_BYTES` / `COMP_TIME`.
//! * [`shift`] — the closed-form `Shift(Δ)` of Eq. 3 describing how MLTCP
//!   moves the start-time difference of two competing jobs each iteration.
//! * [`loss`] — the convergence loss `Loss(Δ) = -∫ Shift dΔ` of Eq. 4,
//!   in closed form and by numeric quadrature.
//! * [`gradient`] — the iteration map `Δ_{i+1} = Δ_i + Shift(Δ_i)` and its
//!   interpretation as gradient descent; convergence detection.
//! * [`noise`] — the zero-mean Gaussian perturbation model of §4 and the
//!   predicted steady-state error `2σ(1 + Intercept/Slope)`.
//! * [`schedule`] — interleaving metrics over sets of periodic jobs:
//!   demand profiles, contention, the compatibility condition under which
//!   a fully interleaved schedule exists.
//!
//! ## Quick taste
//!
//! ```
//! use mltcp_core::aggressiveness::{Aggressiveness, Linear};
//! use mltcp_core::tracker::{IterationTracker, TrackerConfig};
//!
//! // The paper's default F: 1.75 * bytes_ratio + 0.25.
//! let f = Linear::paper_default();
//! assert!((f.eval(0.0) - 0.25).abs() < 1e-12);
//! assert!((f.eval(1.0) - 2.0).abs() < 1e-12);
//!
//! // Algorithm 1 bookkeeping: 1 MB per iteration, 100 ms compute gap.
//! let mut t = IterationTracker::new(TrackerConfig::oracle(1_000_000, 100_000_000));
//! let r = t.on_ack(1_000_000, 1500); // ts = 1 ms (ns), one MTU acked
//! assert!(r > 0.0 && r < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggressiveness;
pub mod gradient;
pub mod loss;
pub mod noise;
pub mod params;
pub mod schedule;
pub mod shift;
pub mod tracker;

pub use aggressiveness::{Aggressiveness, Linear};
pub use params::MltcpParams;
pub use tracker::{IterationTracker, TrackerConfig};
