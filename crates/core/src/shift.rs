//! The `Shift(Δ)` function of §4 (Eq. 3).
//!
//! When two periodic jobs' communication phases overlap, MLTCP's unequal
//! bandwidth split lets the job that started earlier finish its iteration
//! sooner, increasing the start-time difference of the *next* iteration:
//! `Δ_{i+1} = Δ_i + Shift(Δ_i)`. Eq. 3 gives the per-iteration shift for
//! the linear aggressiveness function:
//!
//! ```text
//!             Slope · Δ · (a·T − Δ)
//! Shift(Δ) = ────────────────────────────
//!             a·T·Intercept + Δ·Slope
//! ```
//!
//! valid for `Δ ∈ [0, a·T]` (partial overlap). Once `Δ ≥ a·T` the phases
//! no longer overlap and the shift is zero. Because job order is circular
//! with period `T`, a difference close to `T` is an overlap "from the other
//! side": the symmetric extension is `Shift(Δ) = −Shift(T − Δ)` on
//! `[T − a·T, T]`. [`ShiftFunction::eval_periodic`] implements that full
//! picture, which is what the gradient-descent analysis and Fig. 5(c)'s
//! loss landscape use.

use crate::params::MltcpParams;
use serde::{Deserialize, Serialize};

/// The two-job shift function of Eq. 3, parameterized by the aggressiveness
/// parameters and the jobs' common period `T` and communication fraction
/// `a` (comm phase lasts `a·T` seconds; `0 < a ≤ 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftFunction {
    /// Aggressiveness slope/intercept (Eq. 2).
    pub params: MltcpParams,
    /// Ideal (isolated) iteration time `T` in seconds.
    pub period: f64,
    /// Communication fraction `a`: the comm phase lasts `a·T`.
    pub comm_fraction: f64,
}

impl ShiftFunction {
    /// Builds the shift function; returns `None` for invalid geometry
    /// (`period <= 0`, `comm_fraction ∉ (0, 1]`).
    pub fn new(params: MltcpParams, period: f64, comm_fraction: f64) -> Option<Self> {
        if period.is_finite()
            && period > 0.0
            && comm_fraction.is_finite()
            && comm_fraction > 0.0
            && comm_fraction <= 1.0
        {
            Some(Self {
                params,
                period,
                comm_fraction,
            })
        } else {
            None
        }
    }

    /// The communication-phase duration `a·T`.
    pub fn comm_duration(&self) -> f64 {
        self.comm_fraction * self.period
    }

    /// Eq. 3 on its native domain `[0, a·T]`, clamped to zero outside.
    ///
    /// `Shift(0) = Shift(a·T) = 0`; strictly positive in between (MLTCP
    /// always pushes partially-overlapping jobs further apart).
    pub fn eval(&self, delta: f64) -> f64 {
        let at = self.comm_duration();
        if !(0.0..=at).contains(&delta) {
            return 0.0;
        }
        let s = self.params.slope;
        let i = self.params.intercept;
        let denom = at * i + delta * s;
        if denom <= 0.0 {
            return 0.0;
        }
        s * delta * (at - delta) / denom
    }

    /// The periodic extension on `[0, T)`: positive drift away from overlap
    /// for small `Δ`, zero in the fully-interleaved region
    /// `[a·T, T − a·T]`, and negative (wrapping) drift for `Δ` close to `T`.
    ///
    /// Inputs outside `[0, T)` are wrapped modulo `T` first.
    pub fn eval_periodic(&self, delta: f64) -> f64 {
        let t = self.period;
        let mut d = delta % t;
        if d < 0.0 {
            d += t;
        }
        let at = self.comm_duration();
        if d <= at {
            self.eval(d)
        } else if d >= t - at {
            -self.eval(t - d)
        } else {
            0.0
        }
    }

    /// The value of `Δ` that maximizes the shift on `[0, a·T]`
    /// (useful for bounding per-iteration movement).
    ///
    /// Setting `d/dΔ [Δ(b−Δ)/(k+Δ)] = 0` with `b = a·T`, `k = b·I/S` gives
    /// `Δ* = −k + √(k² + k·b)`.
    pub fn argmax(&self) -> f64 {
        let b = self.comm_duration();
        let s = self.params.slope;
        if s == 0.0 {
            return 0.0;
        }
        let k = b * self.params.intercept / s;
        -k + (k * k + k * b).sqrt()
    }

    /// The maximum per-iteration shift.
    pub fn max_shift(&self) -> f64 {
        self.eval(self.argmax())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_shift() -> ShiftFunction {
        // Two GPT-2-like jobs: T = 1.8 s, a = 0.5 (Fig. 5 uses a = 1/2).
        ShiftFunction::new(MltcpParams::PAPER, 1.8, 0.5).unwrap()
    }

    #[test]
    fn boundary_conditions() {
        let f = paper_shift();
        let at = f.comm_duration();
        assert_eq!(f.eval(0.0), 0.0);
        assert!(f.eval(at).abs() < 1e-12);
        assert_eq!(f.eval(-0.1), 0.0);
        assert_eq!(f.eval(at + 0.1), 0.0);
    }

    #[test]
    fn strictly_positive_inside_overlap() {
        let f = paper_shift();
        let at = f.comm_duration();
        for i in 1..100 {
            let d = at * i as f64 / 100.0;
            assert!(f.eval(d) > 0.0, "shift({d}) should be > 0");
        }
    }

    #[test]
    fn matches_eq3_by_hand() {
        let f = paper_shift();
        // By hand at Δ = 0.3, aT = 0.9:
        // 1.75*0.3*(0.9-0.3) / (0.9*0.25 + 0.3*1.75) = 0.315 / 0.75 = 0.42
        assert!((f.eval(0.3) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn periodic_extension_is_antisymmetric_about_half_period() {
        let f = paper_shift();
        let t = f.period;
        for i in 1..50 {
            let d = t * i as f64 / 50.0;
            let a = f.eval_periodic(d);
            let b = f.eval_periodic(t - d);
            assert!((a + b).abs() < 1e-9, "antisymmetry at {d}: {a} vs {b}");
        }
    }

    #[test]
    fn periodic_extension_has_dead_zone_when_a_below_half() {
        let f = ShiftFunction::new(MltcpParams::PAPER, 1.8, 1.0 / 6.0).unwrap();
        // For a = 1/6, fully interleaved region is [0.3, 1.5].
        assert_eq!(f.eval_periodic(0.5), 0.0);
        assert_eq!(f.eval_periodic(1.0), 0.0);
        assert!(f.eval_periodic(0.1) > 0.0);
        assert!(f.eval_periodic(1.75) < 0.0);
    }

    #[test]
    fn wrapping_inputs() {
        let f = paper_shift();
        assert!((f.eval_periodic(0.3 + f.period) - f.eval_periodic(0.3)).abs() < 1e-12);
        assert!((f.eval_periodic(-0.3) - f.eval_periodic(f.period - 0.3)).abs() < 1e-12);
    }

    #[test]
    fn argmax_is_interior_max() {
        let f = paper_shift();
        let x = f.argmax();
        let at = f.comm_duration();
        assert!(x > 0.0 && x < at);
        let y = f.eval(x);
        for i in 0..=200 {
            let d = at * i as f64 / 200.0;
            assert!(f.eval(d) <= y + 1e-12);
        }
    }

    #[test]
    fn zero_slope_means_zero_shift() {
        let p = MltcpParams::new(0.0, 1.0).unwrap();
        let f = ShiftFunction::new(p, 1.0, 0.5).unwrap();
        for i in 0..=10 {
            assert_eq!(f.eval(0.05 * i as f64), 0.0);
        }
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(ShiftFunction::new(MltcpParams::PAPER, 0.0, 0.5).is_none());
        assert!(ShiftFunction::new(MltcpParams::PAPER, 1.0, 0.0).is_none());
        assert!(ShiftFunction::new(MltcpParams::PAPER, 1.0, 1.5).is_none());
        assert!(ShiftFunction::new(MltcpParams::PAPER, f64::NAN, 0.5).is_none());
    }
}
