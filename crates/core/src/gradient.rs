//! The iteration map `Δ_{i+1} = Δ_i + Shift(Δ_i)` and its gradient-descent
//! interpretation (§4).
//!
//! Each training iteration, MLTCP's unequal bandwidth split adds
//! `Shift(Δ_i)` to the start-time difference between two competing jobs.
//! Since `Shift = −dLoss/dΔ`, the trajectory is gradient descent on the
//! loss of Eq. 4 with unit step size — it monotonically approaches the
//! fully-interleaved region and stops moving once it arrives (the shift is
//! zero there). [`Descent`] iterates the map deterministically;
//! [`Descent::run`] iterates until convergence and reports how many
//! iterations it took (the paper observes ~20 for its testbed mixes).

use crate::shift::ShiftFunction;
use serde::{Deserialize, Serialize};

/// Outcome of running the iteration map to convergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Final start-time difference (wrapped to `[0, T)`).
    pub final_delta: f64,
    /// Number of iterations until the per-iteration movement fell below the
    /// tolerance (or `max_iters` if it never did).
    pub iterations: usize,
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
    /// The full trajectory `Δ_0, Δ_1, …` (including the final point).
    pub trajectory: Vec<f64>,
}

impl ConvergenceReport {
    /// Whether the final state is fully interleaved: the wrapped difference
    /// lies in the zero-shift plateau `[a·T, T − a·T]` (within `tol`).
    pub fn is_interleaved(&self, shift: &ShiftFunction, tol: f64) -> bool {
        let at = shift.comm_duration();
        let t = shift.period;
        self.final_delta >= at - tol && self.final_delta <= t - at + tol
    }
}

/// Deterministic gradient-descent iterator over the two-job configuration
/// space `Δ ∈ [0, T)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Descent {
    shift: ShiftFunction,
}

impl Descent {
    /// Builds the descent for a given shift function.
    pub fn new(shift: ShiftFunction) -> Self {
        Self { shift }
    }

    /// One application of the iteration map, wrapping into `[0, T)`.
    pub fn step(&self, delta: f64) -> f64 {
        let t = self.shift.period;
        let next = delta + self.shift.eval_periodic(delta);
        let mut d = next % t;
        if d < 0.0 {
            d += t;
        }
        d
    }

    /// Runs from `delta0` until the per-iteration movement is below `tol`
    /// or `max_iters` is exhausted.
    pub fn run(&self, delta0: f64, tol: f64, max_iters: usize) -> ConvergenceReport {
        let mut d = {
            let t = self.shift.period;
            let mut x = delta0 % t;
            if x < 0.0 {
                x += t;
            }
            x
        };
        let mut trajectory = vec![d];
        for i in 0..max_iters {
            let next = self.step(d);
            let moved = circular_distance(next, d, self.shift.period);
            trajectory.push(next);
            d = next;
            if moved < tol {
                return ConvergenceReport {
                    final_delta: d,
                    iterations: i + 1,
                    converged: true,
                    trajectory,
                };
            }
        }
        ConvergenceReport {
            final_delta: d,
            iterations: max_iters,
            converged: false,
            trajectory,
        }
    }
}

/// Circular distance between two phases on a ring of circumference
/// `period`: `min(|x − y| mod T, T − |x − y| mod T)`.
pub fn circular_distance(x: f64, y: f64, period: f64) -> f64 {
    let mut d = (x - y).abs() % period;
    if d > period / 2.0 {
        d = period - d;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MltcpParams;

    fn shift_a_half() -> ShiftFunction {
        ShiftFunction::new(MltcpParams::PAPER, 1.8, 0.5).unwrap()
    }

    #[test]
    fn converges_to_interleaved_from_small_offsets() {
        let s = shift_a_half();
        let d = Descent::new(s);
        for start in [0.01, 0.05, 0.2, 0.4, 0.8] {
            let rep = d.run(start, 1e-6, 10_000);
            assert!(rep.converged, "start={start}");
            assert!(
                rep.is_interleaved(&s, 1e-3),
                "start={start} ended at {}",
                rep.final_delta
            );
        }
    }

    #[test]
    fn converges_from_the_wrapping_side() {
        let s = shift_a_half();
        let d = Descent::new(s);
        let rep = d.run(1.7, 1e-6, 10_000); // close to T=1.8 ⇒ negative drift
        assert!(rep.converged);
        assert!(rep.is_interleaved(&s, 1e-3));
        // It should have moved downward toward T/2 = 0.9.
        assert!(rep.final_delta < 1.7);
    }

    #[test]
    fn exact_overlap_is_an_unstable_fixed_point() {
        // Shift(0) = 0: the map does not move from a perfectly synchronized
        // start. (In practice noise breaks the tie; see `noise`.)
        let d = Descent::new(shift_a_half());
        assert_eq!(d.step(0.0), 0.0);
    }

    #[test]
    fn trajectory_is_monotone_until_plateau() {
        let s = shift_a_half();
        let d = Descent::new(s);
        let rep = d.run(0.1, 1e-9, 10_000);
        for w in rep.trajectory.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "trajectory must be non-decreasing");
        }
    }

    #[test]
    fn convergence_takes_tens_of_iterations_not_thousands() {
        // §2: "MLTCP converges to an interleaved state within 20
        // iterations" for the testbed mix; the analytic two-job map with
        // paper parameters is in the same ballpark.
        let s = shift_a_half();
        let d = Descent::new(s);
        let rep = d.run(0.05, 1e-3, 10_000);
        assert!(rep.converged);
        assert!(
            rep.iterations <= 60,
            "took {} iterations — far slower than the paper's observation",
            rep.iterations
        );
    }

    #[test]
    fn dead_zone_is_absorbing_for_small_comm_fraction() {
        let s = ShiftFunction::new(MltcpParams::PAPER, 1.8, 1.0 / 6.0).unwrap();
        let d = Descent::new(s);
        let rep = d.run(0.02, 1e-9, 10_000);
        assert!(rep.converged);
        let at = s.comm_duration();
        assert!(rep.final_delta >= at - 1e-6);
        // Approaching the plateau, residual movement is negligible.
        assert!((d.step(rep.final_delta) - rep.final_delta).abs() < 1e-8);
        // And strictly inside the plateau, nothing moves at all.
        assert_eq!(d.step(at + 0.1), at + 0.1);
    }

    #[test]
    fn circular_distance_basics() {
        assert_eq!(circular_distance(0.0, 0.0, 1.8), 0.0);
        assert!((circular_distance(0.1, 1.7, 1.8) - 0.2).abs() < 1e-12);
        assert!((circular_distance(1.7, 0.1, 1.8) - 0.2).abs() < 1e-12);
        assert!((circular_distance(0.0, 0.9, 1.8) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn report_not_converged_when_budget_too_small() {
        let s = shift_a_half();
        let d = Descent::new(s);
        let rep = d.run(0.05, 1e-12, 2);
        assert!(!rep.converged);
        assert_eq!(rep.iterations, 2);
        assert_eq!(rep.trajectory.len(), 3);
    }
}
