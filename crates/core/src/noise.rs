//! The §4 perturbation model and MLTCP's approximation-error bound.
//!
//! Real clusters perturb iteration times: compute-duration jitter, RTT
//! variation, clock skew. The paper models the aggregate as zero-mean
//! Gaussian noise of standard deviation `σ` added to each job's iteration
//! time, and shows the steady-state deviation of the converged
//! configuration from the exact interleaved optimum is itself Gaussian
//! with standard deviation
//!
//! ```text
//! σ_err = 2σ · (1 + Intercept / Slope)
//! ```
//!
//! — i.e. the approximation error is *linearly* bounded by the system's
//! noise intensity. This module provides the predicted bound and a noisy
//! version of the gradient-descent iteration map for Monte-Carlo
//! validation (`exp_noise_error` in `mltcp-bench` sweeps σ and compares
//! the empirical steady-state spread against this prediction).

use crate::gradient::circular_distance;
use crate::params::MltcpParams;
use crate::shift::ShiftFunction;
use serde::{Deserialize, Serialize};

/// The predicted steady-state error's standard deviation,
/// `2σ(1 + Intercept/Slope)`.
///
/// Returns `f64::INFINITY` when `slope == 0` (no restoring force).
pub fn predicted_error_stddev(params: MltcpParams, noise_stddev: f64) -> f64 {
    2.0 * noise_stddev * (1.0 + params.intercept_slope_ratio())
}

/// Summary statistics of a noisy steady state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyStateStats {
    /// Mean signed deviation from the noise-free fixed point.
    pub mean: f64,
    /// Standard deviation of the deviation.
    pub stddev: f64,
    /// Number of samples aggregated.
    pub samples: usize,
}

/// A noisy version of the two-job iteration map:
/// `Δ_{i+1} = Δ_i + Shift(Δ_i) + ε_i`, with `ε_i` supplied by the caller
/// (keeping this crate free of RNG dependencies; tests and benches feed
/// Gaussian samples from their own seeded generators).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyDescent {
    shift: ShiftFunction,
}

impl NoisyDescent {
    /// Builds the noisy descent around a shift function.
    pub fn new(shift: ShiftFunction) -> Self {
        Self { shift }
    }

    /// One noisy step; `noise` is the iteration-time perturbation
    /// difference between the two jobs for this iteration.
    pub fn step(&self, delta: f64, noise: f64) -> f64 {
        let t = self.shift.period;
        let mut d = (delta + self.shift.eval_periodic(delta) + noise) % t;
        if d < 0.0 {
            d += t;
        }
        d
    }

    /// Runs `warmup + samples` steps from `delta0`, feeding per-step noise
    /// from `noise_source`, and summarizes the post-warmup deviation from
    /// `reference` (the noise-free optimum, e.g. `T/2` for `a = 1/2`).
    pub fn steady_state<N: FnMut() -> f64>(
        &self,
        delta0: f64,
        reference: f64,
        warmup: usize,
        samples: usize,
        mut noise_source: N,
    ) -> SteadyStateStats {
        let mut d = delta0;
        for _ in 0..warmup {
            d = self.step(d, noise_source());
        }
        let t = self.shift.period;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let n = samples.max(1);
        for _ in 0..n {
            d = self.step(d, noise_source());
            // Signed circular deviation from the reference point.
            let mut dev = (d - reference) % t;
            if dev > t / 2.0 {
                dev -= t;
            } else if dev < -t / 2.0 {
                dev += t;
            }
            sum += dev;
            sum_sq += dev * dev;
        }
        let mean = sum / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        SteadyStateStats {
            mean,
            stddev: var.sqrt(),
            samples: n,
        }
    }

    /// The underlying shift function.
    pub fn shift(&self) -> &ShiftFunction {
        &self.shift
    }
}

/// Checks whether an empirical steady-state spread is consistent with the
/// paper's linear bound: `stddev ≤ slack × 2σ(1 + I/S)`.
pub fn within_linear_bound(
    stats: &SteadyStateStats,
    params: MltcpParams,
    noise_stddev: f64,
    slack: f64,
) -> bool {
    stats.stddev <= slack * predicted_error_stddev(params, noise_stddev)
}

/// Convenience: steady-state deviation of a full trajectory from a
/// reference phase (used by simulator-level experiments where the
/// trajectory comes from packet-level dynamics rather than the analytic
/// map).
pub fn deviation_stats(trajectory: &[f64], reference: f64, period: f64) -> SteadyStateStats {
    if trajectory.is_empty() {
        return SteadyStateStats {
            mean: 0.0,
            stddev: 0.0,
            samples: 0,
        };
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &x in trajectory {
        let dev = {
            let raw = circular_distance(x, reference, period);
            // circular_distance is unsigned; recover sign from the shorter arc.
            let mut s = (x - reference) % period;
            if s > period / 2.0 {
                s -= period;
            } else if s < -period / 2.0 {
                s += period;
            }
            debug_assert!((s.abs() - raw).abs() < 1e-9);
            s
        };
        sum += dev;
        sum_sq += dev * dev;
    }
    let n = trajectory.len() as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    SteadyStateStats {
        mean,
        stddev: var.sqrt(),
        samples: trajectory.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift_a_half() -> ShiftFunction {
        ShiftFunction::new(MltcpParams::PAPER, 1.8, 0.5).unwrap()
    }

    /// Minimal seeded uniform source (splitmix64), keeping this crate
    /// free of RNG dependencies even in tests.
    struct TestRng(u64);

    impl TestRng {
        fn unit(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Box–Muller Gaussian from the uniform source above.
    fn gaussian(rng: &mut TestRng, sigma: f64) -> f64 {
        let u1: f64 = rng.unit().max(1e-12);
        let u2: f64 = rng.unit();
        sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn predicted_stddev_formula() {
        let s = predicted_error_stddev(MltcpParams::PAPER, 0.01);
        assert!((s - 2.0 * 0.01 * (1.0 + 0.25 / 1.75)).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_reduces_to_deterministic_descent() {
        let nd = NoisyDescent::new(shift_a_half());
        let stats = nd.steady_state(0.1, 0.9, 500, 100, || 0.0);
        assert!(stats.mean.abs() < 1e-6);
        assert!(stats.stddev < 1e-6);
    }

    #[test]
    fn noise_breaks_the_synchronized_tie() {
        // From exact overlap (unstable fixed point), any noise kicks the
        // system into the basin and it still converges near the optimum.
        let nd = NoisyDescent::new(shift_a_half());
        let mut rng = TestRng(7);
        let stats = nd.steady_state(0.0, 0.9, 2000, 2000, || gaussian(&mut rng, 0.005));
        assert!(
            stats.mean.abs() < 0.1,
            "steady state should hover near T/2; mean dev = {}",
            stats.mean
        );
    }

    #[test]
    fn steady_state_error_is_linearly_bounded() {
        let nd = NoisyDescent::new(shift_a_half());
        for (seed, sigma) in [(1u64, 0.002), (2, 0.005), (3, 0.01)] {
            let mut rng = TestRng(seed);
            let stats = nd.steady_state(0.3, 0.9, 3000, 5000, || gaussian(&mut rng, sigma));
            assert!(
                within_linear_bound(&stats, MltcpParams::PAPER, sigma, 1.5),
                "σ={sigma}: empirical stddev {} exceeds 1.5 × predicted {}",
                stats.stddev,
                predicted_error_stddev(MltcpParams::PAPER, sigma)
            );
        }
    }

    #[test]
    fn error_grows_with_noise() {
        let nd = NoisyDescent::new(shift_a_half());
        let mut spread = vec![];
        for (seed, sigma) in [(11u64, 0.001), (12, 0.004), (13, 0.016)] {
            let mut rng = TestRng(seed);
            let stats = nd.steady_state(0.3, 0.9, 3000, 5000, || gaussian(&mut rng, sigma));
            spread.push(stats.stddev);
        }
        assert!(spread[0] < spread[1] && spread[1] < spread[2]);
    }

    #[test]
    fn deviation_stats_signed_wrap() {
        // Points just below T wrap to small negative deviations from 0.
        let stats = deviation_stats(&[1.75, 0.05], 0.0, 1.8);
        assert!(stats.mean.abs() < 0.01);
        assert_eq!(stats.samples, 2);
    }

    #[test]
    fn deviation_stats_empty() {
        let stats = deviation_stats(&[], 0.9, 1.8);
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.stddev, 0.0);
    }
}
