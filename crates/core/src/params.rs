//! Tunable constants of the MLTCP algorithm.

use serde::{Deserialize, Serialize};

/// Parameters of the linear bandwidth aggressiveness function (paper Eq. 2):
/// `F(bytes_ratio) = slope * bytes_ratio + intercept`.
///
/// The paper tunes these "based on the link rate and the noise in the
/// system" and uses `slope = 1.75`, `intercept = 0.25` throughout, giving F
/// a range of `[0.25, 2.0]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MltcpParams {
    /// Slope of the linear aggressiveness function. Must be non-negative so
    /// that `F' >= 0` (requirement (ii) of §3.1).
    pub slope: f64,
    /// Intercept of the linear aggressiveness function. Must be positive so
    /// every competing flow keeps a non-zero bandwidth share (§5,
    /// non-starvation of legacy flows).
    pub intercept: f64,
}

impl MltcpParams {
    /// The values used in the paper: `slope = 1.75`, `intercept = 0.25`.
    pub const PAPER: MltcpParams = MltcpParams {
        slope: 1.75,
        intercept: 0.25,
    };

    /// Creates a new parameter set, validating the paper's requirements.
    ///
    /// Returns `None` if `slope < 0`, `intercept <= 0`, or either value is
    /// non-finite.
    pub fn new(slope: f64, intercept: f64) -> Option<Self> {
        if slope.is_finite() && intercept.is_finite() && slope >= 0.0 && intercept > 0.0 {
            Some(Self { slope, intercept })
        } else {
            None
        }
    }

    /// The value of F at `bytes_ratio = 0` (least aggressive).
    pub fn min_gain(&self) -> f64 {
        self.intercept
    }

    /// The value of F at `bytes_ratio = 1` (most aggressive).
    pub fn max_gain(&self) -> f64 {
        self.slope + self.intercept
    }

    /// The ratio `intercept / slope` that appears in the §4 steady-state
    /// error bound `2σ(1 + intercept/slope)`.
    ///
    /// Returns `f64::INFINITY` when `slope == 0` (a degenerate, non-shifting
    /// configuration).
    pub fn intercept_slope_ratio(&self) -> f64 {
        if self.slope == 0.0 {
            f64::INFINITY
        } else {
            self.intercept / self.slope
        }
    }
}

impl Default for MltcpParams {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = MltcpParams::default();
        assert_eq!(p.slope, 1.75);
        assert_eq!(p.intercept, 0.25);
        assert!((p.min_gain() - 0.25).abs() < 1e-12);
        assert!((p.max_gain() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(MltcpParams::new(-1.0, 0.25).is_none());
        assert!(MltcpParams::new(1.0, 0.0).is_none());
        assert!(MltcpParams::new(1.0, -0.1).is_none());
        assert!(MltcpParams::new(f64::NAN, 0.25).is_none());
        assert!(MltcpParams::new(1.0, f64::INFINITY).is_none());
        assert!(MltcpParams::new(0.0, 0.25).is_some());
    }

    #[test]
    fn intercept_slope_ratio_matches_paper() {
        assert!((MltcpParams::PAPER.intercept_slope_ratio() - 0.25 / 1.75).abs() < 1e-12);
        let flat = MltcpParams::new(0.0, 1.0).unwrap();
        assert!(flat.intercept_slope_ratio().is_infinite());
    }
}
