//! Bandwidth aggressiveness functions `F(bytes_ratio)`.
//!
//! MLTCP scales the congestion-window increment of the base congestion
//! control algorithm by `F(bytes_ratio)`, where `bytes_ratio` is the
//! fraction of the current training iteration's bytes already delivered
//! (§3.1, Eq. 1). Per the paper, any function works as long as it satisfies
//! three requirements:
//!
//! 1. its range is large enough to absorb network noise,
//! 2. its derivative is non-negative (more progress ⇒ at least as
//!    aggressive), and
//! 3. all flows use the same function.
//!
//! This module provides the linear function the paper deploys (Eq. 2), the
//! six candidate functions `F1..F6` compared in Fig. 3 (of which `F5`/`F6`
//! are *decreasing* and therefore deliberately violate requirement 2), and
//! tooling to check the requirements for arbitrary functions.

use crate::params::MltcpParams;
use serde::{Deserialize, Serialize};

/// A bandwidth aggressiveness function mapping
/// `bytes_ratio ∈ [0, 1]` to a positive congestion-window gain.
pub trait Aggressiveness {
    /// Evaluates the function. Callers should pass `bytes_ratio` already
    /// clamped to `[0, 1]` (as Algorithm 1 line 16 does with `min(1, ·)`);
    /// implementations additionally clamp defensively.
    fn eval(&self, bytes_ratio: f64) -> f64;

    /// Human-readable name used in figure legends and experiment logs.
    fn name(&self) -> &str {
        "F"
    }

    /// Checks requirement (ii): non-negative derivative, by dense sampling.
    ///
    /// Returns `true` when the function is non-decreasing on `[0, 1]` at a
    /// resolution of `samples` points (tolerating floating-point slop).
    fn is_non_decreasing(&self, samples: usize) -> bool {
        let n = samples.max(2);
        let mut prev = self.eval(0.0);
        for i in 1..n {
            let x = i as f64 / (n - 1) as f64;
            let y = self.eval(x);
            if y < prev - 1e-9 {
                return false;
            }
            prev = y;
        }
        true
    }

    /// Checks requirement (i): the dynamic range `max F / min F` over
    /// `[0, 1]`, a proxy for the function's noise-absorption headroom.
    /// The paper's functions all span `[0.25, 2.0]`, a ratio of 8.
    fn dynamic_range(&self, samples: usize) -> f64 {
        let n = samples.max(2);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let y = self.eval(x);
            lo = lo.min(y);
            hi = hi.max(y);
        }
        if lo <= 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// The paper's deployed aggressiveness function (Eq. 2):
/// `F(r) = slope * r + intercept`, chosen linear "to simplify MLTCP's
/// implementation in the Linux kernel and to minimize computational
/// overhead".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Slope and intercept of the line.
    pub params: MltcpParams,
}

impl Linear {
    /// Builds a linear F from validated parameters.
    pub fn new(params: MltcpParams) -> Self {
        Self { params }
    }

    /// The paper's configuration: `1.75 * r + 0.25` (Fig. 3's `F1`).
    pub fn paper_default() -> Self {
        Self::new(MltcpParams::PAPER)
    }
}

impl Aggressiveness for Linear {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        self.params.slope * clamp01(bytes_ratio) + self.params.intercept
    }

    fn name(&self) -> &str {
        "linear"
    }
}

/// `F2 = 1.75 r² + 0.25` — increasing, convex (Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Quadratic;

impl Aggressiveness for Quadratic {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        let r = clamp01(bytes_ratio);
        1.75 * r * r + 0.25
    }
    fn name(&self) -> &str {
        "F2: 1.75r^2 + 0.25"
    }
}

/// `F3 = 1 / (-3.5 r + 4)` — increasing, rational (Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Rational;

impl Aggressiveness for Rational {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        let r = clamp01(bytes_ratio);
        1.0 / (-3.5 * r + 4.0)
    }
    fn name(&self) -> &str {
        "F3: 1/(4 - 3.5r)"
    }
}

/// `F4 = -1.75 r² + 3.5 r + 0.25` — increasing, concave (Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConcaveQuadratic;

impl Aggressiveness for ConcaveQuadratic {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        let r = clamp01(bytes_ratio);
        -1.75 * r * r + 3.5 * r + 0.25
    }
    fn name(&self) -> &str {
        "F4: -1.75r^2 + 3.5r + 0.25"
    }
}

/// `F5 = -1.75 r + 2` — **decreasing**; violates requirement (ii) and, per
/// Fig. 3, fails to interleave jobs. Included as a negative control.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DecreasingLinear;

impl Aggressiveness for DecreasingLinear {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        -1.75 * clamp01(bytes_ratio) + 2.0
    }
    fn name(&self) -> &str {
        "F5: -1.75r + 2"
    }
}

/// `F6 = -1.75 r² + 2` — **decreasing**; negative control like [`DecreasingLinear`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DecreasingQuadratic;

impl Aggressiveness for DecreasingQuadratic {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        let r = clamp01(bytes_ratio);
        -1.75 * r * r + 2.0
    }
    fn name(&self) -> &str {
        "F6: -1.75r^2 + 2"
    }
}

/// A constant function `F(r) = c`. With `c = 1` MLTCP degenerates exactly to
/// the base congestion control algorithm — useful as a baseline and in
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant(pub f64);

impl Aggressiveness for Constant {
    fn eval(&self, _bytes_ratio: f64) -> f64 {
        self.0
    }
    fn name(&self) -> &str {
        "constant"
    }
}

/// An owned, dynamically-dispatched aggressiveness function, convenient for
/// configuration tables (e.g. the Fig. 3 sweep) where heterogeneous function
/// shapes are iterated together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FigureFunction {
    /// `F1 = 1.75 r + 0.25` (the paper's deployed default).
    F1,
    /// `F2 = 1.75 r² + 0.25`.
    F2,
    /// `F3 = 1 / (4 − 3.5 r)`.
    F3,
    /// `F4 = −1.75 r² + 3.5 r + 0.25`.
    F4,
    /// `F5 = −1.75 r + 2` (decreasing — negative control).
    F5,
    /// `F6 = −1.75 r² + 2` (decreasing — negative control).
    F6,
}

impl FigureFunction {
    /// All six functions in Fig. 3 order.
    pub const ALL: [FigureFunction; 6] = [
        FigureFunction::F1,
        FigureFunction::F2,
        FigureFunction::F3,
        FigureFunction::F4,
        FigureFunction::F5,
        FigureFunction::F6,
    ];

    /// Whether the function is one of the increasing candidates (F1–F4)
    /// that the paper shows converging to an interleaved state.
    pub fn is_increasing(&self) -> bool {
        matches!(
            self,
            FigureFunction::F1 | FigureFunction::F2 | FigureFunction::F3 | FigureFunction::F4
        )
    }
}

impl Aggressiveness for FigureFunction {
    fn eval(&self, bytes_ratio: f64) -> f64 {
        match self {
            FigureFunction::F1 => Linear::paper_default().eval(bytes_ratio),
            FigureFunction::F2 => Quadratic.eval(bytes_ratio),
            FigureFunction::F3 => Rational.eval(bytes_ratio),
            FigureFunction::F4 => ConcaveQuadratic.eval(bytes_ratio),
            FigureFunction::F5 => DecreasingLinear.eval(bytes_ratio),
            FigureFunction::F6 => DecreasingQuadratic.eval(bytes_ratio),
        }
    }

    fn name(&self) -> &str {
        match self {
            FigureFunction::F1 => "F1: 1.75r + 0.25",
            FigureFunction::F2 => "F2: 1.75r^2 + 0.25",
            FigureFunction::F3 => "F3: 1/(4 - 3.5r)",
            FigureFunction::F4 => "F4: -1.75r^2 + 3.5r + 0.25",
            FigureFunction::F5 => "F5: -1.75r + 2",
            FigureFunction::F6 => "F6: -1.75r^2 + 2",
        }
    }
}

/// Report of the paper's three requirements for a candidate function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequirementReport {
    /// Requirement (i): dynamic range `max/min` over `[0,1]`.
    pub dynamic_range: f64,
    /// Requirement (ii): non-negative derivative.
    pub non_decreasing: bool,
    /// Whether the function is strictly positive on `[0,1]` (needed for
    /// non-starvation, §5).
    pub strictly_positive: bool,
}

impl RequirementReport {
    /// Whether the function satisfies the paper's published requirements
    /// (taking a range ratio ≥ `min_range` as "large enough to absorb
    /// noise"; the paper's functions have ratio 8).
    pub fn satisfies(&self, min_range: f64) -> bool {
        self.non_decreasing && self.strictly_positive && self.dynamic_range >= min_range
    }
}

/// Evaluates the paper's requirements for `f` by sampling `samples` points.
pub fn check_requirements<F: Aggressiveness + ?Sized>(f: &F, samples: usize) -> RequirementReport {
    let n = samples.max(2);
    let mut positive = true;
    for i in 0..n {
        let x = i as f64 / (n - 1) as f64;
        if f.eval(x) <= 0.0 {
            positive = false;
            break;
        }
    }
    RequirementReport {
        dynamic_range: f.dynamic_range(n),
        non_decreasing: f.is_non_decreasing(n),
        strictly_positive: positive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: usize = 1001;

    #[test]
    fn all_six_functions_share_the_same_range() {
        // §3.1: "All these functions have the same range (0.25 - 2)".
        for f in FigureFunction::ALL {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for i in 0..SAMPLES {
                let y = f.eval(i as f64 / (SAMPLES - 1) as f64);
                lo = lo.min(y);
                hi = hi.max(y);
            }
            assert!((lo - 0.25).abs() < 1e-9, "{}: lo={lo}", f.name());
            assert!((hi - 2.0).abs() < 1e-9, "{}: hi={hi}", f.name());
        }
    }

    #[test]
    fn f1_through_f4_are_increasing_f5_f6_are_not() {
        for f in FigureFunction::ALL {
            assert_eq!(
                f.is_non_decreasing(SAMPLES),
                f.is_increasing(),
                "{}",
                f.name()
            );
        }
    }

    #[test]
    fn linear_matches_eq2_exactly() {
        let f = Linear::paper_default();
        for i in 0..=10 {
            let r = i as f64 / 10.0;
            assert!((f.eval(r) - (1.75 * r + 0.25)).abs() < 1e-12);
        }
    }

    #[test]
    fn eval_clamps_out_of_range_inputs() {
        let f = Linear::paper_default();
        assert_eq!(f.eval(-3.0), f.eval(0.0));
        assert_eq!(f.eval(7.0), f.eval(1.0));
    }

    #[test]
    fn requirement_report_on_paper_default() {
        let rep = check_requirements(&Linear::paper_default(), SAMPLES);
        assert!(rep.non_decreasing);
        assert!(rep.strictly_positive);
        assert!((rep.dynamic_range - 8.0).abs() < 1e-9);
        assert!(rep.satisfies(4.0));
    }

    #[test]
    fn decreasing_controls_fail_requirements() {
        let rep = check_requirements(&DecreasingLinear, SAMPLES);
        assert!(!rep.non_decreasing);
        assert!(!rep.satisfies(4.0));
    }

    #[test]
    fn constant_one_is_the_identity_gain() {
        let f = Constant(1.0);
        assert_eq!(f.eval(0.3), 1.0);
        assert!(f.is_non_decreasing(SAMPLES));
        assert!((f.dynamic_range(SAMPLES) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rational_is_finite_on_domain() {
        // Denominator 4 - 3.5r stays >= 0.5 on [0,1].
        for i in 0..SAMPLES {
            let y = Rational.eval(i as f64 / (SAMPLES - 1) as f64);
            assert!(y.is_finite() && y > 0.0);
        }
    }
}
