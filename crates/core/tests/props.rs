//! Property-based tests over the core algorithm and §4 theory.

use mltcp_core::aggressiveness::{Aggressiveness, FigureFunction, Linear};
use mltcp_core::gradient::{circular_distance, Descent};
use mltcp_core::loss::{loss_by_quadrature, LossFunction};
use mltcp_core::params::MltcpParams;
use mltcp_core::schedule::{contention, demand_profile, PeriodicJob};
use mltcp_core::shift::ShiftFunction;
use mltcp_core::tracker::{IterationTracker, TrackerConfig};
use proptest::prelude::*;

fn valid_params() -> impl Strategy<Value = MltcpParams> {
    (0.01f64..10.0, 0.01f64..5.0)
        .prop_map(|(s, i)| MltcpParams::new(s, i).expect("valid by construction"))
}

fn geometry() -> impl Strategy<Value = (f64, f64)> {
    // (period, comm_fraction)
    (0.1f64..100.0, 0.05f64..1.0)
}

proptest! {
    /// Requirement (ii) of §3.1 holds for every valid linear F.
    #[test]
    fn linear_f_is_monotone_and_positive(p in valid_params(), r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
        let f = Linear::new(p);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(f.eval(lo) <= f.eval(hi) + 1e-12);
        prop_assert!(f.eval(lo) > 0.0);
    }

    /// Every Fig. 3 candidate stays within its published [0.25, 2] range.
    #[test]
    fn figure_functions_stay_in_range(r in 0.0f64..1.0) {
        for f in FigureFunction::ALL {
            let y = f.eval(r);
            prop_assert!((0.25 - 1e-9..=2.0 + 1e-9).contains(&y), "{}({r}) = {y}", f.name());
        }
    }

    /// Eq. 3's boundary conditions and sign hold for arbitrary geometry
    /// and parameters.
    #[test]
    fn shift_zero_at_boundaries_positive_inside(
        p in valid_params(),
        (t, a) in geometry(),
        x in 0.01f64..0.99,
    ) {
        let s = ShiftFunction::new(p, t, a).expect("valid");
        let at = s.comm_duration();
        prop_assert!(s.eval(0.0).abs() < 1e-12);
        prop_assert!(s.eval(at).abs() < 1e-9 * at.max(1.0));
        prop_assert!(s.eval(at * x) > 0.0);
        // Never moves more than the remaining distance to the plateau.
        prop_assert!(s.eval(at * x) <= at * (1.0 - x) + 1e-9);
    }

    /// The periodic extension is antisymmetric about T/2.
    #[test]
    fn periodic_shift_antisymmetry(p in valid_params(), (t, a) in geometry(), x in 0.0f64..1.0) {
        let s = ShiftFunction::new(p, t, a.min(0.5)).expect("valid");
        let d = t * x;
        prop_assert!((s.eval_periodic(d) + s.eval_periodic(t - d)).abs() < 1e-7 * t.max(1.0));
    }

    /// The closed-form loss equals the quadrature of -Shift everywhere on
    /// the overlap region.
    #[test]
    fn loss_closed_form_matches_quadrature(p in valid_params(), (t, a) in geometry(), x in 0.01f64..1.0) {
        let s = ShiftFunction::new(p, t, a).expect("valid");
        let l = LossFunction::new(s);
        let d = s.comm_duration() * x;
        let numeric = loss_by_quadrature(|y| s.eval(y), d, 3000);
        let closed = l.eval(d);
        let scale = closed.abs().max(1e-6);
        prop_assert!((closed - numeric).abs() / scale < 1e-4,
            "Δ={d}: closed {closed} vs numeric {numeric}");
    }

    /// Gradient descent converges into the zero-shift plateau from any
    /// starting offset, for any valid parameters (the §4 global-optimum
    /// claim under the compatibility assumptions).
    #[test]
    fn descent_converges_from_anywhere(
        p in valid_params(),
        (t, a) in geometry(),
        x0 in 0.001f64..0.999,
    ) {
        let a = a.min(0.49);
        let s = ShiftFunction::new(p, t, a).expect("valid");
        let d = Descent::new(s);
        let rep = d.run(t * x0, 1e-7 * t, 100_000);
        prop_assert!(rep.converged);
        prop_assert!(rep.is_interleaved(&s, 1e-3 * t), "ended at {}", rep.final_delta);
    }

    /// The tracker's ratio is always in [0, 1] and non-decreasing within
    /// an iteration.
    #[test]
    fn tracker_ratio_bounded_and_monotone(
        total in 1u64..10_000_000,
        acks in proptest::collection::vec((0u64..1_000_000, 1u64..100_000), 1..100),
    ) {
        let mut tr = IterationTracker::new(TrackerConfig::oracle(total, u64::MAX));
        let mut now = 0u64;
        let mut prev = 0.0f64;
        for (gap, bytes) in acks {
            now += gap;
            let r = tr.on_ack(now, bytes);
            prop_assert!((0.0..=1.0).contains(&r));
            // Threshold is MAX: never resets, so monotone.
            prop_assert!(r >= prev - 1e-12);
            prev = r;
        }
    }

    /// Circular distance is a metric-ish: symmetric, bounded by T/2.
    #[test]
    fn circular_distance_props(x in 0.0f64..100.0, y in 0.0f64..100.0, t in 0.1f64..50.0) {
        let d = circular_distance(x, y, t);
        prop_assert!((0.0..=t / 2.0 + 1e-9).contains(&d));
        prop_assert!((d - circular_distance(y, x, t)).abs() < 1e-9);
        prop_assert!(circular_distance(x, x, t).abs() < 1e-9);
    }

    /// Contention of a single job is always zero; adding jobs never
    /// reduces peak overlap.
    #[test]
    fn contention_monotone_in_jobs(
        offsets in proptest::collection::vec(0.0f64..1.8, 1..6),
    ) {
        let jobs: Vec<PeriodicJob> = offsets
            .iter()
            .map(|&o| PeriodicJob::new(1.8, 0.2, o).expect("valid"))
            .collect();
        let mut prev_peak = 0;
        for k in 1..=jobs.len() {
            let rep = contention(&jobs[..k], 2048);
            prop_assert!(rep.peak_overlap >= prev_peak);
            prop_assert!(rep.peak_overlap as usize <= k);
            prev_peak = rep.peak_overlap;
        }
    }

    /// Demand profile sums: the time-average demand equals Σa (within
    /// sampling error) regardless of offsets.
    #[test]
    fn demand_profile_average_is_total_demand(
        offsets in proptest::collection::vec(0.0f64..1.8, 1..6),
        a in 0.05f64..0.5,
    ) {
        let jobs: Vec<PeriodicJob> = offsets
            .iter()
            .map(|&o| PeriodicJob::new(1.8, a, o).expect("valid"))
            .collect();
        let profile = demand_profile(&jobs, 1.8, 4096);
        let avg = profile.iter().map(|&d| d as f64).sum::<f64>() / profile.len() as f64;
        let expect = a * jobs.len() as f64;
        prop_assert!((avg - expect).abs() < 0.02 * jobs.len() as f64, "avg {avg} vs {expect}");
    }
}
