//! End-to-end transport tests: full sender/receiver pairs over simulated
//! networks, exercising slow start, congestion avoidance, loss recovery,
//! timeouts, ECN, and the MLTCP augmentation's iteration tracking.

use mltcp_netsim::prelude::*;
use mltcp_netsim::queue::QueueKind;
use mltcp_netsim::topology::{build_dumbbell, DumbbellSpec};
use mltcp_transport::cc::{Cubic, Dctcp, Mltcp, Reno};
use mltcp_transport::proto::{self, Msg};
use mltcp_transport::sender::PriorityPolicy;
use mltcp_transport::{install_connection, SenderConfig, TcpReceiver, TcpSender};

/// A minimal driver that starts one transfer at t=0 and records the
/// completion time.
#[derive(Debug)]
struct OneShotDriver {
    sender: Option<mltcp_netsim::sim::AgentId>,
    bytes: u64,
    done_at: Option<SimTime>,
}

impl Agent for OneShotDriver {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        let s = self.sender.expect("wired before run");
        ctx.send_message(s, proto::encode(Msg::StartTransfer { bytes: self.bytes }));
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, token: u64) {
        if let Some(Msg::TransferComplete { .. }) = proto::decode(token) {
            self.done_at = Some(ctx.now());
        }
    }
}

fn one_flow_sim(loss: f64, queue: QueueKind) -> (Simulator, AgentId, AgentId /* driver, sender */) {
    let mut b = TopologyBuilder::new();
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    let spec = LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20))
        .with_loss(loss)
        .with_queue(queue);
    // Reverse path clean so acks survive.
    b.directed(h0, h1, spec);
    b.directed(
        h1,
        h0,
        LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)),
    );
    let mut sim = Simulator::new(b.build().unwrap(), 99);
    let driver = sim.add_agent(
        h0,
        OneShotDriver {
            sender: None,
            bytes: 3_000_000, // 2000 MTUs
            done_at: None,
        },
    );
    let mut cfg = SenderConfig::new(FlowId(1), h1);
    cfg.driver = Some(driver);
    let handles = install_connection(&mut sim, h0, h1, cfg, Reno::new());
    sim.agent_mut::<OneShotDriver>(driver).sender = Some(handles.sender);
    (sim, driver, handles.sender)
}

#[test]
fn clean_path_transfers_all_bytes_near_line_rate() {
    let (mut sim, driver, sender) = one_flow_sim(0.0, QueueKind::DropTail { cap_bytes: 500_000 });
    sim.run();
    let done = sim
        .agent::<OneShotDriver>(driver)
        .done_at
        .expect("transfer completes");
    // 3 MB ≈ 24 Mbit at 10 Gbps ≈ 2.4 ms + slow-start ramp; allow 4×.
    assert!(
        done < SimTime::from_secs_f64(0.012),
        "completion too slow: {done}"
    );
    let s = sim.agent::<TcpSender>(sender);
    assert_eq!(s.bytes_acked(), 3_000_000);
    assert_eq!(s.stats().transfers_completed, 1);
    // Slow-start overshoot into the finite buffer may cost at most a
    // couple of RTOs; more would indicate broken recovery.
    assert!(s.stats().timeouts <= 2, "timeouts={}", s.stats().timeouts);
}

#[test]
fn random_loss_recovers_and_completes() {
    let (mut sim, driver, sender) = one_flow_sim(0.01, QueueKind::DropTail { cap_bytes: 500_000 });
    sim.run();
    assert!(sim.agent::<OneShotDriver>(driver).done_at.is_some());
    let s = sim.agent::<TcpSender>(sender);
    assert_eq!(s.bytes_acked(), 3_000_000);
    assert!(s.stats().retransmits > 0, "1% loss must cause retransmits");
}

#[test]
fn heavy_loss_still_completes_via_timeouts() {
    let (mut sim, driver, sender) = one_flow_sim(0.2, QueueKind::DropTail { cap_bytes: 500_000 });
    sim.run();
    assert!(
        sim.agent::<OneShotDriver>(driver).done_at.is_some(),
        "20% loss must still complete eventually"
    );
    let s = sim.agent::<TcpSender>(sender);
    assert_eq!(s.bytes_acked(), 3_000_000);
    assert!(s.stats().timeouts > 0 || s.stats().fast_retransmits > 0);
}

#[test]
fn tiny_buffer_forces_fast_retransmit_not_collapse() {
    // 15 kB buffer at 10 Gbps: overflow drops trigger dupack recovery.
    let (mut sim, driver, sender) = one_flow_sim(0.0, QueueKind::DropTail { cap_bytes: 15_000 });
    sim.run();
    assert!(sim.agent::<OneShotDriver>(driver).done_at.is_some());
    let s = sim.agent::<TcpSender>(sender);
    assert_eq!(s.bytes_acked(), 3_000_000);
    assert!(
        s.stats().fast_retransmits > 0,
        "buffer overflow should trigger fast retransmit"
    );
}

#[test]
fn two_reno_flows_share_a_bottleneck_roughly_fairly() {
    let (topo, d) = build_dumbbell(DumbbellSpec {
        pairs: 2,
        bottleneck_rate: Bandwidth::gbps(10),
        edge_rate: Bandwidth::gbps(40),
        ..DumbbellSpec::default()
    });
    let mut sim = Simulator::new(topo, 5);
    sim.enable_trace(d.bottleneck, SimDuration::millis(10));
    let mut handles = vec![];
    for i in 0..2 {
        let driver = sim.add_agent(
            d.senders[i],
            OneShotDriver {
                sender: None,
                bytes: 40_000_000,
                done_at: None,
            },
        );
        let mut cfg = SenderConfig::new(FlowId(i as u64 + 1), d.receivers[i]);
        cfg.driver = Some(driver);
        let h = install_connection(&mut sim, d.senders[i], d.receivers[i], cfg, Reno::new());
        sim.agent_mut::<OneShotDriver>(driver).sender = Some(h.sender);
        handles.push((driver, h));
    }
    sim.run();
    let trace = sim.trace(d.bottleneck).unwrap();
    let b1 = trace.flow_bytes(FlowId(1)) as f64;
    let b2 = trace.flow_bytes(FlowId(2)) as f64;
    // Both complete; during contention shares shouldn't be wildly skewed.
    assert!(b1 > 0.0 && b2 > 0.0);
    for (driver, h) in &handles {
        assert!(sim.agent::<OneShotDriver>(*driver).done_at.is_some());
        assert_eq!(sim.agent::<TcpSender>(h.sender).bytes_acked(), 40_000_000);
    }
}

#[test]
fn cubic_and_dctcp_complete_transfers() {
    // CUBIC over drop-tail.
    {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.link(
            h0,
            h1,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)),
        );
        let mut sim = Simulator::new(b.build().unwrap(), 3);
        let driver = sim.add_agent(
            h0,
            OneShotDriver {
                sender: None,
                bytes: 1_500_000,
                done_at: None,
            },
        );
        let mut cfg = SenderConfig::new(FlowId(1), h1);
        cfg.driver = Some(driver);
        let h = install_connection(&mut sim, h0, h1, cfg, Cubic::new());
        sim.agent_mut::<OneShotDriver>(driver).sender = Some(h.sender);
        sim.run();
        assert!(sim.agent::<OneShotDriver>(driver).done_at.is_some());
    }
    // DCTCP over an ECN-marking bottleneck.
    {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let spec = LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)).with_queue(
            QueueKind::EcnDropTail {
                cap_bytes: 500_000,
                mark_threshold_bytes: 60_000,
            },
        );
        b.link(h0, h1, spec);
        let mut sim = Simulator::new(b.build().unwrap(), 4);
        let driver = sim.add_agent(
            h0,
            OneShotDriver {
                sender: None,
                bytes: 1_500_000,
                done_at: None,
            },
        );
        let mut cfg = SenderConfig::new(FlowId(1), h1);
        cfg.driver = Some(driver);
        cfg.ecn = true;
        let h = install_connection(&mut sim, h0, h1, cfg, Dctcp::new());
        sim.agent_mut::<OneShotDriver>(driver).sender = Some(h.sender);
        sim.run();
        assert!(sim.agent::<OneShotDriver>(driver).done_at.is_some());
        let s = sim.agent::<TcpSender>(h.sender);
        assert_eq!(s.bytes_acked(), 1_500_000);
    }
}

/// Driver that runs several back-to-back "iterations" with a compute gap,
/// like a training job, and records each iteration's span.
#[derive(Debug)]
struct IterDriver {
    sender: Option<AgentId>,
    bytes_per_iter: u64,
    compute_gap: SimDuration,
    iters_left: u32,
    iteration_spans: Vec<(SimTime, SimTime)>,
    current_start: SimTime,
}

impl IterDriver {
    const TIMER_NEXT: u64 = 1;
}

impl Agent for IterDriver {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.current_start = ctx.now();
        let s = self.sender.expect("wired");
        ctx.send_message(
            s,
            proto::encode(Msg::StartTransfer {
                bytes: self.bytes_per_iter,
            }),
        );
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, token: u64) {
        if let Some(Msg::TransferComplete { .. }) = proto::decode(token) {
            self.iteration_spans.push((self.current_start, ctx.now()));
            self.iters_left -= 1;
            if self.iters_left > 0 {
                ctx.set_timer(self.compute_gap, Self::TIMER_NEXT);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        if token == Self::TIMER_NEXT {
            self.current_start = ctx.now();
            let s = self.sender.expect("wired");
            ctx.send_message(
                s,
                proto::encode(Msg::StartTransfer {
                    bytes: self.bytes_per_iter,
                }),
            );
        }
    }
}

#[test]
fn mltcp_tracker_follows_iterations_end_to_end() {
    let mut b = TopologyBuilder::new();
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    b.link(
        h0,
        h1,
        LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)),
    );
    let mut sim = Simulator::new(b.build().unwrap(), 8);
    let bytes = 1_500_000u64;
    let gap = SimDuration::millis(50);
    let driver = sim.add_agent(
        h0,
        IterDriver {
            sender: None,
            bytes_per_iter: bytes,
            compute_gap: gap,
            iters_left: 5,
            iteration_spans: vec![],
            current_start: SimTime::ZERO,
        },
    );
    let mut cfg = SenderConfig::new(FlowId(1), h1);
    cfg.driver = Some(driver);
    let cc = Mltcp::paper(Reno::new(), bytes, SimDuration::millis(10));
    let h = install_connection(&mut sim, h0, h1, cfg, cc);
    sim.agent_mut::<IterDriver>(driver).sender = Some(h.sender);
    sim.run();

    let spans = &sim.agent::<IterDriver>(driver).iteration_spans;
    assert_eq!(spans.len(), 5);
    // Every iteration's transfer completed; the sender's MLTCP controller
    // ended at bytes_ratio == 1 and detected iteration boundaries.
    let sender = sim.agent::<TcpSender>(h.sender);
    assert_eq!(sender.bytes_acked(), bytes * 5);
    let cc = sender
        .cc_as::<Mltcp<Reno>>()
        .expect("controller is MLTCP-Reno");
    assert!((cc.bytes_ratio() - 1.0).abs() < 1e-9);
}

#[test]
fn pfabric_priority_tags_decrease_with_progress() {
    // With RemainingBytes policy, later segments carry smaller tags.
    let mut b = TopologyBuilder::new();
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    b.link(
        h0,
        h1,
        LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)),
    );
    let mut sim = Simulator::new(b.build().unwrap(), 8);
    let driver = sim.add_agent(
        h0,
        OneShotDriver {
            sender: None,
            bytes: 150_000,
            done_at: None,
        },
    );
    let mut cfg = SenderConfig::new(FlowId(1), h1);
    cfg.driver = Some(driver);
    cfg.priority = PriorityPolicy::RemainingBytes;
    let h = install_connection(&mut sim, h0, h1, cfg, Reno::new());
    sim.agent_mut::<OneShotDriver>(driver).sender = Some(h.sender);
    sim.run();
    assert!(sim.agent::<OneShotDriver>(driver).done_at.is_some());
    // Receiver got everything in order despite tagging.
    assert_eq!(sim.agent::<TcpReceiver>(h.receiver).delivered(), 150_000);
}

#[test]
fn fifty_rto_blackout_recovers_in_bounded_time() {
    // A mid-transfer link outage long enough for ~50 RTOs at the capped
    // ceiling. With max_rto capped at 1 ms the sender probes the repaired
    // link within one ceiling interval; without the cap, plain doubling
    // would have backed off past the entire outage.
    use mltcp_netsim::fault::FaultPlan;
    let mut b = TopologyBuilder::new();
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    let fwd = b.directed(
        h0,
        h1,
        LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)),
    );
    b.directed(
        h1,
        h0,
        LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)),
    );
    let mut sim = Simulator::new(b.build().unwrap(), 7);
    let outage = SimDuration::millis(55);
    let fault_at = SimTime::from_secs_f64(1e-3);
    let repair_at = fault_at + outage;
    sim.install_faults(&FaultPlan::new().link_flap(fwd, fault_at, outage));
    let driver = sim.add_agent(
        h0,
        OneShotDriver {
            sender: None,
            bytes: 3_000_000,
            done_at: None,
        },
    );
    let mut cfg = SenderConfig::new(FlowId(1), h1);
    cfg.driver = Some(driver);
    cfg.min_rto = SimDuration::micros(200);
    cfg.max_rto = SimDuration::millis(1);
    cfg.initial_rto = Some(SimDuration::micros(500));
    let h = install_connection(&mut sim, h0, h1, cfg, Reno::new());
    sim.agent_mut::<OneShotDriver>(driver).sender = Some(h.sender);
    sim.run();

    let done = sim
        .agent::<OneShotDriver>(driver)
        .done_at
        .expect("transfer survives the blackout");
    // Bounded recovery: first probe lands within max_rto of the repair,
    // then ~2.4 ms of serialization + slow-start ramp. 10 ms of headroom.
    assert!(
        done < repair_at + SimDuration::millis(10),
        "recovery too slow: done at {done}, repaired at {repair_at}"
    );
    // Go-back-N drained cleanly: every byte exactly delivered and acked.
    let s = sim.agent::<TcpSender>(h.sender);
    assert_eq!(s.bytes_acked(), 3_000_000);
    assert_eq!(sim.agent::<TcpReceiver>(h.receiver).delivered(), 3_000_000);
    // The outage produced a long consecutive-timeout episode (~50 at the
    // 1 ms ceiling) and the recovery stats captured it.
    let st = s.stats();
    assert!(st.timeouts >= 40, "timeouts={}", st.timeouts);
    assert!(st.blackouts >= 1, "blackouts={}", st.blackouts);
    assert!(
        st.max_consecutive_timeouts >= 40,
        "max_consecutive_timeouts={}",
        st.max_consecutive_timeouts
    );
    assert!(
        st.last_blackout_detect <= SimDuration::millis(2),
        "detect={}",
        st.last_blackout_detect
    );
    // Time-to-first-good-ack after the stall began covers the outage but
    // not much more (bounded overshoot thanks to the capped ceiling).
    assert!(
        st.last_blackout_recovery >= outage
            && st.last_blackout_recovery <= outage + SimDuration::millis(5),
        "recovery={}",
        st.last_blackout_recovery
    );
}

#[test]
fn determinism_across_identical_runs() {
    let run = |seed: u64| {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.directed(
            h0,
            h1,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)).with_loss(0.02),
        );
        b.directed(
            h1,
            h0,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(20)),
        );
        let mut sim = Simulator::new(b.build().unwrap(), seed);
        let driver = sim.add_agent(
            h0,
            OneShotDriver {
                sender: None,
                bytes: 3_000_000,
                done_at: None,
            },
        );
        let mut cfg = SenderConfig::new(FlowId(1), h1);
        cfg.driver = Some(driver);
        let h = install_connection(&mut sim, h0, h1, cfg, Reno::new());
        sim.agent_mut::<OneShotDriver>(driver).sender = Some(h.sender);
        sim.run();
        (
            sim.agent::<OneShotDriver>(driver).done_at,
            sim.agent::<TcpSender>(h.sender).stats(),
        )
    };
    assert_eq!(run(1234), run(1234));
}
