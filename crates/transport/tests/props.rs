//! Property-based tests over the transport: window invariants under
//! arbitrary event sequences, and end-to-end delivery under randomized
//! loss patterns.

use mltcp_core::aggressiveness::Linear;
use mltcp_netsim::link::{Bandwidth, LinkSpec};
use mltcp_netsim::packet::{FlowId, Packet};
use mltcp_netsim::sim::{Agent, AgentCtx, AgentId, Simulator};
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_netsim::topology::TopologyBuilder;
use mltcp_transport::cc::{
    AckEvent, CongestionControl, Cubic, Dctcp, Mltcp, MltcpConfig, Reno, Window,
};
use mltcp_transport::proto::{self, Msg};
use mltcp_transport::sender::SenderConfig;
use mltcp_transport::{install_connection, TcpSender};
use proptest::prelude::*;

/// One synthetic CC event.
#[derive(Debug, Clone)]
enum Ev {
    Ack { pkts: f64, ecn: bool, rec: bool },
    Loss,
    Timeout,
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        6 => (0.1f64..4.0, any::<bool>(), any::<bool>())
            .prop_map(|(pkts, ecn, rec)| Ev::Ack { pkts, ecn, rec }),
        1 => Just(Ev::Loss),
        1 => Just(Ev::Timeout),
    ]
}

fn drive(cc: &mut dyn CongestionControl, evs: &[Ev]) -> bool {
    let mut w = Window::initial(10.0);
    let mut now = SimTime::ZERO;
    for e in evs {
        now += SimDuration::micros(100);
        match e {
            Ev::Ack { pkts, ecn, rec } => {
                cc.on_ack(
                    &AckEvent {
                        now,
                        newly_acked_bytes: (*pkts * 1500.0) as u64,
                        newly_acked_packets: *pkts,
                        rtt: Some(SimDuration::micros(80)),
                        ecn_echo: *ecn,
                        in_recovery: *rec,
                        after_timeout: false,
                    },
                    &mut w,
                );
            }
            Ev::Loss => cc.on_loss(now, &mut w),
            Ev::Timeout => cc.on_timeout(now, &mut w),
        }
        w.clamp_min();
        if !(w.cwnd.is_finite() && w.cwnd >= Window::MIN_CWND && w.ssthresh >= Window::MIN_CWND) {
            return false;
        }
    }
    true
}

proptest! {
    /// Every congestion controller keeps cwnd finite and ≥ 1 packet
    /// under arbitrary ack/loss/timeout sequences — the §5 non-starvation
    /// floor.
    #[test]
    fn windows_stay_finite_and_floored(evs in proptest::collection::vec(ev_strategy(), 1..300)) {
        prop_assert!(drive(&mut Reno::new(), &evs));
        prop_assert!(drive(&mut Cubic::new(), &evs));
        prop_assert!(drive(&mut Dctcp::new(), &evs));
        let mut m = Mltcp::new(
            Reno::new(),
            Linear::paper_default(),
            MltcpConfig::oracle(1_000_000, SimDuration::millis(1)),
        );
        prop_assert!(drive(&mut m, &evs));
    }

    /// MLTCP's window never grows more than `F_max`× faster than the
    /// base algorithm under the same ack stream (and never shrinks
    /// slower): the augmentation scales increments, nothing else.
    #[test]
    fn mltcp_growth_bounded_by_fmax(acks in proptest::collection::vec(0.1f64..2.0, 1..200)) {
        let mut base = Reno::new();
        let mut aug = Mltcp::new(
            Reno::new(),
            Linear::paper_default(),
            MltcpConfig::oracle(u64::MAX / 2, SimDuration::millis(1)),
        );
        let mut wb = Window::initial(10.0);
        let mut wa = Window::initial(10.0);
        wb.ssthresh = 5.0; // force congestion avoidance for both
        wa.ssthresh = 5.0;
        let mut now = SimTime::ZERO;
        for pkts in acks {
            now += SimDuration::micros(100);
            let mk = |_w: &Window| AckEvent {
                now,
                newly_acked_bytes: (pkts * 1500.0) as u64,
                newly_acked_packets: pkts,
                rtt: Some(SimDuration::micros(80)),
                ecn_echo: false,
                in_recovery: false,
                after_timeout: false,
            };
            let before_b = wb.cwnd;
            let before_a = wa.cwnd;
            base.on_ack(&mk(&wb), &mut wb);
            aug.on_ack(&mk(&wa), &mut wa);
            let db = wb.cwnd - before_b;
            let da = wa.cwnd - before_a;
            // Base increments from identical cwnds would be identical;
            // here cwnds diverge, so compare growth RATE per cwnd unit:
            // d·cwnd = F(r)·pkts for Reno-CA.
            let gb = db * before_b;
            let ga = da * before_a;
            prop_assert!(ga <= gb * 2.0 + 1e-9, "gain {ga} vs base {gb}");
            prop_assert!(ga >= gb * 0.25 - 1e-9);
        }
    }
}

/// End-to-end: a transfer over a randomly lossy path always completes,
/// delivering every byte exactly once to the application, for any CC.
#[derive(Debug)]
struct Oneshot {
    sender: Option<AgentId>,
    bytes: u64,
    done: bool,
}
impl Agent for Oneshot {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        let s = self.sender.expect("wired");
        ctx.send_message(s, proto::encode(Msg::StartTransfer { bytes: self.bytes }));
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
    fn on_message(&mut self, _ctx: &mut AgentCtx<'_>, _from: AgentId, token: u64) {
        if let Some(Msg::TransferComplete { .. }) = proto::decode(token) {
            self.done = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn transfers_complete_under_any_loss(
        loss in 0.0f64..0.3,
        kb in 10u64..500,
        seed in 0u64..10_000,
    ) {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.directed(
            h0,
            h1,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(10)).with_loss(loss),
        );
        b.directed(h1, h0, LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(10)));
        let mut sim = Simulator::new(b.build().expect("connected"), seed);
        let bytes = kb * 1000;
        let app = sim.add_agent(h0, Oneshot { sender: None, bytes, done: false });
        let mut cfg = SenderConfig::new(FlowId(1), h1);
        cfg.driver = Some(app);
        cfg.min_rto = SimDuration::micros(200);
        let h = install_connection(&mut sim, h0, h1, cfg, Reno::new());
        sim.agent_mut::<Oneshot>(app).sender = Some(h.sender);
        sim.run_until(SimTime::from_secs_f64(30.0));
        prop_assert!(sim.agent::<Oneshot>(app).done, "loss={loss} kb={kb}");
        prop_assert_eq!(sim.agent::<TcpSender>(h.sender).bytes_acked(), bytes);
        // The receiver delivered exactly the stream (dedup'd).
        let rx = sim.agent::<mltcp_transport::TcpReceiver>(h.receiver);
        prop_assert_eq!(rx.delivered(), bytes);
    }

    /// Byte conservation under chaos: Gilbert–Elliott bursty loss on both
    /// directions plus a random mid-transfer link flap (and optionally a
    /// brownout) never duplicate, lose, or reorder application bytes —
    /// every transfer completes with the receiver delivering exactly the
    /// stream, for random fault schedules.
    #[test]
    fn bytes_conserved_under_bursty_loss_and_link_flap(
        p_gb in 0.005f64..0.1,
        p_bg in 0.1f64..0.5,
        loss_bad in 0.1f64..0.7,
        kb in 10u64..300,
        flap_at_us in 50u64..2_000,
        outage_us in 50u64..5_000,
        brownout_factor in 0.1f64..1.0,
        brownout_window_us in 100u64..2_000,
        seed in 0u64..10_000,
    ) {
        use mltcp_netsim::fault::{FaultPlan, GilbertElliott, LossModel};
        let ge = LossModel::GilbertElliott(GilbertElliott::bursty(p_gb, p_bg, loss_bad));
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let fwd = b.directed(
            h0,
            h1,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(10)),
        );
        let rev = b.directed(h1, h0, LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(10)));
        let mut sim = Simulator::new(b.build().expect("connected"), seed);
        let horizon = SimDuration::secs(30);
        let mut plan = FaultPlan::new()
            // Bursty loss on data AND ack paths for the whole run.
            .loss_window(fwd, SimTime::ZERO, horizon, ge)
            .loss_window(rev, SimTime::ZERO, horizon, ge)
            .link_flap(
                fwd,
                SimTime(flap_at_us * 1_000),
                SimDuration::micros(outage_us),
            );
        plan = plan.brownout(
            rev,
            SimTime(flap_at_us * 1_000),
            SimDuration::micros(brownout_window_us),
            brownout_factor,
        );
        sim.install_faults(&plan);
        let bytes = kb * 1000;
        let app = sim.add_agent(h0, Oneshot { sender: None, bytes, done: false });
        let mut cfg = SenderConfig::new(FlowId(1), h1);
        cfg.driver = Some(app);
        cfg.min_rto = SimDuration::micros(200);
        cfg.max_rto = SimDuration::millis(2);
        let h = install_connection(&mut sim, h0, h1, cfg, Reno::new());
        sim.agent_mut::<Oneshot>(app).sender = Some(h.sender);
        sim.run_until(SimTime::from_secs_f64(30.0));
        prop_assert!(
            sim.agent::<Oneshot>(app).done,
            "ge=({p_gb},{p_bg},{loss_bad}) kb={kb} flap@{flap_at_us}us/{outage_us}us"
        );
        prop_assert_eq!(sim.agent::<TcpSender>(h.sender).bytes_acked(), bytes);
        let rx = sim.agent::<mltcp_transport::TcpReceiver>(h.receiver);
        prop_assert_eq!(rx.delivered(), bytes);
    }
}
