//! # mltcp-transport
//!
//! TCP sender/receiver state machines for `mltcp-netsim`, with pluggable
//! congestion control modelled on Linux's `tcp_congestion_ops` — the hook
//! surface the paper uses to deploy MLTCP ("we implement MLTCP-Reno in the
//! Linux kernel using the pluggable congestion module").
//!
//! ## What is modelled
//!
//! * **Sender** ([`sender::TcpSender`]): window-based transmission,
//!   cumulative-ack processing, duplicate-ack counting with fast
//!   retransmit / NewReno-style fast recovery, RTO with exponential
//!   backoff (RFC 6298 estimator in [`rtt`]), Karn's algorithm for RTT
//!   samples, and application-commanded transfers (the workload driver
//!   starts one transfer per training iteration).
//! * **Receiver** ([`receiver::TcpReceiver`]): cumulative acks over an
//!   out-of-order reassembly buffer, per-packet ECN echo (as DCTCP needs).
//! * **Congestion control** ([`cc`]): Reno, CUBIC, and DCTCP, plus the
//!   MLTCP augmentation [`cc::mltcp::Mltcp`] which wraps *any* base
//!   algorithm and scales its congestion-avoidance window increase by the
//!   bandwidth aggressiveness function `F(bytes_ratio)` (paper Eq. 1 /
//!   Algorithm 1).
//!
//! ## What is deliberately simplified
//!
//! No SACK (NewReno-style recovery is enough for drop-tail dynamics), no
//! flow-control window (receivers sink at line rate), no handshake or
//! teardown (connections are pre-installed), and no delayed acks (every
//! data packet is acked, which also matches DCTCP's per-packet ECN echo
//! mode). None of these affect the bandwidth-sharing dynamics MLTCP
//! relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod connection;
pub mod proto;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use cc::{CongestionControl, Window};
pub use connection::{install_connection, ConnectionHandles};
pub use receiver::TcpReceiver;
pub use sender::{SenderConfig, TcpSender};
