//! The tiny agent-message protocol between workload drivers and transport
//! endpoints.
//!
//! `mltcp-netsim` messages carry a single `u64` token; we pack an opcode
//! into the top 8 bits and a byte count into the low 56 (2^56 bytes ≈
//! 72 PB per transfer — five orders of magnitude above any DNN iteration).

/// Messages exchanged between agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Driver → sender: append `bytes` to the stream and transmit them
    /// (one training iteration's communication phase).
    StartTransfer {
        /// Bytes to transfer.
        bytes: u64,
    },
    /// Sender → driver: a previously started transfer fully acked.
    TransferComplete {
        /// Bytes of that transfer.
        bytes: u64,
    },
}

const OP_SHIFT: u32 = 56;
const PAYLOAD_MASK: u64 = (1 << OP_SHIFT) - 1;
const OP_START: u64 = 1;
const OP_COMPLETE: u64 = 2;

/// Encodes a message into a token.
///
/// # Panics
/// Panics if the byte count exceeds 2^56 − 1.
pub fn encode(msg: Msg) -> u64 {
    let (op, bytes) = match msg {
        Msg::StartTransfer { bytes } => (OP_START, bytes),
        Msg::TransferComplete { bytes } => (OP_COMPLETE, bytes),
    };
    assert!(bytes <= PAYLOAD_MASK, "transfer too large to encode");
    (op << OP_SHIFT) | bytes
}

/// Decodes a token; `None` for unknown opcodes.
pub fn decode(token: u64) -> Option<Msg> {
    let bytes = token & PAYLOAD_MASK;
    match token >> OP_SHIFT {
        OP_START => Some(Msg::StartTransfer { bytes }),
        OP_COMPLETE => Some(Msg::TransferComplete { bytes }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for msg in [
            Msg::StartTransfer { bytes: 0 },
            Msg::StartTransfer {
                bytes: 1_000_000_000,
            },
            Msg::TransferComplete { bytes: 123 },
            Msg::TransferComplete {
                bytes: PAYLOAD_MASK,
            },
        ] {
            assert_eq!(decode(encode(msg)), Some(msg));
        }
    }

    #[test]
    fn unknown_opcode_is_none() {
        assert_eq!(decode(0), None);
        assert_eq!(decode(u64::MAX), None);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversize_panics() {
        encode(Msg::StartTransfer {
            bytes: PAYLOAD_MASK + 1,
        });
    }
}
