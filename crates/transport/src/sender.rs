//! The TCP sender: window-based transmission with NewReno-style loss
//! recovery, driven by application "transfer" commands from a workload
//! driver.
//!
//! A sender models one long-lived connection carrying one training job's
//! flow. Each training iteration, the driver messages
//! [`crate::proto::Msg::StartTransfer`]; the sender appends the bytes to
//! its stream, transmits under congestion control, and replies with
//! [`crate::proto::Msg::TransferComplete`] when everything is
//! cumulatively acked. Between transfers the connection idles — exactly
//! the on/off pattern whose ack gaps MLTCP's Algorithm 1 detects.

use crate::cc::{AckEvent, CongestionControl, Window};
use crate::proto::{self, Msg};
use crate::rtt::RttEstimator;
use mltcp_netsim::node::NodeId;
use mltcp_netsim::packet::{EcnCodepoint, FlowId, Packet, SegmentHeader};
use mltcp_netsim::sim::{Agent, AgentCtx, AgentId};
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_telemetry::{RetxKind, TelemetryEvent};
use std::collections::VecDeque;

/// How data packets are priority-tagged (for schedulers that use tags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorityPolicy {
    /// No tagging (FIFO bottlenecks ignore priorities anyway).
    None,
    /// pFabric: tag = remaining bytes of the current transfer; switches
    /// then serve shortest-remaining-first.
    RemainingBytes,
    /// PIAS: tag = MLFQ level, demoted as the transfer's sent bytes cross
    /// each threshold.
    Pias {
        /// Ascending byte thresholds separating levels 0..=n.
        thresholds: Vec<u64>,
    },
}

/// Static sender parameters.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Flow id (shared with the receiver).
    pub flow: FlowId,
    /// Destination host.
    pub dst: NodeId,
    /// Maximum segment (payload) size; the paper's Algorithm 1 assumes
    /// 1500.
    pub mss: u32,
    /// Initial congestion window in packets (Linux default: 10).
    pub initial_cwnd: f64,
    /// Driver agent to notify on transfer completion.
    pub driver: Option<AgentId>,
    /// Priority tagging policy.
    pub priority: PriorityPolicy,
    /// Mark data packets ECN-capable (required for DCTCP).
    pub ecn: bool,
    /// Reset to `initial_cwnd` + slow start at every transfer start
    /// (Linux's slow-start-after-idle). Default off: the paper's
    /// long-lived job flows keep their window across iterations.
    pub slow_start_restart: bool,
    /// RTO floor. Scale this with the experiment's time scale: the
    /// default 1 ms suits second-scale iterations; millisecond-scale
    /// scenarios want ~8× the path RTT.
    pub min_rto: mltcp_netsim::time::SimDuration,
    /// RTO ceiling: exponential backoff never exceeds this (RFC 6298
    /// §2.5 allows any cap ≥ 60 s for the WAN; a blackout survivor at
    /// datacenter scale wants seconds or less, so that the first
    /// retransmission after a repair arrives promptly).
    pub max_rto: mltcp_netsim::time::SimDuration,
    /// Initial RTO before any RTT sample; `None` keeps the default of
    /// `min_rto × 10`.
    pub initial_rto: Option<mltcp_netsim::time::SimDuration>,
    /// Training-job index this flow belongs to (0 for standalone flows).
    /// Carried into [`SenderStats`] and telemetry events so traces can be
    /// grouped per job without a side table.
    pub job: u32,
}

impl SenderConfig {
    /// Defaults for a flow toward `dst`.
    pub fn new(flow: FlowId, dst: NodeId) -> Self {
        Self {
            flow,
            dst,
            mss: 1500,
            initial_cwnd: 10.0,
            driver: None,
            priority: PriorityPolicy::None,
            ecn: false,
            slow_start_restart: false,
            min_rto: mltcp_netsim::time::SimDuration::millis(1),
            max_rto: mltcp_netsim::time::SimDuration::secs(4),
            initial_rto: None,
            job: 0,
        }
    }
}

/// Counters exposed for tests and experiment harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Training-job index from [`SenderConfig::job`].
    pub job: u32,
    /// Data segments sent (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast-retransmit (triple-dupack) events.
    pub fast_retransmits: u64,
    /// Transfers completed.
    pub transfers_completed: u64,
    /// Blackout episodes: runs of ≥ 1 consecutive RTOs with no
    /// intervening good ack.
    pub blackouts: u64,
    /// Longest run of consecutive RTOs observed.
    pub max_consecutive_timeouts: u64,
    /// Last blackout's detection time: from the last forward progress to
    /// the first RTO of the episode.
    pub last_blackout_detect: SimDuration,
    /// Last blackout's recovery time: from the last forward progress to
    /// the first good (snd_una-advancing) ack after the episode.
    pub last_blackout_recovery: SimDuration,
}

/// The sender endpoint (a [`mltcp_netsim::sim::Agent`]).
#[derive(Debug)]
pub struct TcpSender {
    cfg: SenderConfig,
    cc: Box<dyn CongestionControl>,
    window: Window,
    rtt: RttEstimator,
    /// Stream state: total bytes the application has asked to send.
    stream_end: u64,
    /// First unacknowledged byte.
    snd_una: u64,
    /// Next byte to transmit.
    snd_nxt: u64,
    /// Start offset of the current transfer (for PIAS level computation).
    transfer_start: u64,
    /// Pending completion boundaries (stream offsets), FIFO.
    pending_ends: VecDeque<u64>,
    /// Recovery state: `in_recovery` until `recover` is cumulatively
    /// acked; loss recovery is window-paced go-back-N (see module docs).
    in_recovery: bool,
    recover: u64,
    dup_acks: u32,
    /// Segments below this offset are retransmissions (no RTT samples).
    resend_below: u64,
    /// Per-segment send records for Karn-compliant RTT samples:
    /// `seq → (send time, was_retransmitted)`.
    /// Kept as a deque, not a map: segments are recorded in strictly
    /// increasing `seq` order (go-back-N clears before any rewind), so
    /// acks drain from the front with zero per-ack allocation — this is
    /// the per-ack hot path.
    send_times: VecDeque<(u64, SimTime, bool)>,
    /// RTO timer generation (lazy cancellation).
    rto_gen: u64,
    rto_armed: bool,
    /// Completion log: (time, transfer bytes).
    completions: Vec<(SimTime, u64)>,
    /// Time of the last forward progress (good ack or transfer start
    /// from idle) — the baseline for blackout detection/recovery stats.
    last_progress_at: SimTime,
    /// Set at the first RTO of a blackout episode (to the progress
    /// baseline); cleared by the first good ack after it.
    outage_start: Option<SimTime>,
    /// Current run of consecutive RTOs.
    consecutive_timeouts: u64,
    /// Last gain reported via a `Gain` telemetry event (so the trace only
    /// carries changes, not one line per ack).
    last_gain_emitted: f64,
    stats: SenderStats,
}

impl TcpSender {
    /// Creates a sender with the given congestion controller.
    pub fn new(cfg: SenderConfig, cc: impl CongestionControl) -> Self {
        Self::new_boxed(cfg, Box::new(cc))
    }

    /// Creates a sender from an already-boxed controller (used by config
    /// tables that choose the algorithm at runtime).
    pub fn new_boxed(cfg: SenderConfig, cc: Box<dyn CongestionControl>) -> Self {
        let initial = cfg.initial_cwnd;
        let initial_rto = cfg
            .initial_rto
            .unwrap_or(SimDuration(cfg.min_rto.as_nanos().saturating_mul(10)));
        let rtt = RttEstimator::new(initial_rto, cfg.min_rto, cfg.max_rto);
        let job_idx = cfg.job;
        Self {
            rtt,
            cfg,
            cc,
            window: Window::initial(initial),
            stream_end: 0,
            snd_una: 0,
            snd_nxt: 0,
            transfer_start: 0,
            pending_ends: VecDeque::new(),
            in_recovery: false,
            recover: 0,
            dup_acks: 0,
            resend_below: 0,
            send_times: VecDeque::new(),
            rto_gen: 0,
            rto_armed: false,
            completions: Vec::new(),
            last_progress_at: SimTime::ZERO,
            outage_start: None,
            consecutive_timeouts: 0,
            last_gain_emitted: 1.0,
            stats: SenderStats {
                job: job_idx,
                ..SenderStats::default()
            },
        }
    }

    /// The congestion window (packets), for instrumentation.
    pub fn cwnd(&self) -> f64 {
        self.window.cwnd
    }

    /// Sender counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Completion log: `(completion time, bytes)` per finished transfer.
    pub fn completions(&self) -> &[(SimTime, u64)] {
        &self.completions
    }

    /// Total bytes cumulatively acknowledged.
    pub fn bytes_acked(&self) -> u64 {
        self.snd_una
    }

    /// Whether all requested bytes are acked.
    pub fn is_idle(&self) -> bool {
        self.snd_una == self.stream_end
    }

    /// Downcast access to the congestion controller (e.g. to read an
    /// [`crate::cc::mltcp::Mltcp`]'s `bytes_ratio`).
    pub fn cc_as<C: CongestionControl>(&self) -> Option<&C> {
        let any: &dyn std::any::Any = self.cc.as_ref();
        any.downcast_ref::<C>()
    }

    fn inflight_packets(&self) -> f64 {
        ((self.snd_nxt - self.snd_una) as f64) / f64::from(self.cfg.mss)
    }

    fn priority_for(&self, seq: u64) -> u64 {
        match &self.cfg.priority {
            PriorityPolicy::None => 0,
            PriorityPolicy::RemainingBytes => self.stream_end.saturating_sub(self.snd_una),
            PriorityPolicy::Pias { thresholds } => {
                let sent = seq.saturating_sub(self.transfer_start);
                thresholds.iter().filter(|&&t| sent >= t).count() as u64
            }
        }
    }

    fn make_segment(&self, me: NodeId, seq: u64, len: u32) -> Packet {
        let mut pkt = Packet::data(self.cfg.flow, me, self.cfg.dst, seq, len)
            .with_priority(self.priority_for(seq));
        if self.cfg.ecn {
            pkt = pkt.with_ecn(EcnCodepoint::Capable);
        }
        pkt
    }

    /// Emits a `Cwnd` snapshot (telemetry-gated; free when disabled).
    fn emit_cwnd(&self, ctx: &mut AgentCtx<'_>) {
        if ctx.telemetry_enabled() {
            ctx.emit(TelemetryEvent::Cwnd {
                t_ns: ctx.now().as_nanos(),
                flow: self.cfg.flow.0,
                job: self.cfg.job,
                cwnd: self.window.cwnd,
                ssthresh: self.window.ssthresh,
            });
        }
    }

    /// Emits a `Retx` event plus the post-response window snapshot.
    fn emit_retx(&self, ctx: &mut AgentCtx<'_>, kind: RetxKind, count: u64) {
        if ctx.telemetry_enabled() {
            ctx.emit(TelemetryEvent::Retx {
                t_ns: ctx.now().as_nanos(),
                flow: self.cfg.flow.0,
                job: self.cfg.job,
                kind,
                count: u32::try_from(count).unwrap_or(u32::MAX),
            });
        }
        self.emit_cwnd(ctx);
    }

    fn arm_rto(&mut self, ctx: &mut AgentCtx<'_>) {
        self.rto_gen += 1;
        self.rto_armed = true;
        let rto = self.rtt.rto();
        ctx.set_timer(rto, self.rto_gen);
    }

    fn disarm_rto(&mut self) {
        self.rto_gen += 1;
        self.rto_armed = false;
    }

    fn transmit_new(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.node();
        let cwnd_pkts = self.window.cwnd.floor().max(Window::MIN_CWND);
        while self.snd_nxt < self.stream_end {
            if self.inflight_packets() + 1.0 > cwnd_pkts + 1e-9 {
                break;
            }
            let len = u32::try_from((self.stream_end - self.snd_nxt).min(u64::from(self.cfg.mss)))
                .expect("segment fits u32");
            let pkt = self.make_segment(me, self.snd_nxt, len);
            let is_resend = self.snd_nxt < self.resend_below;
            debug_assert!(
                self.send_times
                    .back()
                    .is_none_or(|&(s, _, _)| s < self.snd_nxt),
                "send records must stay seq-ordered"
            );
            self.send_times
                .push_back((self.snd_nxt, ctx.now(), is_resend));
            self.snd_nxt += u64::from(len);
            self.stats.segments_sent += 1;
            if is_resend {
                self.stats.retransmits += 1;
            }
            ctx.send(pkt);
        }
        if !self.rto_armed && self.snd_una < self.snd_nxt {
            self.arm_rto(ctx);
        }
    }

    /// Go-back-N: rewind `snd_nxt` to the cumulative ack point and let
    /// window-paced (re)transmission refill the pipe. The receiver's
    /// reassembly buffer absorbs duplicate segments, and its cumulative
    /// ack jumps forward as soon as the actual holes are filled — so in
    /// practice only the lost prefix is resent before the ack catches up.
    fn go_back_n(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.snd_una >= self.stream_end {
            return;
        }
        self.resend_below = self.resend_below.max(self.snd_nxt);
        self.snd_nxt = self.snd_una;
        // Old send records are stale now.
        self.send_times.clear();
        self.transmit_new(ctx);
    }

    fn on_cumulative_ack(&mut self, ctx: &mut AgentCtx<'_>, cum_ack: u64, ecn_echo: bool) {
        if cum_ack <= self.snd_una {
            // Duplicate ack.
            if self.snd_nxt > self.snd_una {
                self.dup_acks += 1;
                if self.dup_acks == 3 && !self.in_recovery {
                    self.in_recovery = true;
                    self.recover = self.snd_nxt;
                    self.stats.fast_retransmits += 1;
                    self.cc.on_loss(ctx.now(), &mut self.window);
                    self.window.clamp_min();
                    self.go_back_n(ctx);
                    self.arm_rto(ctx);
                    self.emit_retx(ctx, RetxKind::Fast, self.stats.fast_retransmits);
                }
            }
            return;
        }

        let newly = cum_ack - self.snd_una;
        self.dup_acks = 0;

        // Karn's algorithm: sample RTT from the newest fully-acked,
        // never-retransmitted segment. Records are seq-ordered, so the
        // covered prefix drains from the front without allocating.
        let mut sample = None;
        while let Some(&(s, t, retx)) = self.send_times.front() {
            if s >= cum_ack {
                break;
            }
            self.send_times.pop_front();
            if !retx {
                sample = Some(ctx.now() - t);
            }
        }
        if let Some(rtt) = sample {
            self.rtt.on_sample(rtt);
        }

        self.snd_una = cum_ack;
        if self.snd_nxt < self.snd_una {
            self.snd_nxt = self.snd_una;
        }

        if self.in_recovery && cum_ack >= self.recover {
            self.in_recovery = false;
        }

        // Blackout bookkeeping: this good ack ends any RTO episode.
        let after_timeout = self.outage_start.is_some();
        if let Some(start) = self.outage_start.take() {
            self.stats.last_blackout_recovery = ctx.now() - start;
            self.consecutive_timeouts = 0;
        }
        self.last_progress_at = ctx.now();

        let ev = AckEvent {
            now: ctx.now(),
            newly_acked_bytes: newly,
            newly_acked_packets: newly as f64 / f64::from(self.cfg.mss),
            rtt: sample,
            ecn_echo,
            in_recovery: self.in_recovery,
            after_timeout,
        };
        self.cc.on_ack(&ev, &mut self.window);
        self.window.clamp_min();

        if ctx.telemetry_enabled() {
            if let Some(rtt) = sample {
                ctx.emit(TelemetryEvent::Rtt {
                    t_ns: ctx.now().as_nanos(),
                    flow: self.cfg.flow.0,
                    job: self.cfg.job,
                    rtt_ns: rtt.as_nanos(),
                });
            }
            if let Some((gain, ratio)) = self.cc.gain_state() {
                if gain != self.last_gain_emitted {
                    self.last_gain_emitted = gain;
                    ctx.emit(TelemetryEvent::Gain {
                        t_ns: ctx.now().as_nanos(),
                        flow: self.cfg.flow.0,
                        job: self.cfg.job,
                        gain,
                        bytes_ratio: ratio,
                    });
                }
            }
            self.emit_cwnd(ctx);
        }

        // Completion notifications for every boundary crossed.
        while let Some(&end) = self.pending_ends.front() {
            if self.snd_una < end {
                break;
            }
            self.pending_ends.pop_front();
            self.stats.transfers_completed += 1;
            let bytes = end - self.transfer_start;
            self.completions.push((ctx.now(), bytes));
            if let Some(driver) = self.cfg.driver {
                ctx.send_message(driver, proto::encode(Msg::TransferComplete { bytes }));
            }
        }

        if self.snd_una == self.stream_end && self.snd_una == self.snd_nxt {
            self.disarm_rto();
        } else {
            self.arm_rto(ctx);
        }
        self.transmit_new(ctx);
    }

    fn start_transfer(&mut self, ctx: &mut AgentCtx<'_>, bytes: u64) {
        if bytes == 0 {
            // Degenerate transfer: complete immediately.
            if let Some(driver) = self.cfg.driver {
                ctx.send_message(driver, proto::encode(Msg::TransferComplete { bytes: 0 }));
            }
            return;
        }
        if self.is_idle() {
            // Starting from idle is forward progress: an idle gap before
            // this transfer is not part of any blackout.
            self.last_progress_at = ctx.now();
        }
        self.transfer_start = self.stream_end;
        self.stream_end += bytes;
        self.pending_ends.push_back(self.stream_end);
        if self.cfg.slow_start_restart {
            // Linux's slow-start-after-idle: the congestion window
            // collapses back to the initial window, but ssthresh is
            // preserved — the path's learned capacity estimate survives,
            // so the restart ramp exits slow start before re-overshooting.
            self.window.cwnd = self.cfg.initial_cwnd.max(Window::MIN_CWND);
        }
        self.cc.on_transfer_start(ctx.now());
        self.transmit_new(ctx);
    }
}

impl Agent for TcpSender {
    fn on_packet(&mut self, ctx: &mut AgentCtx<'_>, pkt: Packet) {
        if let SegmentHeader::Ack { cum_ack, ecn_echo } = pkt.header {
            self.on_cumulative_ack(ctx, cum_ack, ecn_echo);
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        if token != self.rto_gen || !self.rto_armed {
            return; // stale timer
        }
        if self.snd_una >= self.stream_end {
            self.rto_armed = false;
            return;
        }
        // Retransmission timeout: collapse the window and go-back-N.
        self.stats.timeouts += 1;
        self.consecutive_timeouts += 1;
        self.stats.max_consecutive_timeouts = self
            .stats
            .max_consecutive_timeouts
            .max(self.consecutive_timeouts);
        if self.outage_start.is_none() {
            self.outage_start = Some(self.last_progress_at);
            self.stats.blackouts += 1;
            self.stats.last_blackout_detect = ctx.now() - self.last_progress_at;
        }
        self.rtt.on_timeout();
        self.in_recovery = false;
        self.dup_acks = 0;
        self.cc.on_timeout(ctx.now(), &mut self.window);
        self.window.clamp_min();
        self.go_back_n(ctx);
        self.arm_rto(ctx);
        self.emit_retx(ctx, RetxKind::Rto, self.consecutive_timeouts);
    }

    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, token: u64) {
        if let Some(Msg::StartTransfer { bytes }) = proto::decode(token) {
            self.start_transfer(ctx, bytes);
        }
    }
}
