//! A Swift-style delay-based congestion controller (Kumar et al.,
//! SIGCOMM '20 — cited by the paper's related work as one of the CC
//! families MLTCP can augment).
//!
//! The sender compares each RTT sample against a fixed target delay:
//! below target it grows additively (the MLTCP-scaled term), above
//! target it backs off multiplicatively in proportion to the excess,
//! clamped like Swift's `max_mdf`. Delay-based control never needs
//! drops, so it pairs naturally with shallow buffers — and it
//! demonstrates that the MLTCP augmentation (which only scales the
//! *increase* step) composes with a base algorithm whose decrease isn't
//! loss-triggered at all.

use super::{AckEvent, CongestionControl, Window};
use mltcp_netsim::time::{SimDuration, SimTime};

/// Maximum multiplicative decrease factor per RTT (Swift's `max_mdf`).
const MAX_MDF: f64 = 0.5;
/// Additive increase per RTT when below target (packets).
const AI: f64 = 1.0;

/// Swift-like delay-based congestion control.
#[derive(Debug, Clone)]
pub struct Swift {
    target: SimDuration,
    /// Last time we applied a multiplicative decrease (at most one per
    /// RTT, like Swift).
    last_decrease: SimTime,
}

impl Swift {
    /// Creates a controller targeting the given queueing-inclusive RTT.
    /// Pick ~1.5–3× the base (unloaded) RTT of the path.
    pub fn new(target: SimDuration) -> Self {
        Self {
            target,
            last_decrease: SimTime::ZERO,
        }
    }

    /// The configured target delay.
    pub fn target(&self) -> SimDuration {
        self.target
    }
}

impl CongestionControl for Swift {
    fn on_ack(&mut self, ev: &AckEvent, w: &mut Window) {
        if ev.in_recovery {
            return;
        }
        let Some(rtt) = ev.rtt else {
            return;
        };
        if rtt <= self.target {
            if w.in_slow_start() {
                w.cwnd = (w.cwnd + ev.newly_acked_packets).min(w.ssthresh.max(w.cwnd));
            } else {
                // Additive increase — the term the MLTCP wrapper scales.
                w.cwnd += AI * ev.newly_acked_packets / w.cwnd;
            }
        } else {
            // At most one multiplicative decrease per RTT.
            let since = ev.now - self.last_decrease;
            if since.as_nanos() >= rtt.as_nanos() {
                let excess = (rtt.as_secs_f64() - self.target.as_secs_f64()) / rtt.as_secs_f64();
                let mdf = excess.clamp(0.0, MAX_MDF);
                w.ssthresh = (w.cwnd * (1.0 - mdf)).max(Window::MIN_CWND);
                w.cwnd = w.ssthresh;
                w.clamp_min();
                self.last_decrease = ev.now;
            }
        }
    }

    fn on_loss(&mut self, now: SimTime, w: &mut Window) {
        // Loss is rare for a delay-based controller but still halves.
        w.ssthresh = (w.cwnd / 2.0).max(Window::MIN_CWND);
        w.cwnd = w.ssthresh;
        w.clamp_min();
        self.last_decrease = now;
    }

    fn on_timeout(&mut self, now: SimTime, w: &mut Window) {
        w.ssthresh = (w.cwnd / 2.0).max(Window::MIN_CWND);
        w.cwnd = Window::MIN_CWND;
        self.last_decrease = now;
    }

    fn name(&self) -> &'static str {
        "swift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_us: u64, rtt_us: u64, pkts: f64) -> AckEvent {
        AckEvent {
            now: SimTime(now_us * 1_000),
            newly_acked_bytes: (pkts * 1500.0) as u64,
            newly_acked_packets: pkts,
            rtt: Some(SimDuration::micros(rtt_us)),
            ecn_echo: false,
            in_recovery: false,
            after_timeout: false,
        }
    }

    #[test]
    fn grows_below_target() {
        let mut s = Swift::new(SimDuration::micros(100));
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        let before = w.cwnd;
        for i in 0..10 {
            s.on_ack(&ack(i * 100, 50, 1.0), &mut w);
        }
        assert!((w.cwnd - before - 1.0).abs() < 0.05, "cwnd={}", w.cwnd);
    }

    #[test]
    fn backs_off_above_target_proportionally() {
        let mut s = Swift::new(SimDuration::micros(100));
        let mut w = Window::initial(100.0);
        w.ssthresh = 50.0;
        w.cwnd = 100.0;
        // RTT 200 µs = 2× target → excess 0.5, clamped to MAX_MDF.
        s.on_ack(&ack(1_000, 200, 1.0), &mut w);
        assert!((w.cwnd - 50.0).abs() < 1e-9, "cwnd={}", w.cwnd);
    }

    #[test]
    fn at_most_one_decrease_per_rtt() {
        let mut s = Swift::new(SimDuration::micros(100));
        let mut w = Window::initial(100.0);
        w.ssthresh = 50.0;
        w.cwnd = 100.0;
        s.on_ack(&ack(1_000, 200, 1.0), &mut w);
        let after_first = w.cwnd;
        // 50 µs later (within the same RTT): no further decrease.
        s.on_ack(&ack(1_050, 200, 1.0), &mut w);
        assert_eq!(w.cwnd, after_first);
        // A full RTT later: another decrease applies.
        s.on_ack(&ack(1_250, 200, 1.0), &mut w);
        assert!(w.cwnd < after_first);
    }

    #[test]
    fn slow_start_until_first_over_target() {
        let mut s = Swift::new(SimDuration::micros(100));
        let mut w = Window::initial(10.0);
        s.on_ack(&ack(0, 50, 10.0), &mut w);
        assert_eq!(w.cwnd, 20.0);
    }

    #[test]
    fn mild_excess_gives_mild_decrease() {
        let mut s = Swift::new(SimDuration::micros(100));
        let mut w = Window::initial(100.0);
        w.ssthresh = 50.0;
        w.cwnd = 100.0;
        // RTT 110 µs: excess ≈ 9.1% → cwnd ≈ 90.9.
        s.on_ack(&ack(1_000, 110, 1.0), &mut w);
        assert!(
            (w.cwnd - 100.0 * (1.0 - 10.0 / 110.0)).abs() < 1e-6,
            "cwnd={}",
            w.cwnd
        );
    }

    #[test]
    fn loss_and_timeout_still_work() {
        let mut s = Swift::new(SimDuration::micros(100));
        let mut w = Window::initial(40.0);
        s.on_loss(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, 20.0);
        s.on_timeout(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, Window::MIN_CWND);
    }

    #[test]
    fn mltcp_wrapper_scales_swift_increase() {
        use crate::cc::{Mltcp, MltcpConfig};
        use mltcp_core::aggressiveness::Linear;
        let mut m = Mltcp::new(
            Swift::new(SimDuration::micros(100)),
            Linear::paper_default(),
            MltcpConfig::oracle(150_000, SimDuration::millis(10)),
        );
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        // Deliver 50% of the iteration, below-target RTTs throughout.
        let mut now = 0u64;
        for _ in 0..50 {
            m.on_ack(&ack(now, 50, 1.0), &mut w);
            now += 100;
        }
        assert!((m.bytes_ratio() - 0.5).abs() < 1e-9);
        // Next increment is scaled by F(0.5) ≈ 1.125.
        let before = w.cwnd;
        m.on_ack(&ack(now, 50, 1.0), &mut w);
        let gain = (w.cwnd - before) * before;
        let f = 1.75 * (51.0 * 1500.0 / 150_000.0) + 0.25;
        assert!((gain - f).abs() < 1e-6, "gain={gain} f={f}");
    }
}
