//! Pluggable congestion control, shaped after Linux's
//! `tcp_congestion_ops`.
//!
//! The sender drives one [`CongestionControl`] implementation through
//! three hooks: [`CongestionControl::on_ack`] for every cumulative ack
//! that advances `snd_una`, [`CongestionControl::on_loss`] when fast
//! retransmit infers a loss (triple duplicate ack), and
//! [`CongestionControl::on_timeout`] when the RTO fires. The algorithm
//! mutates the shared [`Window`] (cwnd/ssthresh, in packets, fractional —
//! the Linux `snd_cwnd` + `snd_cwnd_cnt` pair collapsed into one `f64`,
//! which is exactly the form of paper Eq. 1).

pub mod cubic;
pub mod dctcp;
pub mod mltcp;
pub mod reno;
pub mod swift;

pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use mltcp::{Mltcp, MltcpConfig};
pub use reno::Reno;
pub use swift::Swift;

use mltcp_netsim::time::{SimDuration, SimTime};

/// The congestion window and slow-start threshold, in packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Congestion window in packets (fractional; the sender floors it
    /// when deciding how many segments may be in flight).
    pub cwnd: f64,
    /// Slow-start threshold in packets.
    pub ssthresh: f64,
}

impl Window {
    /// The minimum congestion window (packets). Loss responses never go
    /// below this, so every flow keeps a non-zero share — the §5
    /// non-starvation property.
    pub const MIN_CWND: f64 = 1.0;

    /// A fresh window: `initial` packets of cwnd, "infinite" ssthresh.
    pub fn initial(initial: f64) -> Self {
        Self {
            cwnd: initial.max(Self::MIN_CWND),
            ssthresh: f64::INFINITY,
        }
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Clamps cwnd to at least [`Window::MIN_CWND`].
    pub fn clamp_min(&mut self) {
        if self.cwnd < Self::MIN_CWND {
            self.cwnd = Self::MIN_CWND;
        }
    }
}

/// One cumulative-ack observation, as seen by the congestion controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckEvent {
    /// Arrival time of the ack.
    pub now: SimTime,
    /// Bytes newly acknowledged by this ack.
    pub newly_acked_bytes: u64,
    /// Newly acknowledged packets (fractional; `newly_acked_bytes / mss`).
    /// This is `#num_acks` in paper Eq. 1.
    pub newly_acked_packets: f64,
    /// RTT sample attached to this ack, when Karn's algorithm allows one.
    pub rtt: Option<SimDuration>,
    /// The receiver echoed a CE mark for the acked segment (DCTCP).
    pub ecn_echo: bool,
    /// The sender is currently in fast recovery (window growth is
    /// typically suppressed).
    pub in_recovery: bool,
    /// This is the first good (snd_una-advancing) ack after ≥ 1
    /// retransmission timeouts — the silence preceding it was a loss
    /// blackout, not application idleness. MLTCP's iteration tracker uses
    /// this to avoid misreading an RTO gap as an iteration boundary.
    pub after_timeout: bool,
}

/// A congestion control algorithm.
///
/// The `Any` supertrait lets harness code downcast a boxed controller to
/// read algorithm-specific instrumentation (e.g. MLTCP's `bytes_ratio`).
pub trait CongestionControl: std::fmt::Debug + Send + std::any::Any {
    /// Processes a cumulative ack that advanced `snd_una`.
    fn on_ack(&mut self, ev: &AckEvent, w: &mut Window);

    /// A loss was inferred via fast retransmit (3 duplicate acks).
    /// Standard behaviour: multiplicative decrease + enter recovery.
    fn on_loss(&mut self, now: SimTime, w: &mut Window);

    /// The retransmission timer fired: collapse to minimum window and
    /// re-enter slow start.
    fn on_timeout(&mut self, now: SimTime, w: &mut Window);

    /// A transfer (training-iteration burst) begins; algorithms that keep
    /// per-burst state (e.g. DCTCP's marked-fraction window, MLTCP's
    /// bytes counter in oracle-free mode) may reset here. Default: no-op.
    fn on_transfer_start(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Native aggressiveness hook for the MLTCP augmentation.
    ///
    /// The [`Mltcp`] wrapper calls this with `F(bytes_ratio)` before each
    /// ack. An algorithm whose growth is *target-tracking* rather than
    /// increment-accumulative (CUBIC: the window chases a time-driven
    /// target, so scaling one ack's increment is undone by the next ack)
    /// should consume the gain natively — fold it into its growth-rate
    /// constant — and return `true`; the wrapper then skips its generic
    /// post-hoc increment scaling. Default: not consumed (`false`), which
    /// selects the generic Eq. 1 scaling that is exact for additive
    /// algorithms like Reno and DCTCP.
    fn set_gain(&mut self, gain: f64) -> bool {
        let _ = gain;
        false
    }

    /// The algorithm's current `(gain, bytes_ratio)` pair, for telemetry.
    ///
    /// Plain algorithms have no gain concept and return `None` (the
    /// default); the [`Mltcp`] wrapper reports its most recently applied
    /// `F(bytes_ratio)`. The sender emits a `Gain` telemetry event
    /// whenever this value changes.
    fn gain_state(&self) -> Option<(f64, f64)> {
        None
    }

    /// Algorithm name for logs and experiment tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_initial_and_clamp() {
        let w = Window::initial(10.0);
        assert_eq!(w.cwnd, 10.0);
        assert!(w.in_slow_start());
        let mut w2 = Window::initial(0.1);
        assert_eq!(w2.cwnd, Window::MIN_CWND);
        w2.cwnd = 0.0;
        w2.clamp_min();
        assert_eq!(w2.cwnd, Window::MIN_CWND);
    }

    #[test]
    fn slow_start_predicate() {
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        assert!(!w.in_slow_start());
        w.cwnd = 4.0;
        assert!(w.in_slow_start());
    }
}
