//! TCP Reno — the classic AIMD algorithm the paper augments.
//!
//! Slow start doubles the window per RTT (`cwnd += 1` per acked packet);
//! congestion avoidance adds `#num_acks / cwnd` per cumulative ack —
//! exactly the term paper Eq. 1 scales by `F(bytes_ratio)`. Fast
//! retransmit halves the window; a timeout collapses it to one packet.

use super::{AckEvent, CongestionControl, Window};
use mltcp_netsim::time::SimTime;

/// Reno congestion control.
#[derive(Debug, Clone, Default)]
pub struct Reno {
    _private: (),
}

impl Reno {
    /// A fresh Reno instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, ev: &AckEvent, w: &mut Window) {
        if ev.in_recovery {
            return;
        }
        if w.in_slow_start() {
            // Exponential growth, capped at ssthresh.
            w.cwnd = (w.cwnd + ev.newly_acked_packets).min(w.ssthresh.max(w.cwnd));
        } else {
            // Additive increase: cwnd += num_acks / cwnd (Eq. 1 with F ≡ 1).
            w.cwnd += ev.newly_acked_packets / w.cwnd;
        }
    }

    fn on_loss(&mut self, _now: SimTime, w: &mut Window) {
        w.ssthresh = (w.cwnd / 2.0).max(Window::MIN_CWND);
        w.cwnd = w.ssthresh;
        w.clamp_min();
    }

    fn on_timeout(&mut self, _now: SimTime, w: &mut Window) {
        w.ssthresh = (w.cwnd / 2.0).max(Window::MIN_CWND);
        w.cwnd = Window::MIN_CWND;
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltcp_netsim::time::SimDuration;

    fn ack(pkts: f64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO,
            newly_acked_bytes: (pkts * 1500.0) as u64,
            newly_acked_packets: pkts,
            rtt: Some(SimDuration::micros(100)),
            ecn_echo: false,
            in_recovery: false,
            after_timeout: false,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new();
        let mut w = Window::initial(10.0);
        // One RTT's worth of acks: 10 packets acked → cwnd 20.
        r.on_ack(&ack(10.0), &mut w);
        assert_eq!(w.cwnd, 20.0);
    }

    #[test]
    fn slow_start_caps_at_ssthresh() {
        let mut r = Reno::new();
        let mut w = Window::initial(10.0);
        w.ssthresh = 12.0;
        r.on_ack(&ack(10.0), &mut w);
        assert_eq!(w.cwnd, 12.0);
    }

    #[test]
    fn congestion_avoidance_is_one_packet_per_rtt() {
        let mut r = Reno::new();
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0; // force CA
        let before = w.cwnd;
        // cwnd worth of acks → +1 packet total.
        for _ in 0..10 {
            r.on_ack(&ack(1.0), &mut w);
        }
        assert!((w.cwnd - before - 1.0).abs() < 0.05, "cwnd={}", w.cwnd);
    }

    #[test]
    fn loss_halves_window() {
        let mut r = Reno::new();
        let mut w = Window::initial(32.0);
        w.ssthresh = 5.0;
        w.cwnd = 32.0;
        r.on_loss(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, 16.0);
        assert_eq!(w.ssthresh, 16.0);
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut r = Reno::new();
        let mut w = Window::initial(32.0);
        r.on_timeout(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, Window::MIN_CWND);
        assert_eq!(w.ssthresh, 16.0);
        assert!(w.in_slow_start());
    }

    #[test]
    fn loss_never_goes_below_min() {
        let mut r = Reno::new();
        let mut w = Window::initial(1.0);
        r.on_loss(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, Window::MIN_CWND);
    }

    #[test]
    fn recovery_freezes_growth() {
        let mut r = Reno::new();
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        let mut ev = ack(1.0);
        ev.in_recovery = true;
        let before = w.cwnd;
        r.on_ack(&ev, &mut w);
        assert_eq!(w.cwnd, before);
    }
}
