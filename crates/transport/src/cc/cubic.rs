//! CUBIC congestion control (RFC 9438, simplified).
//!
//! The paper notes (§6) that "other congestion control schemes are
//! augmented in a similar way" to Reno; we provide CUBIC so the
//! repository can demonstrate MLTCP-CUBIC as an ablation. The window
//! grows along `W(t) = C·(t − K)³ + W_max` between loss events, with the
//! usual TCP-friendly (Reno-tracking) lower bound.
//!
//! Because that growth chases a time-driven *target* (scaling one ack's
//! increment is undone by the next ack's larger `target − cwnd` gap),
//! the MLTCP augmentation is consumed natively here: the per-ack gain
//! `F(bytes_ratio)` scales the constant `C` and the TCP-friendly
//! increment, making the whole curve steeper or shallower. See
//! [`CongestionControl::set_gain`].

use super::{AckEvent, CongestionControl, Window};
use mltcp_netsim::time::SimTime;

/// The CUBIC scaling constant (RFC 9438 recommends 0.4).
const C: f64 = 0.4;
/// Multiplicative decrease factor (RFC 9438: 0.7).
const BETA: f64 = 0.7;

/// CUBIC congestion control.
#[derive(Debug, Clone)]
pub struct Cubic {
    w_max: f64,
    epoch_start: Option<SimTime>,
    k: f64,
    /// Reno-emulation window for the TCP-friendly region.
    w_est: f64,
    /// MLTCP aggressiveness gain (1.0 = plain CUBIC). Because CUBIC
    /// chases a time-driven target, the gain is folded into the scaling
    /// constant `C` (steeper/shallower cubic) and the TCP-friendly
    /// Reno-emulation increment, not into individual ack increments —
    /// see [`CongestionControl::set_gain`].
    gain: f64,
}

impl Cubic {
    /// A fresh CUBIC instance.
    pub fn new() -> Self {
        Self {
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            gain: 1.0,
        }
    }

    /// The effective cubic scaling constant under the current gain.
    fn c(&self) -> f64 {
        C * self.gain
    }

    fn begin_epoch(&mut self, now: SimTime, w: &Window) {
        self.epoch_start = Some(now);
        if w.cwnd < self.w_max {
            self.k = ((self.w_max - w.cwnd) / self.c()).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = w.cwnd;
        }
        self.w_est = w.cwnd;
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, ev: &AckEvent, w: &mut Window) {
        if ev.in_recovery {
            return;
        }
        if w.in_slow_start() {
            w.cwnd = (w.cwnd + ev.newly_acked_packets).min(w.ssthresh.max(w.cwnd));
            return;
        }
        if self.epoch_start.is_none() {
            self.begin_epoch(ev.now, w);
        }
        let t = (ev.now - self.epoch_start.expect("epoch set above")).as_secs_f64();
        let target = self.c() * (t - self.k).powi(3) + self.w_max;
        // TCP-friendly region: emulate Reno's 1 packet/RTT growth (gain-
        // scaled, matching the generic Eq. 1 augmentation of Reno).
        self.w_est += self.gain * ev.newly_acked_packets / w.cwnd;
        let target = target.max(self.w_est);
        if target > w.cwnd {
            // Linux-style: approach the target over roughly one RTT.
            w.cwnd += (target - w.cwnd) / w.cwnd * ev.newly_acked_packets;
        } else {
            // Minimal growth to stay responsive.
            w.cwnd += 0.01 * ev.newly_acked_packets / w.cwnd;
        }
    }

    fn on_loss(&mut self, _now: SimTime, w: &mut Window) {
        self.w_max = w.cwnd;
        w.ssthresh = (w.cwnd * BETA).max(Window::MIN_CWND);
        w.cwnd = w.ssthresh;
        w.clamp_min();
        self.epoch_start = None;
    }

    fn on_timeout(&mut self, _now: SimTime, w: &mut Window) {
        self.w_max = w.cwnd;
        w.ssthresh = (w.cwnd * BETA).max(Window::MIN_CWND);
        w.cwnd = Window::MIN_CWND;
        self.epoch_start = None;
    }

    fn set_gain(&mut self, gain: f64) -> bool {
        self.gain = gain;
        true
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltcp_netsim::time::SimDuration;

    fn ack_at(now: SimTime, pkts: f64) -> AckEvent {
        AckEvent {
            now,
            newly_acked_bytes: (pkts * 1500.0) as u64,
            newly_acked_packets: pkts,
            rtt: Some(SimDuration::micros(100)),
            ecn_echo: false,
            in_recovery: false,
            after_timeout: false,
        }
    }

    #[test]
    fn slow_start_like_reno() {
        let mut c = Cubic::new();
        let mut w = Window::initial(10.0);
        c.on_ack(&ack_at(SimTime::ZERO, 10.0), &mut w);
        assert_eq!(w.cwnd, 20.0);
    }

    #[test]
    fn concave_recovery_toward_wmax() {
        let mut c = Cubic::new();
        let mut w = Window::initial(100.0);
        w.ssthresh = 100.0;
        w.cwnd = 100.0;
        c.on_loss(SimTime::ZERO, &mut w);
        let after_loss = w.cwnd;
        assert!((after_loss - 70.0).abs() < 1e-9);
        // Feed acks over simulated time; the window should climb back
        // toward w_max = 100 but not wildly past it quickly.
        let mut now = SimTime::ZERO;
        for _ in 0..2000 {
            now += SimDuration::millis(1);
            c.on_ack(&ack_at(now, 1.0), &mut w);
        }
        assert!(w.cwnd > after_loss);
        assert!(w.cwnd > 95.0, "cwnd={} should approach w_max", w.cwnd);
    }

    #[test]
    fn growth_accelerates_past_wmax() {
        let mut c = Cubic::new();
        let mut w = Window::initial(50.0);
        w.ssthresh = 50.0;
        w.cwnd = 50.0;
        c.on_loss(SimTime::ZERO, &mut w);
        // Long time: convex region should push well past the old w_max.
        let mut now = SimTime::ZERO;
        for _ in 0..20_000 {
            now += SimDuration::millis(1);
            c.on_ack(&ack_at(now, 1.0), &mut w);
        }
        assert!(w.cwnd > 60.0, "cwnd={}", w.cwnd);
    }

    #[test]
    fn timeout_collapses() {
        let mut c = Cubic::new();
        let mut w = Window::initial(64.0);
        c.on_timeout(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, Window::MIN_CWND);
        assert!(w.in_slow_start());
    }

    #[test]
    fn recovery_freezes_growth() {
        let mut c = Cubic::new();
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        let mut ev = ack_at(SimTime::ZERO, 1.0);
        ev.in_recovery = true;
        let before = w.cwnd;
        c.on_ack(&ev, &mut w);
        assert_eq!(w.cwnd, before);
    }
}
