//! DCTCP (Alizadeh et al., SIGCOMM '10), simplified to per-ack ECN echo.
//!
//! The receiver echoes each segment's CE mark on its ack; the sender
//! maintains `α`, an EWMA of the marked fraction per window, and on each
//! window with marks reduces `cwnd ← cwnd·(1 − α/2)`. Additive increase
//! matches Reno's, which is the term MLTCP-DCTCP scales. Requires
//! ECN-marking queues ([`mltcp_netsim::queue::QueueKind::EcnDropTail`]).

use super::{AckEvent, CongestionControl, Window};
use mltcp_netsim::time::SimTime;

/// EWMA gain for the marked fraction (DCTCP paper: g = 1/16).
const G: f64 = 1.0 / 16.0;

/// DCTCP congestion control.
#[derive(Debug, Clone)]
pub struct Dctcp {
    /// EWMA of the fraction of marked bytes per observation window.
    alpha: f64,
    /// Bytes acked in the current observation window.
    acked_bytes: u64,
    /// Marked bytes acked in the current observation window.
    marked_bytes: u64,
    /// End of the current observation window (bytes of `snd_una` growth).
    window_bytes: u64,
    /// Whether we already cut within this observation window.
    cut_this_window: bool,
}

impl Dctcp {
    /// A fresh DCTCP instance; `alpha` starts at 1 (conservative, per the
    /// paper's deployment guidance).
    pub fn new() -> Self {
        Self {
            alpha: 1.0,
            acked_bytes: 0,
            marked_bytes: 0,
            window_bytes: 0,
            cut_this_window: false,
        }
    }

    /// The current marked-fraction estimate `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Dctcp {
    fn on_ack(&mut self, ev: &AckEvent, w: &mut Window) {
        self.acked_bytes += ev.newly_acked_bytes;
        if ev.ecn_echo {
            self.marked_bytes += ev.newly_acked_bytes;
        }
        // One observation window ≈ one cwnd of bytes.
        if self.window_bytes == 0 {
            self.window_bytes = ((w.cwnd.max(1.0)) * 1500.0) as u64;
        }
        if self.acked_bytes >= self.window_bytes {
            let frac = self.marked_bytes as f64 / self.acked_bytes as f64;
            self.alpha = (1.0 - G) * self.alpha + G * frac;
            if self.marked_bytes > 0 {
                // DCTCP's gentle multiplicative decrease.
                w.ssthresh = (w.cwnd * (1.0 - self.alpha / 2.0)).max(Window::MIN_CWND);
                w.cwnd = w.ssthresh;
            }
            self.acked_bytes = 0;
            self.marked_bytes = 0;
            self.window_bytes = ((w.cwnd.max(1.0)) * 1500.0) as u64;
            self.cut_this_window = false;
        }
        if ev.in_recovery {
            return;
        }
        if w.in_slow_start() {
            if ev.ecn_echo {
                // Leave slow start on the first mark.
                w.ssthresh = w.cwnd;
            } else {
                w.cwnd = (w.cwnd + ev.newly_acked_packets).min(w.ssthresh.max(w.cwnd));
            }
        } else if !ev.ecn_echo {
            // Reno-style additive increase between marks (the MLTCP-scaled
            // term).
            w.cwnd += ev.newly_acked_packets / w.cwnd;
        }
    }

    fn on_loss(&mut self, _now: SimTime, w: &mut Window) {
        // Real packet loss still halves, as in the DCTCP paper.
        w.ssthresh = (w.cwnd / 2.0).max(Window::MIN_CWND);
        w.cwnd = w.ssthresh;
        w.clamp_min();
    }

    fn on_timeout(&mut self, _now: SimTime, w: &mut Window) {
        w.ssthresh = (w.cwnd / 2.0).max(Window::MIN_CWND);
        w.cwnd = Window::MIN_CWND;
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltcp_netsim::time::SimDuration;

    fn ack(pkts: f64, ecn: bool) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO,
            newly_acked_bytes: (pkts * 1500.0) as u64,
            newly_acked_packets: pkts,
            rtt: Some(SimDuration::micros(100)),
            ecn_echo: ecn,
            in_recovery: false,
            after_timeout: false,
        }
    }

    #[test]
    fn unmarked_traffic_decays_alpha_and_grows_like_reno() {
        let mut d = Dctcp::new();
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        for _ in 0..5000 {
            d.on_ack(&ack(1.0, false), &mut w);
        }
        assert!(d.alpha() < 0.1, "alpha={} should decay", d.alpha());
        assert!(w.cwnd > 10.0);
    }

    #[test]
    fn fully_marked_traffic_halves_per_window() {
        let mut d = Dctcp::new();
        let mut w = Window::initial(100.0);
        w.ssthresh = 50.0;
        w.cwnd = 100.0;
        let before = w.cwnd;
        // Push a full window of marked acks.
        for _ in 0..200 {
            d.on_ack(&ack(1.0, true), &mut w);
        }
        // α stays ≈ 1, each window cut ≈ ×(1 − 1/2).
        assert!(w.cwnd < before / 2.0 + 5.0, "cwnd={}", w.cwnd);
        assert!(d.alpha() > 0.9);
    }

    #[test]
    fn partial_marking_gives_gentle_cut() {
        let mut d = Dctcp::new();
        // Decay alpha first with clean traffic.
        let mut w = Window::initial(100.0);
        w.ssthresh = 50.0;
        w.cwnd = 100.0;
        for _ in 0..10_000 {
            d.on_ack(&ack(1.0, false), &mut w);
        }
        let alpha_low = d.alpha();
        assert!(alpha_low < 0.05, "alpha={alpha_low}");
        let before = w.cwnd;
        // 10% marks for one window.
        for i in 0..(before as usize) {
            d.on_ack(&ack(1.0, i % 10 == 0), &mut w);
        }
        // Cut should be much gentler than halving.
        assert!(w.cwnd > before * 0.8, "cwnd={} before={}", w.cwnd, before);
    }

    #[test]
    fn mark_in_slow_start_exits_slow_start() {
        let mut d = Dctcp::new();
        let mut w = Window::initial(10.0);
        assert!(w.in_slow_start());
        d.on_ack(&ack(1.0, true), &mut w);
        assert!(!w.in_slow_start());
    }

    #[test]
    fn loss_and_timeout_behave_like_reno() {
        let mut d = Dctcp::new();
        let mut w = Window::initial(40.0);
        d.on_loss(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, 20.0);
        d.on_timeout(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, Window::MIN_CWND);
    }
}
