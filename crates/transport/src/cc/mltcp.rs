//! The MLTCP augmentation (paper §3, Algorithm 1).
//!
//! [`Mltcp`] wraps *any* base [`CongestionControl`] and scales its
//! congestion-avoidance window increase by the bandwidth aggressiveness
//! function `F(bytes_ratio)`:
//!
//! ```text
//! cwnd ← cwnd + F(bytes_ratio) · Δ_base          (paper Eq. 1, generalized)
//! ```
//!
//! where `Δ_base` is whatever increment the base algorithm would have
//! applied on this ack (`#num_acks / cwnd` for Reno, the between-marks
//! additive increase for DCTCP) and `bytes_ratio` is the fraction of the
//! current training iteration's bytes already delivered, maintained by
//! [`mltcp_core::tracker::IterationTracker`] exactly as Algorithm 1
//! prescribes (ack-gap iteration-boundary detection and all).
//!
//! Target-tracking bases opt out of the post-hoc increment scaling via
//! [`CongestionControl::set_gain`] and fold `F(bytes_ratio)` into their
//! own growth rate instead — CUBIC scales its curve constant `C`, since
//! scaling one ack's increment would just be undone by the next ack's
//! larger target gap.
//!
//! Decrease steps (loss, timeout) are untouched: MLTCP only modulates
//! aggressiveness during window growth, which is what creates the unequal
//! bandwidth sharing that slides jobs apart.
//!
//! `TOTAL_BYTES`/`COMP_TIME` can be supplied (oracle mode — the workload
//! driver knows its job profile) or learned online from the first few
//! iterations with [`mltcp_core::tracker::AutoTuner`], mirroring the
//! paper's "we automatically learn these values". While learning, the
//! flow behaves exactly like its base algorithm (`F ≡ 1`).

use super::{AckEvent, CongestionControl, Window};
use mltcp_core::aggressiveness::Aggressiveness;
use mltcp_core::tracker::{AutoTuner, IterationTracker, TrackerConfig};
use mltcp_netsim::time::{SimDuration, SimTime};

/// Configuration of the MLTCP augmentation.
#[derive(Debug, Clone)]
pub struct MltcpConfig {
    /// `TOTAL_BYTES` per training iteration, if known a priori.
    pub total_bytes: Option<u64>,
    /// `COMP_TIME` ack-gap threshold, if known a priori.
    pub comp_time: Option<SimDuration>,
    /// Minimum silence treated as a compute phase while auto-tuning
    /// (several RTTs).
    pub autotune_min_gap: SimDuration,
    /// Complete iterations to observe before locking in learned values.
    pub autotune_warmup: usize,
    /// Whether to scale slow-start growth too. The paper hooks only the
    /// congestion-avoidance step; default `false`.
    pub scale_slow_start: bool,
    /// Multi-burst gate: when `Some(frac)`, a long ack gap only counts as
    /// an iteration boundary after `frac × TOTAL_BYTES` was delivered
    /// (see [`mltcp_core::tracker::TrackerConfig::oracle_multiburst`]).
    /// `None` reproduces Algorithm 1's pure gap detection.
    pub multiburst_frac: Option<f64>,
}

impl MltcpConfig {
    /// Oracle mode: both job parameters known (the common case when the
    /// workload driver configures its own flows).
    pub fn oracle(total_bytes: u64, comp_time: SimDuration) -> Self {
        Self {
            total_bytes: Some(total_bytes),
            comp_time: Some(comp_time),
            ..Self::autotune()
        }
    }

    /// Learn `TOTAL_BYTES`/`COMP_TIME` online from the ack stream.
    pub fn autotune() -> Self {
        Self {
            total_bytes: None,
            comp_time: None,
            autotune_min_gap: SimDuration::millis(1),
            autotune_warmup: 3,
            scale_slow_start: false,
            multiburst_frac: None,
        }
    }
}

#[derive(Debug)]
enum Mode {
    Learning(AutoTuner),
    Tracking(IterationTracker),
}

/// A base congestion control algorithm augmented with MLTCP.
pub struct Mltcp<C: CongestionControl> {
    inner: C,
    f: Box<dyn Aggressiveness + Send>,
    mode: Mode,
    last_ratio: f64,
    /// The most recently applied gain (1.0 while learning or in
    /// unscaled slow start), reported via `gain_state`.
    last_gain: f64,
    scale_slow_start: bool,
}

impl<C: CongestionControl> std::fmt::Debug for Mltcp<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mltcp")
            .field("inner", &self.inner)
            .field("f", &self.f.name())
            .field("mode", &self.mode)
            .field("last_ratio", &self.last_ratio)
            .finish()
    }
}

impl<C: CongestionControl> Mltcp<C> {
    /// Wraps `inner` with aggressiveness function `f` under `config`.
    pub fn new(inner: C, f: impl Aggressiveness + Send + 'static, config: MltcpConfig) -> Self {
        let mode = match (config.total_bytes, config.comp_time) {
            (Some(tb), Some(ct)) => {
                let tc = match config.multiburst_frac {
                    Some(frac) => TrackerConfig::oracle_multiburst(tb, ct.as_nanos(), frac),
                    None => TrackerConfig::oracle(tb, ct.as_nanos()),
                };
                Mode::Tracking(IterationTracker::new(tc))
            }
            _ => Mode::Learning(AutoTuner::new(
                config.autotune_min_gap.as_nanos(),
                config.autotune_warmup,
            )),
        };
        Self {
            inner,
            f: Box::new(f),
            mode,
            last_ratio: 0.0,
            last_gain: 1.0,
            scale_slow_start: config.scale_slow_start,
        }
    }

    /// Paper defaults: linear `F = 1.75·r + 0.25`, oracle job parameters.
    pub fn paper(inner: C, total_bytes: u64, comp_time: SimDuration) -> Self {
        Self::new(
            inner,
            mltcp_core::aggressiveness::Linear::paper_default(),
            MltcpConfig::oracle(total_bytes, comp_time),
        )
    }

    /// The most recent `bytes_ratio` (for tests and instrumentation).
    pub fn bytes_ratio(&self) -> f64 {
        self.last_ratio
    }

    /// Whether the tracker has locked in job parameters (always true in
    /// oracle mode; true after warmup in autotune mode).
    pub fn is_tracking(&self) -> bool {
        matches!(self.mode, Mode::Tracking(_))
    }

    /// The wrapped base algorithm.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: CongestionControl> CongestionControl for Mltcp<C> {
    fn on_ack(&mut self, ev: &AckEvent, w: &mut Window) {
        // Algorithm 1 bookkeeping: update bytes_sent / bytes_ratio, with
        // iteration-boundary reset on long ack gaps.
        let now_ns = ev.now.as_nanos();
        // `after_timeout` marks the first good ack after an RTO blackout:
        // that silence is loss recovery, not a compute phase, so neither
        // the tracker's boundary detector nor the auto-tuner's burst
        // segmentation may treat it as an iteration gap.
        let ratio = match &mut self.mode {
            Mode::Tracking(tracker) => {
                tracker.on_ack_hinted(now_ns, ev.newly_acked_bytes, ev.after_timeout)
            }
            Mode::Learning(tuner) => {
                if let Some(cfg) =
                    tuner.on_ack_hinted(now_ns, ev.newly_acked_bytes, ev.after_timeout)
                {
                    self.mode = Mode::Tracking(IterationTracker::new(cfg));
                }
                // While learning, behave exactly like the base algorithm.
                self.last_ratio = 0.0;
                self.last_gain = 1.0;
                self.inner.on_ack(ev, w);
                return;
            }
        };
        self.last_ratio = ratio;

        let in_slow_start = w.in_slow_start();
        let gain = if in_slow_start && !self.scale_slow_start {
            1.0
        } else {
            self.f.eval(ratio)
        };
        self.last_gain = gain;
        // Target-tracking bases (CUBIC) consume the gain natively; for
        // the rest, scale the applied increment post hoc (exact Eq. 1
        // for additive algorithms like Reno and DCTCP).
        if self.inner.set_gain(gain) {
            self.inner.on_ack(ev, w);
            return;
        }
        let before = w.cwnd;
        self.inner.on_ack(ev, w);
        let delta = w.cwnd - before;
        if delta > 0.0 && gain != 1.0 {
            w.cwnd = before + gain * delta;
        }
    }

    fn on_loss(&mut self, now: SimTime, w: &mut Window) {
        self.inner.on_loss(now, w);
    }

    fn on_timeout(&mut self, now: SimTime, w: &mut Window) {
        self.inner.on_timeout(now, w);
    }

    fn on_transfer_start(&mut self, now: SimTime) {
        self.inner.on_transfer_start(now);
    }

    fn gain_state(&self) -> Option<(f64, f64)> {
        Some((self.last_gain, self.last_ratio))
    }

    fn name(&self) -> &'static str {
        // Static name for the family; experiment tables carry the base
        // algorithm's name separately when needed.
        "mltcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::reno::Reno;
    use mltcp_core::aggressiveness::{Constant, Linear};

    const MSS: f64 = 1500.0;

    fn ack_at(ns: u64, pkts: f64) -> AckEvent {
        AckEvent {
            now: SimTime(ns),
            newly_acked_bytes: (pkts * MSS) as u64,
            newly_acked_packets: pkts,
            rtt: Some(SimDuration::micros(100)),
            ecn_echo: false,
            in_recovery: false,
            after_timeout: false,
        }
    }

    fn oracle(total: u64) -> MltcpConfig {
        MltcpConfig::oracle(total, SimDuration::millis(100))
    }

    #[test]
    fn matches_eq1_for_reno() {
        // In CA with bytes_ratio r, increment must be F(r) · n/cwnd.
        let total = 150_000; // 100 packets per iteration
        let mut m = Mltcp::new(Reno::new(), Linear::paper_default(), oracle(total));
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0; // CA

        // First ack: 1 packet → bytes_ratio = 1500/150000 = 0.01.
        let before = w.cwnd;
        m.on_ack(&ack_at(0, 1.0), &mut w);
        let f = 1.75 * 0.01 + 0.25;
        assert!((w.cwnd - (before + f * 1.0 / before)).abs() < 1e-12);
        assert!((m.bytes_ratio() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn gain_grows_within_iteration() {
        let total = 15_000; // 10 packets
        let mut m = Mltcp::new(Reno::new(), Linear::paper_default(), oracle(total));
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        let mut increments = vec![];
        for i in 0..10 {
            let before = w.cwnd;
            m.on_ack(&ack_at(i * 1000, 1.0), &mut w);
            increments.push((w.cwnd - before) * before); // ≈ F(r)·n
        }
        // Increments (normalized by cwnd) must be non-decreasing as the
        // flow progresses through its iteration.
        for win in increments.windows(2) {
            assert!(win[1] > win[0] - 1e-9, "{increments:?}");
        }
        assert_eq!(m.bytes_ratio(), 1.0);
    }

    #[test]
    fn iteration_gap_resets_ratio() {
        let total = 15_000;
        let mut m = Mltcp::new(Reno::new(), Linear::paper_default(), oracle(total));
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        for i in 0..10 {
            m.on_ack(&ack_at(i * 1000, 1.0), &mut w);
        }
        assert_eq!(m.bytes_ratio(), 1.0);
        // 200 ms silence > 100 ms COMP_TIME → new iteration.
        m.on_ack(&ack_at(200_000_000, 1.0), &mut w);
        assert!((m.bytes_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rto_blackout_gap_does_not_reset_ratio() {
        let total = 15_000;
        let mut m = Mltcp::new(Reno::new(), Linear::paper_default(), oracle(total));
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        for i in 0..5 {
            m.on_ack(&ack_at(i * 1000, 1.0), &mut w);
        }
        assert!((m.bytes_ratio() - 0.5).abs() < 1e-12);
        // A 300 ms RTO blackout (3× COMP_TIME); the first good ack after
        // it carries the recovery flag and must NOT look like a boundary.
        let mut ev = ack_at(300_000_000, 1.0);
        ev.after_timeout = true;
        m.on_ack(&ev, &mut w);
        assert!((m.bytes_ratio() - 0.6).abs() < 1e-12, "{}", m.bytes_ratio());
        // The same gap unflagged resets — the iteration-boundary detector
        // still works for genuine compute phases.
        m.on_ack(&ack_at(600_000_000, 1.0), &mut w);
        assert!((m.bytes_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn constant_one_equals_plain_base() {
        let mut plain = Reno::new();
        let mut m = Mltcp::new(Reno::new(), Constant(1.0), oracle(150_000));
        let mut w1 = Window::initial(10.0);
        let mut w2 = Window::initial(10.0);
        w1.ssthresh = 5.0;
        w2.ssthresh = 5.0;
        for i in 0..50 {
            plain.on_ack(&ack_at(i * 1000, 1.0), &mut w1);
            m.on_ack(&ack_at(i * 1000, 1.0), &mut w2);
        }
        assert!((w1.cwnd - w2.cwnd).abs() < 1e-9);
    }

    #[test]
    fn slow_start_is_not_scaled_by_default() {
        let mut m = Mltcp::new(Reno::new(), Linear::paper_default(), oracle(150_000));
        let mut w = Window::initial(10.0); // ssthresh ∞ → slow start
        m.on_ack(&ack_at(0, 10.0), &mut w);
        assert_eq!(w.cwnd, 20.0); // pure doubling, no F scaling
    }

    #[test]
    fn decrease_steps_are_untouched() {
        let mut m = Mltcp::new(Reno::new(), Linear::paper_default(), oracle(150_000));
        let mut w = Window::initial(32.0);
        w.ssthresh = 16.0;
        w.cwnd = 32.0;
        m.on_loss(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, 16.0);
        m.on_timeout(SimTime::ZERO, &mut w);
        assert_eq!(w.cwnd, Window::MIN_CWND);
    }

    #[test]
    fn autotune_locks_then_scales() {
        let mut m = Mltcp::new(
            Reno::new(),
            Linear::paper_default(),
            MltcpConfig::autotune(),
        );
        assert!(!m.is_tracking());
        let mut w = Window::initial(10.0);
        w.ssthresh = 5.0;
        let mut now = 0u64;
        // Four bursts of 20 MTU-acks, 100 ms apart.
        for _burst in 0..4 {
            for _ in 0..20 {
                m.on_ack(&ack_at(now, 1.0), &mut w);
                now += 10_000;
            }
            now += 100_000_000;
        }
        assert!(m.is_tracking(), "autotuner should have locked");
        // Now the ratio advances within a burst.
        for _ in 0..10 {
            m.on_ack(&ack_at(now, 1.0), &mut w);
            now += 10_000;
        }
        assert!(m.bytes_ratio() > 0.2, "ratio={}", m.bytes_ratio());
    }

    #[test]
    fn cubic_gain_is_consumed_natively() {
        use crate::cc::cubic::Cubic;
        // With F ≡ 1, MLTCP-CUBIC must equal plain CUBIC bit-for-bit.
        let mut plain = Cubic::new();
        let mut m = Mltcp::new(Cubic::new(), Constant(1.0), oracle(150_000));
        let mut w1 = Window::initial(10.0);
        let mut w2 = Window::initial(10.0);
        w1.ssthresh = 5.0;
        w2.ssthresh = 5.0;
        for i in 0..200 {
            plain.on_ack(&ack_at(i * 100_000, 1.0), &mut w1);
            m.on_ack(&ack_at(i * 100_000, 1.0), &mut w2);
        }
        assert_eq!(w1.cwnd, w2.cwnd);
    }

    #[test]
    fn cubic_higher_gain_grows_faster() {
        use crate::cc::cubic::Cubic;
        // A constant F > 1 must make CUBIC's convex growth strictly
        // faster than F < 1 over the same ack stream — the property the
        // generic increment scaling could NOT deliver for a
        // target-tracking algorithm.
        let run = |f: f64| {
            let mut m = Mltcp::new(Cubic::new(), Constant(f), oracle(150_000_000));
            let mut w = Window::initial(10.0);
            w.ssthresh = 5.0;
            for i in 0..2_000 {
                m.on_ack(&ack_at(i * 1_000_000, 1.0), &mut w);
            }
            w.cwnd
        };
        let slow = run(0.25);
        let fast = run(2.0);
        assert!(
            fast > slow * 1.2,
            "gain must modulate cubic growth: {fast} vs {slow}"
        );
    }

    #[test]
    fn two_flows_unequal_progress_unequal_gain() {
        // The paper's core mechanism: the flow closer to finishing its
        // iteration grows faster.
        let total = 150_000;
        let mk = || Mltcp::new(Reno::new(), Linear::paper_default(), oracle(total));
        let mut ahead = mk();
        let mut behind = mk();
        let mut wa = Window::initial(10.0);
        let mut wb = Window::initial(10.0);
        wa.ssthresh = 5.0;
        wb.ssthresh = 5.0;
        // "ahead" has delivered 80 packets, "behind" 10, before we compare
        // one ack's effect.
        for i in 0..80 {
            ahead.on_ack(&ack_at(i * 1000, 1.0), &mut wa);
        }
        for i in 0..10 {
            behind.on_ack(&ack_at(i * 1000, 1.0), &mut wb);
        }
        let (ca, cb) = (wa.cwnd, wb.cwnd);
        ahead.on_ack(&ack_at(100_000, 1.0), &mut wa);
        behind.on_ack(&ack_at(100_000, 1.0), &mut wb);
        let ga = (wa.cwnd - ca) * ca;
        let gb = (wb.cwnd - cb) * cb;
        assert!(
            ga > gb,
            "flow ahead in its iteration must grow faster: {ga} vs {gb}"
        );
    }
}
