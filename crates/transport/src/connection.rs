//! Convenience wiring of a sender/receiver pair into a simulator.

use crate::cc::CongestionControl;
use crate::receiver::TcpReceiver;
use crate::sender::{SenderConfig, TcpSender};
use mltcp_netsim::node::NodeId;
use mltcp_netsim::packet::FlowId;
use mltcp_netsim::sim::{AgentId, Simulator};

/// The agent ids of an installed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionHandles {
    /// The sender endpoint.
    pub sender: AgentId,
    /// The receiver endpoint.
    pub receiver: AgentId,
    /// The flow id shared by both.
    pub flow: FlowId,
}

/// Installs a one-directional TCP connection `src → dst` with the given
/// congestion controller, binding the flow at both hosts. The returned
/// sender accepts [`crate::proto::Msg::StartTransfer`] messages.
pub fn install_connection(
    sim: &mut Simulator,
    src: NodeId,
    dst: NodeId,
    cfg: SenderConfig,
    cc: impl CongestionControl,
) -> ConnectionHandles {
    assert_eq!(cfg.dst, dst, "config destination must match dst host");
    let flow = cfg.flow;
    let sender = sim.add_agent(src, TcpSender::new(cfg, cc));
    let receiver = sim.add_agent(dst, TcpReceiver::new(flow));
    sim.bind_flow(flow, sender); // acks arrive at src
    sim.bind_flow(flow, receiver); // data arrives at dst
    ConnectionHandles {
        sender,
        receiver,
        flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use mltcp_netsim::prelude::*;

    #[test]
    fn install_binds_both_ends() {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.link(
            h0,
            h1,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(10)),
        );
        let mut sim = Simulator::new(b.build().unwrap(), 0);
        let cfg = SenderConfig::new(FlowId(7), h1);
        let h = install_connection(&mut sim, h0, h1, cfg, Reno::new());
        assert_eq!(h.flow, FlowId(7));
        assert_ne!(h.sender, h.receiver);
    }

    #[test]
    #[should_panic(expected = "destination must match")]
    fn mismatched_destination_panics() {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let h2 = b.host("h2");
        b.link(
            h0,
            h1,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(10)),
        );
        b.link(
            h1,
            h2,
            LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(10)),
        );
        let mut sim = Simulator::new(b.build().unwrap(), 0);
        let cfg = SenderConfig::new(FlowId(7), h2);
        install_connection(&mut sim, h0, h1, cfg, Reno::new());
    }
}
