//! The TCP receiver: cumulative acks over an out-of-order reassembly
//! buffer, with per-packet ECN echo.

use mltcp_netsim::packet::{FlowId, Packet, SegmentHeader};
use mltcp_netsim::sim::{Agent, AgentCtx};
use std::collections::BTreeMap;

/// Receiver endpoint for one flow. Acks every data packet immediately
/// (no delayed acks), echoing the segment's CE mark — the per-packet echo
/// mode DCTCP prefers and the simplest ack clock for Reno.
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    rcv_nxt: u64,
    /// Out-of-order segments: start → length.
    ooo: BTreeMap<u64, u32>,
    /// Total in-order bytes delivered to the "application".
    delivered: u64,
    /// Count of duplicate (already-covered) segments seen.
    dup_segments: u64,
}

impl TcpReceiver {
    /// A fresh receiver for `flow`.
    pub fn new(flow: FlowId) -> Self {
        Self {
            flow,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            delivered: 0,
            dup_segments: 0,
        }
    }

    /// In-order bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Next expected byte offset.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Duplicate segments observed (retransmission overshoot).
    pub fn dup_segments(&self) -> u64 {
        self.dup_segments
    }

    /// Out-of-order segments currently buffered.
    pub fn ooo_segments(&self) -> usize {
        self.ooo.len()
    }

    fn absorb(&mut self, seq: u64, len: u32) {
        let end = seq + u64::from(len);
        if end <= self.rcv_nxt {
            self.dup_segments += 1;
            return;
        }
        if seq <= self.rcv_nxt {
            // Advances the edge (possibly partially duplicate).
            self.rcv_nxt = end;
        } else {
            self.ooo.insert(seq, len);
            return;
        }
        // Drain any now-contiguous buffered segments.
        while let Some((&s, &l)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            let e = s + u64::from(l);
            self.ooo.remove(&s);
            if e > self.rcv_nxt {
                self.rcv_nxt = e;
            }
        }
    }
}

impl Agent for TcpReceiver {
    fn on_packet(&mut self, ctx: &mut AgentCtx<'_>, pkt: Packet) {
        let SegmentHeader::Data { seq, len } = pkt.header else {
            return; // receivers ignore stray acks
        };
        let before = self.rcv_nxt;
        self.absorb(seq, len);
        self.delivered += self.rcv_nxt - before;
        let me = ctx.node();
        // Immediate cumulative ack with ECN echo; priority 0 keeps acks
        // ahead of bulk data in priority-queue disciplines.
        let ack = Packet::ack(self.flow, me, pkt.src, self.rcv_nxt, pkt.ecn.is_marked());
        ctx.send(ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> TcpReceiver {
        TcpReceiver::new(FlowId(1))
    }

    #[test]
    fn in_order_advances_edge() {
        let mut r = rx();
        r.absorb(0, 1500);
        r.absorb(1500, 1500);
        assert_eq!(r.rcv_nxt(), 3000);
        assert_eq!(r.ooo_segments(), 0);
    }

    #[test]
    fn gap_buffers_until_filled() {
        let mut r = rx();
        r.absorb(0, 1500);
        r.absorb(3000, 1500); // hole at 1500
        assert_eq!(r.rcv_nxt(), 1500);
        assert_eq!(r.ooo_segments(), 1);
        r.absorb(1500, 1500); // fills the hole, drains the buffer
        assert_eq!(r.rcv_nxt(), 4500);
        assert_eq!(r.ooo_segments(), 0);
    }

    #[test]
    fn duplicates_are_counted_not_applied() {
        let mut r = rx();
        r.absorb(0, 1500);
        r.absorb(0, 1500);
        assert_eq!(r.rcv_nxt(), 1500);
        assert_eq!(r.dup_segments(), 1);
    }

    #[test]
    fn partial_overlap_advances_to_segment_end() {
        let mut r = rx();
        r.absorb(0, 1500);
        // Retransmission covering [0, 3000): edge moves to 3000.
        r.absorb(0, 3000);
        assert_eq!(r.rcv_nxt(), 3000);
    }

    #[test]
    fn many_out_of_order_segments_drain_in_one_pass() {
        let mut r = rx();
        for i in (1..10u64).rev() {
            r.absorb(i * 1500, 1500);
        }
        assert_eq!(r.rcv_nxt(), 0);
        assert_eq!(r.ooo_segments(), 9);
        r.absorb(0, 1500);
        assert_eq!(r.rcv_nxt(), 15_000);
        assert_eq!(r.ooo_segments(), 0);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Delivering MTU segments in any order always converges to a
            /// fully-advanced edge with an empty buffer.
            #[test]
            fn any_permutation_reassembles(order in proptest::sample::subsequence(
                (0u64..30).collect::<Vec<_>>(), 30)) {
                // `subsequence` of the full range with len 30 = permutation
                // guard: proptest subsequence keeps order; shuffle by index
                // math instead.
                let mut r = rx();
                let n = 30u64;
                // Deterministic pseudo-shuffle derived from the sampled vec.
                let mut idx: Vec<u64> = (0..n).collect();
                let rot = order.len() as u64 % n;
                idx.rotate_left(rot as usize);
                for &i in &idx {
                    r.absorb(i * 1500, 1500);
                }
                prop_assert_eq!(r.rcv_nxt(), n * 1500);
                prop_assert_eq!(r.ooo_segments(), 0);
            }
        }
    }
}
