//! RFC 6298 round-trip time estimation and retransmission timeout.
//!
//! Datacenter-tuned defaults: RTO floor of 1 ms (Linux's
//! `TCP_RTO_MIN`-style 200 ms would be absurd at 50 Gbps / 100 µs RTTs),
//! ceiling of 4 s, exponential backoff on consecutive timeouts.

use mltcp_netsim::time::SimDuration;

/// SRTT/RTTVAR estimator with RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff_exp: u32,
}

impl RttEstimator {
    /// A fresh estimator: RTO starts at `initial_rto` until the first
    /// sample arrives.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        Self {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial_rto,
            min_rto,
            max_rto,
            backoff_exp: 0,
        }
    }

    /// Datacenter defaults: initial RTO 10 ms, floor 1 ms, ceiling 4 s.
    pub fn datacenter() -> Self {
        Self::new(
            SimDuration::millis(10),
            SimDuration::millis(1),
            SimDuration::secs(4),
        )
    }

    /// Feeds one RTT sample (RFC 6298 §2), clearing any timeout backoff.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = SimDuration(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                let diff = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                self.rttvar = SimDuration((3 * self.rttvar.as_nanos() + diff.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(SimDuration((7 * srtt.as_nanos() + rtt.as_nanos()) / 8));
            }
        }
        self.backoff_exp = 0;
        self.recompute();
    }

    fn recompute(&mut self) {
        let srtt = self.srtt.expect("recompute only after a sample");
        // RTO = SRTT + max(G, 4·RTTVAR); clock granularity G is 1 ns here.
        let base = srtt + SimDuration(self.rttvar.as_nanos().saturating_mul(4).max(1));
        let backed_off = SimDuration(
            base.as_nanos()
                .saturating_mul(1u64.checked_shl(self.backoff_exp).unwrap_or(u64::MAX)),
        );
        self.rto = clamp(backed_off, self.min_rto, self.max_rto);
    }

    /// Doubles the RTO after a retransmission timeout (RFC 6298 §5.5).
    pub fn on_timeout(&mut self) {
        self.backoff_exp = (self.backoff_exp + 1).min(16);
        match self.srtt {
            Some(_) => self.recompute(),
            None => {
                self.rto = clamp(
                    SimDuration(self.rto.as_nanos().saturating_mul(2)),
                    self.min_rto,
                    self.max_rto,
                );
            }
        }
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// The smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

fn clamp(x: SimDuration, lo: SimDuration, hi: SimDuration) -> SimDuration {
    if x < lo {
        lo
    } else if x > hi {
        hi
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::datacenter();
        e.on_sample(SimDuration::micros(100));
        assert_eq!(e.srtt(), Some(SimDuration::micros(100)));
        // RTO = 100 µs + 4 × 50 µs = 300 µs, floored at 1 ms.
        assert_eq!(e.rto(), SimDuration::millis(1));
    }

    #[test]
    fn ewma_converges_to_constant_rtt() {
        let mut e = RttEstimator::datacenter();
        for _ in 0..100 {
            e.on_sample(SimDuration::micros(200));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_nanos() as i64 - 200_000).abs() < 2_000);
        // Variance decays; RTO hits the floor.
        assert_eq!(e.rto(), SimDuration::millis(1));
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::datacenter();
        for i in 0..50 {
            let rtt = if i % 2 == 0 { 1 } else { 9 };
            e.on_sample(SimDuration::millis(rtt));
        }
        // Oscillating 1/9 ms: srtt ≈ 5 ms, rttvar ≈ 4 ms ⇒ RTO ≈ 21 ms.
        assert!(e.rto() > SimDuration::millis(10));
    }

    #[test]
    fn timeout_backs_off_exponentially_and_sample_resets() {
        let mut e = RttEstimator::datacenter();
        e.on_sample(SimDuration::millis(1));
        let base = e.rto();
        e.on_timeout();
        let r1 = e.rto();
        e.on_timeout();
        let r2 = e.rto();
        assert_eq!(r1, base.saturating_mul(2));
        assert_eq!(r2, base.saturating_mul(4));
        // A fresh sample clears the backoff (RTO falls back below the
        // backed-off value; the exact value also reflects variance decay).
        e.on_sample(SimDuration::millis(1));
        assert!(e.rto() <= base);
    }

    #[test]
    fn rto_respects_ceiling() {
        let mut e = RttEstimator::datacenter();
        e.on_sample(SimDuration::secs(2));
        for _ in 0..10 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::secs(4));
    }

    #[test]
    fn pre_sample_timeout_doubles_initial_rto() {
        let mut e = RttEstimator::datacenter();
        assert_eq!(e.rto(), SimDuration::millis(10));
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::millis(20));
    }
}
