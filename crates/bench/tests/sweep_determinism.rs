//! Pins the `SweepRunner` guarantee the figure binaries rely on: a
//! parallel sweep's serialized output is **byte-identical** to the
//! sequential run's.
//!
//! A 2-job dumbbell scenario (the Fig. 6 workload shrunk to test scale)
//! is swept across 8 seeds three times — inline (1 thread), with 4
//! workers, and with 8 workers — and each sweep's results are serialized
//! to JSON. Workers derive all randomness from their config (the seed),
//! so completion order must be the only nondeterminism, and the
//! input-order collection erases it.

use mltcp_bench::experiments::{
    gpt2_jobs, mean_steady_ratio, mix_deadline, uniform_scenario, FaultCase, PlanKind,
};
use mltcp_bench::json::Json;
use mltcp_netsim::event::EngineKind;
use mltcp_netsim::fault::GilbertElliott;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_workload::scenario::{CongestionSpec, FnSpec, LinkFault};
use mltcp_workload::SweepRunner;

const SCALE: f64 = 0.002;
const ITERS: u32 = 6;

/// Runs the 8-seed sweep on `threads` workers and serializes every
/// result (per-seed mean ratio + full per-job iteration series) to the
/// exact JSON the figure harness would write.
fn sweep_json(threads: usize) -> String {
    let seeds: Vec<u64> = (0..8).map(|i| 42 + 7 * i).collect();
    let results = SweepRunner::with_threads(threads).run(&seeds, |_, &sd| {
        let mut sc = uniform_scenario(
            sd,
            gpt2_jobs(SCALE, ITERS, 2),
            CongestionSpec::MltcpReno(FnSpec::Paper),
        );
        sc.run(mix_deadline(SCALE, ITERS));
        assert!(sc.all_finished(), "seed {sd}: jobs did not finish");
        let per_job: Vec<Vec<f64>> = (0..sc.jobs.len())
            .map(|i| sc.stats(i).durations().to_vec())
            .collect();
        (sd, mean_steady_ratio(&sc), per_job)
    });

    Json::Arr(
        results
            .iter()
            .map(|(sd, ratio, per_job)| {
                Json::obj([
                    ("seed", Json::Num(*sd as f64)),
                    ("mean_steady_ratio", Json::Num(*ratio)),
                    (
                        "iteration_secs",
                        Json::Arr(
                            per_job
                                .iter()
                                .map(|d| Json::nums(d.iter().copied()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
    .to_string_pretty()
}

#[test]
fn parallel_sweep_output_is_byte_identical_to_sequential() {
    let sequential = sweep_json(1);
    // Sanity: the sweep produced real simulation data, not empty shells.
    assert!(sequential.contains("mean_steady_ratio"));
    assert!(sequential.len() > 1000, "suspiciously small sweep output");

    let par4 = sweep_json(4);
    assert_eq!(
        sequential, par4,
        "4-worker sweep output diverged from sequential"
    );
    let par8 = sweep_json(8);
    assert_eq!(
        sequential, par8,
        "8-worker sweep output diverged from sequential"
    );
}

/// The same sweep-determinism contract on a *faulted* scenario: link
/// flap + bursty-loss window + a job restart, all seeded from the run's
/// seed. Fault injection draws loss from per-link RNG streams and
/// replays scheduled faults through the event queue, so neither worker
/// count nor the event-engine choice may leak into the trace.
fn faulted_sweep_json(threads: usize, engine: EngineKind) -> String {
    let period = SimDuration::from_secs_f64(1.8 * SCALE);
    let at = SimTime::from_secs_f64(1.8 * SCALE * 2.0);
    let seeds: Vec<u64> = (0..8).map(|i| 42 + 7 * i).collect();
    let results = SweepRunner::with_threads(threads).run(&seeds, |_, &sd| {
        let restart = FaultCase::JobRestart {
            job: 0,
            at_iter: ITERS / 2,
            outage: period.mul_f64(0.5),
        };
        let mut sc = restart
            .builder(
                sd,
                gpt2_jobs(SCALE, ITERS, 2),
                &PlanKind::Uniform(CongestionSpec::MltcpReno(FnSpec::Paper)),
            )
            .max_rto(period)
            .bottleneck_fault(LinkFault::Down {
                at,
                duration: period.mul_f64(0.25),
            })
            .bottleneck_fault(LinkFault::BurstyLoss {
                at: at + period,
                duration: period,
                model: GilbertElliott::bursty(0.05, 0.3, 0.4),
            })
            .engine(engine)
            .build();
        sc.run(mix_deadline(SCALE, ITERS));
        assert!(sc.all_finished(), "seed {sd}: faulted jobs did not finish");
        let per_job: Vec<Vec<f64>> = (0..sc.jobs.len())
            .map(|i| sc.stats(i).durations().to_vec())
            .collect();
        (sd, mean_steady_ratio(&sc), per_job)
    });

    Json::Arr(
        results
            .iter()
            .map(|(sd, ratio, per_job)| {
                Json::obj([
                    ("seed", Json::Num(*sd as f64)),
                    ("mean_steady_ratio", Json::Num(*ratio)),
                    (
                        "iteration_secs",
                        Json::Arr(
                            per_job
                                .iter()
                                .map(|d| Json::nums(d.iter().copied()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
    .to_string_pretty()
}

#[test]
fn faulted_sweep_output_is_byte_identical_across_worker_counts() {
    let sequential = faulted_sweep_json(1, EngineKind::Wheel);
    assert!(sequential.contains("mean_steady_ratio"));
    assert!(sequential.len() > 1000, "suspiciously small sweep output");

    let par4 = faulted_sweep_json(4, EngineKind::Wheel);
    assert_eq!(
        sequential, par4,
        "4-worker faulted sweep output diverged from sequential"
    );
    let par8 = faulted_sweep_json(8, EngineKind::Wheel);
    assert_eq!(
        sequential, par8,
        "8-worker faulted sweep output diverged from sequential"
    );
}

/// The PR's zero-drift acceptance gate at sweep granularity: the faulted
/// sweep's serialized output must be byte-identical between the heap and
/// wheel engines at every worker count. A wheel that reorders even one
/// same-time event would shift a loss draw and show up here.
#[test]
fn faulted_sweep_output_is_byte_identical_between_engines() {
    let wheel = faulted_sweep_json(1, EngineKind::Wheel);
    assert!(wheel.len() > 1000, "suspiciously small sweep output");
    for threads in [1, 4, 8] {
        let heap = faulted_sweep_json(threads, EngineKind::Heap);
        assert_eq!(
            wheel, heap,
            "{threads}-worker heap-engine faulted sweep diverged from the wheel engine"
        );
    }
}
