//! Pins the telemetry layer's core contract: **sinks observe, they never
//! perturb**. A faulted scenario (link flap + bursty loss + job restart)
//! must produce the same [`scenario_replay_hash`] whether it runs with no
//! sink, a no-op sink, a bounded ring recorder, or a streaming JSONL
//! writer — and whether the sweep runs inline or on 4/8 workers.
//!
//! The hash covers every iteration record of every job plus the
//! simulator's delivery/drop counters and final clock, so any
//! sink-induced reordering, extra allocation visible to the RNG, or
//! timing drift would flip it.

use mltcp_bench::experiments::{
    gpt2_jobs, mix_deadline, scenario_replay_hash, FaultCase, PlanKind,
};
use mltcp_netsim::fault::GilbertElliott;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_telemetry::{JsonlSink, NoopSink, RingRecorder};
use mltcp_workload::scenario::{CongestionSpec, FnSpec, LinkFault};
use mltcp_workload::SweepRunner;
use proptest::prelude::*;

const SCALE: f64 = 0.002;
const ITERS: u32 = 5;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkMode {
    /// No sink installed at all — the production fast path.
    None,
    /// The do-nothing sink (enabled path, empty record).
    Noop,
    /// Bounded in-memory ring recorder.
    Ring,
    /// Streaming JSONL file writer (real I/O on the side).
    Jsonl,
}

/// Replay hashes of a 3-seed faulted sweep under one sink mode and
/// worker count. `tag` keeps parallel JSONL writers on distinct files.
fn faulted_hashes(base_seed: u64, threads: usize, mode: SinkMode, tag: &str) -> Vec<u64> {
    let period = SimDuration::from_secs_f64(1.8 * SCALE);
    let at = SimTime::from_secs_f64(1.8 * SCALE * 2.0);
    let seeds: Vec<u64> = (0..3).map(|i| base_seed + 11 * i).collect();
    SweepRunner::with_threads(threads).run(&seeds, |_, &sd| {
        let restart = FaultCase::JobRestart {
            job: 0,
            at_iter: ITERS / 2,
            outage: period.mul_f64(0.5),
        };
        let mut sc = restart
            .builder(
                sd,
                gpt2_jobs(SCALE, ITERS, 2),
                &PlanKind::Uniform(CongestionSpec::MltcpReno(FnSpec::Paper)),
            )
            .max_rto(period)
            .bottleneck_fault(LinkFault::Down {
                at,
                duration: period.mul_f64(0.25),
            })
            .bottleneck_fault(LinkFault::BurstyLoss {
                at: at + period,
                duration: period,
                model: GilbertElliott::bursty(0.05, 0.3, 0.4),
            })
            .build();
        match mode {
            SinkMode::None => {}
            SinkMode::Noop => sc.set_telemetry(Box::new(NoopSink)),
            SinkMode::Ring => sc.set_telemetry(Box::new(RingRecorder::new(4096))),
            SinkMode::Jsonl => {
                let path = std::env::temp_dir().join(format!(
                    "mltcp-telemetry-det-{}-{tag}-{sd}.jsonl",
                    std::process::id()
                ));
                let sink = JsonlSink::create(&path).expect("temp trace file");
                sc.set_telemetry(Box::new(sink));
            }
        }
        sc.run(mix_deadline(SCALE, ITERS));
        assert!(sc.all_finished(), "seed {sd}: faulted jobs did not finish");
        if let Some(sink) = sc.take_telemetry() {
            // Ring mode: prove the recorder actually captured events, so
            // the equality below is not vacuous.
            if mode == SinkMode::Ring {
                let rec = sink
                    .into_any()
                    .downcast::<RingRecorder>()
                    .expect("ring sink comes back as itself");
                assert!(rec.total_recorded() > 0, "seed {sd}: ring recorded nothing");
            }
        }
        scenario_replay_hash(&sc)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sinks_never_perturb_replay_hash(base_seed in 1u64..10_000) {
        let reference = faulted_hashes(base_seed, 1, SinkMode::None, "ref");
        prop_assert!(reference.iter().all(|&h| h != 0));
        for threads in [1usize, 4, 8] {
            for mode in [SinkMode::None, SinkMode::Noop, SinkMode::Ring, SinkMode::Jsonl] {
                let tag = format!("{mode:?}-{threads}");
                let got = faulted_hashes(base_seed, threads, mode, &tag);
                prop_assert_eq!(
                    &reference,
                    &got,
                    "replay hash diverged: mode {:?}, {} workers",
                    mode,
                    threads
                );
            }
        }
    }
}
