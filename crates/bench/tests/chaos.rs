//! Chaos integration tests: the fault-recovery claims of the
//! `exp_fault_recovery` experiment, pinned at test scale with fixed
//! seeds so CI exercises them on every push.
//!
//! The claims:
//! * **MLTCP self-heals** — after a link flap, a brownout, a bursty-loss
//!   window, or a job restart, the 4-job mix returns to its fault-free
//!   steady-state level within a bounded number of iterations;
//! * **a static Cassini plan does not recover** — the optimizer's
//!   offsets, applied once and never recomputed, never regain the
//!   planned (enforced, paced) schedule's quality once noise and faults
//!   shift the jobs' phases;
//! * **fault replay is deterministic** — the same fault seed produces a
//!   byte-identical trace.

use mltcp_bench::experiments::{
    cassini_scenario, fig2_jobs, mix_deadline, summarize_run, FaultCase, PlanKind,
};
use mltcp_netsim::fault::GilbertElliott;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_workload::scenario::{CongestionSpec, FnSpec, Scenario};

const SCALE: f64 = 0.005;
const ITERS: u32 = 40;
const SEED: u64 = 42;

fn period() -> SimDuration {
    SimDuration::from_secs_f64(1.8 * SCALE)
}

fn fault_onset() -> SimTime {
    SimTime::from_secs_f64(1.8 * SCALE * f64::from(ITERS) * 0.35)
}

fn fault_classes() -> Vec<FaultCase> {
    vec![
        FaultCase::LinkFlap {
            at: fault_onset(),
            outage: period().mul_f64(1.5),
        },
        FaultCase::Brownout {
            at: fault_onset(),
            window: period().mul_f64(4.0),
            factor: 0.25,
        },
        FaultCase::BurstyLoss {
            at: fault_onset(),
            window: period().mul_f64(3.0),
            model: GilbertElliott::bursty(0.08, 0.25, 0.4),
        },
        FaultCase::JobRestart {
            job: 0,
            at_iter: ITERS / 3,
            outage: period(),
        },
    ]
}

fn run(case: &FaultCase, plan: &PlanKind) -> Scenario {
    let mut sc = case
        .builder(SEED, fig2_jobs(SCALE, ITERS), plan)
        .max_rto(period())
        .build();
    sc.run(mix_deadline(SCALE, ITERS));
    assert!(
        sc.all_finished(),
        "{}/{}: jobs did not finish",
        case.label(),
        plan.label()
    );
    sc
}

#[test]
fn mltcp_reconverges_after_every_fault_class() {
    let mltcp = PlanKind::Uniform(CongestionSpec::MltcpReno(FnSpec::Paper));
    // Fault-free reference: where MLTCP's own feedback loop settles.
    let clean = summarize_run(&run(&FaultCase::None, &mltcp)).mean_steady_ratio;
    for case in fault_classes() {
        let sc = run(&case, &mltcp);
        let post = summarize_run(&sc).mean_steady_ratio;
        // Self-healing: the tail of the faulted run is back at the
        // fault-free steady level (±5%) — the fault did not leave the
        // mix stuck in a degraded interleaving.
        assert!(
            post <= clean * 1.05,
            "{}: post-fault steady ratio {post:.4} vs fault-free {clean:.4}",
            case.label()
        );
        // And every job actually completed all its iterations despite
        // the fault (no wedged sender, no lost transfer).
        for i in 0..sc.jobs.len() {
            assert_eq!(
                sc.stats(i).len(),
                ITERS as usize,
                "{}: job {i} lost iterations",
                case.label()
            );
        }
    }
}

#[test]
fn restarted_job_reinterleaves_within_bounded_iterations() {
    let mltcp = PlanKind::Uniform(CongestionSpec::MltcpReno(FnSpec::Paper));
    let case = FaultCase::JobRestart {
        job: 0,
        at_iter: ITERS / 3,
        outage: period(),
    };
    let sc = run(&case, &mltcp);
    let (idx, _) = sc.restart_resume(0).expect("restart fired");
    assert_eq!(idx, ITERS / 3);
    // The restarted job itself re-interleaves: smoothed durations back
    // within 10% of its pre-fault level before the run ends, with room
    // to spare.
    let reconv = sc
        .iterations_to_reinterleave(0, 0.10)
        .expect("restarted job re-interleaved before the run ended");
    assert!(
        reconv <= (ITERS - ITERS / 3) - 5,
        "re-interleave took {reconv} iterations"
    );
}

#[test]
fn static_cassini_plan_does_not_recover_planned_quality() {
    // What the plan promises when enforced (paced) and fault-free.
    let planned = {
        let mut sc = cassini_scenario(SEED, fig2_jobs(SCALE, ITERS));
        sc.run(mix_deadline(SCALE, ITERS));
        assert!(sc.all_finished());
        summarize_run(&sc).mean_steady_ratio
    };
    // The static (never-recomputed) offsets never regain planned quality
    // after any fault shifts the jobs' phases: the tail stays measurably
    // above the enforced schedule's level.
    for case in fault_classes() {
        let post = summarize_run(&run(&case, &PlanKind::CassiniStatic)).mean_steady_ratio;
        assert!(
            post > planned * 1.02,
            "{}: static plan at {post:.4} unexpectedly matched enforced plan {planned:.4}",
            case.label()
        );
    }
}

#[test]
fn faulted_runs_replay_byte_identically() {
    let mltcp = PlanKind::Uniform(CongestionSpec::MltcpReno(FnSpec::Paper));
    for case in fault_classes() {
        let a = run(&case, &mltcp);
        let b = run(&case, &mltcp);
        for i in 0..a.jobs.len() {
            assert_eq!(
                a.stats(i).durations(),
                b.stats(i).durations(),
                "{}: job {i} trace diverged across identical replays",
                case.label()
            );
            assert_eq!(
                a.comm_starts_secs(i),
                b.comm_starts_secs(i),
                "{}: job {i} comm starts diverged",
                case.label()
            );
        }
        assert_eq!(
            a.sim.stats().dropped,
            b.sim.stats().dropped,
            "{}: drop counts diverged",
            case.label()
        );
    }
}
