//! Pins the event queue's capacity-release contract at scenario
//! granularity: a process running sweep scenarios back to back (what a
//! `SweepRunner` worker does all day) must not hold each run's event
//! high-water mark after that run drains.
//!
//! The queue-level mechanics (`KEEP_CAPACITY`, `shrink_to_fit` on
//! drain) are unit-tested in `mltcp_netsim::event`; this test drives
//! real contended scenarios — where the standing event population comes
//! from thousands of in-flight packets, not synthetic timers — and
//! checks the *observable* retained footprint via
//! [`Simulator::event_queue_capacity`].

use mltcp_bench::experiments::{gpt2_jobs, mix_deadline, uniform_scenario};
use mltcp_workload::scenario::{CongestionSpec, FnSpec};

const SCALE: f64 = 0.002;
const ITERS: u32 = 6;

/// Retained event-queue slots after each run must stay near the keep
/// floor (a few small buffers), independent of how much traffic the
/// scenario pushed. 512 slots is ~8× the queue's internal keep
/// threshold — generous headroom over "released", far below the
/// thousands of slots a contended run's standing population needs.
const RETAINED_SLOTS_BOUND: usize = 512;

#[test]
fn sequential_scenarios_do_not_accumulate_event_queue_capacity() {
    // Ascending then descending job counts: the descending half proves a
    // small run after a big one reports the small run's footprint, not
    // the big run's high-water mark.
    for jobs in [2usize, 6, 2] {
        let mut sc = uniform_scenario(
            71,
            gpt2_jobs(SCALE, ITERS, jobs),
            CongestionSpec::MltcpReno(FnSpec::Paper),
        );
        sc.run(mix_deadline(SCALE, ITERS));
        assert!(sc.all_finished(), "{jobs}-job workload did not finish");
        let retained = sc.sim.event_queue_capacity();
        assert!(
            retained <= RETAINED_SLOTS_BOUND,
            "{jobs}-job run retained {retained} event slots after drain \
             (bound {RETAINED_SLOTS_BOUND}) — capacity release is broken"
        );
    }
}
