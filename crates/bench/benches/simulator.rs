//! Criterion micro-benchmarks for the simulator substrate: event queue,
//! queue disciplines, RNG, and end-to-end packet forwarding rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mltcp_netsim::event::{EngineKind, EventKind, EventQueue};
use mltcp_netsim::link::{Bandwidth, LinkSpec};
use mltcp_netsim::node::NodeId;
use mltcp_netsim::packet::{FlowId, Packet};
use mltcp_netsim::queue::{FifoQueue, PriorityQueue, Queue};
use mltcp_netsim::rng::SimRng;
use mltcp_netsim::sim::{Agent, AgentCtx, Simulator};
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_netsim::topology::TopologyBuilder;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(
                    SimTime(i * 37 % 5000),
                    EventKind::Timer { agent: 0, token: i },
                );
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

/// Steady-state heap churn: the queue holds a standing population of
/// pending events (as a mid-run simulation does) and each iteration is
/// one push + one pop. Unlike `push_pop_10k`'s fill-then-drain, every
/// sift here works at full depth, so this isolates the cost that
/// `size_of::<Event>()` multiplies.
fn bench_event_queue_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_queue_churn", |b| {
        let mut q = EventQueue::new();
        for i in 0..4_096u64 {
            q.schedule(SimTime(i * 31), EventKind::Timer { agent: 0, token: i });
        }
        let mut t = 4_096u64 * 31;
        b.iter(|| {
            for _ in 0..10_000 {
                t += 17;
                q.schedule(SimTime(t), EventKind::Timer { agent: 0, token: t });
                black_box(q.pop());
            }
        })
    });
    g.finish();
}

/// The same standing-population churn as [`bench_event_queue_churn`],
/// run on each engine explicitly. Timer events never take the link
/// rails, so this compares the wheel's bucket insert + bitmap scan
/// against the heap's full-depth sift — the engines' floor, not their
/// best case (deliveries on rails are where the wheel wins big).
fn bench_wheel_vs_heap_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("wheel_vs_heap_churn");
    g.throughput(Throughput::Elements(10_000));
    for (name, engine) in [("heap", EngineKind::Heap), ("wheel", EngineKind::Wheel)] {
        g.bench_function(name, |b| {
            let mut q = EventQueue::with_engine(engine);
            for i in 0..4_096u64 {
                q.schedule(SimTime(i * 31), EventKind::Timer { agent: 0, token: i });
            }
            let mut t = 4_096u64 * 31;
            b.iter(|| {
                for _ in 0..10_000 {
                    t += 17;
                    q.schedule(SimTime(t), EventKind::Timer { agent: 0, token: t });
                    black_box(q.pop());
                }
            })
        });
    }
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_disciplines");
    g.throughput(Throughput::Elements(1_000));
    let pkt = |i: u64| {
        Packet::data(FlowId(i % 8), NodeId(0), NodeId(1), i * 1500, 1500)
            .with_priority(i * 7919 % 1000)
    };
    g.bench_function("fifo_1k", |b| {
        b.iter(|| {
            let mut q = FifoQueue::new(100_000_000, None);
            for i in 0..1_000u64 {
                q.enqueue(pkt(i));
            }
            while let Some(p) = q.dequeue() {
                black_box(p);
            }
        })
    });
    g.bench_function("priority_1k", |b| {
        b.iter(|| {
            let mut q = PriorityQueue::new(100_000_000);
            for i in 0..1_000u64 {
                q.enqueue(pkt(i));
            }
            while let Some(p) = q.dequeue() {
                black_box(p);
            }
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_gaussian_10k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.gaussian(0.0, 1.0);
            }
            black_box(acc)
        })
    });
}

/// Blasts N packets through a 2-host link and drains the event queue —
/// an end-to-end events/sec measurement of the core loop.
struct Blaster {
    peer: NodeId,
    pkts: u32,
}
impl Agent for Blaster {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        let me = ctx.node();
        for i in 0..self.pkts {
            ctx.send(Packet::data(
                FlowId(1),
                me,
                self.peer,
                u64::from(i) * 1500,
                1500,
            ));
        }
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
}
struct Sink;
impl Agent for Sink {
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
}

fn bench_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("forwarding");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("two_host_10k_packets", |b| {
        b.iter(|| {
            let mut tb = TopologyBuilder::new();
            let h0 = tb.host("h0");
            let h1 = tb.host("h1");
            tb.link(
                h0,
                h1,
                LinkSpec::new(Bandwidth::gbps(100), SimDuration::micros(1)),
            );
            let mut sim = Simulator::new(tb.build().unwrap(), 0);
            sim.add_agent(
                h0,
                Blaster {
                    peer: h1,
                    pkts: 10_000,
                },
            );
            let sink = sim.add_agent(h1, Sink);
            sim.bind_flow(FlowId(1), sink);
            sim.run();
            black_box(sim.stats().delivered)
        })
    });
    g.finish();
}

/// Like [`bench_forwarding`] but with 16 flows bound on the receiving
/// node, so every `Deliver` exercises the per-node flow-table lookup
/// (the dense-map replacement for the old global `HashMap` bindings)
/// plus the inline rail-delivery pop (no box traffic on dispatch).
fn bench_delivery_dispatch(c: &mut Criterion) {
    const FLOWS: u64 = 16;
    struct FanBlaster {
        peer: NodeId,
        pkts: u32,
    }
    impl Agent for FanBlaster {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            let me = ctx.node();
            for i in 0..self.pkts {
                let flow = FlowId(u64::from(i) % FLOWS + 1);
                ctx.send(Packet::data(flow, me, self.peer, u64::from(i) * 1500, 1500));
            }
        }
        fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
    }

    let mut g = c.benchmark_group("forwarding");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("delivery_dispatch_16_flows", |b| {
        b.iter(|| {
            let mut tb = TopologyBuilder::new();
            let h0 = tb.host("h0");
            let h1 = tb.host("h1");
            tb.link(
                h0,
                h1,
                LinkSpec::new(Bandwidth::gbps(100), SimDuration::micros(1)),
            );
            let mut sim = Simulator::new(tb.build().unwrap(), 0);
            sim.add_agent(
                h0,
                FanBlaster {
                    peer: h1,
                    pkts: 10_000,
                },
            );
            for f in 1..=FLOWS {
                let sink = sim.add_agent(h1, Sink);
                sim.bind_flow(FlowId(f), sink);
            }
            sim.run();
            black_box(sim.stats().delivered)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_churn,
    bench_wheel_vs_heap_churn,
    bench_queues,
    bench_rng,
    bench_forwarding,
    bench_delivery_dispatch
);
criterion_main!(benches);
