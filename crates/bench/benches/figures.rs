//! Criterion macro-benchmarks: the core MLTCP algorithm and small
//! end-to-end scenario runs (wall-clock cost of regenerating figure
//! data, and a regression guard on simulator performance).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mltcp_core::aggressiveness::{Aggressiveness, Linear};
use mltcp_core::gradient::Descent;
use mltcp_core::loss::LossFunction;
use mltcp_core::params::MltcpParams;
use mltcp_core::schedule::PeriodicJob;
use mltcp_core::shift::ShiftFunction;
use mltcp_core::tracker::{IterationTracker, TrackerConfig};
use mltcp_netsim::time::SimTime;
use mltcp_sched::cassini::optimize_offsets;
use mltcp_workload::models;
use mltcp_workload::scenario::{CongestionSpec, FnSpec, ScenarioBuilder};

fn bench_algorithm(c: &mut Criterion) {
    c.bench_function("aggressiveness_eval_10k", |b| {
        let f = Linear::paper_default();
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000 {
                acc += f.eval(i as f64 / 10_000.0);
            }
            black_box(acc)
        })
    });
    c.bench_function("tracker_on_ack_10k", |b| {
        b.iter(|| {
            let mut t = IterationTracker::new(TrackerConfig::oracle(15_000_000, 1_000_000));
            for i in 0..10_000u64 {
                t.on_ack(i * 1_000, 1500);
            }
            black_box(t.bytes_ratio())
        })
    });
    c.bench_function("gradient_descent_convergence", |b| {
        let shift = ShiftFunction::new(MltcpParams::PAPER, 1.8, 0.5).unwrap();
        let d = Descent::new(shift);
        b.iter(|| black_box(d.run(0.05, 1e-9, 10_000)))
    });
    c.bench_function("loss_closed_form_1k", |b| {
        let shift = ShiftFunction::new(MltcpParams::PAPER, 1.8, 0.5).unwrap();
        let l = LossFunction::new(shift);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1_000 {
                acc += l.eval_periodic(1.8 * i as f64 / 1_000.0);
            }
            black_box(acc)
        })
    });
}

fn bench_cassini(c: &mut Criterion) {
    c.bench_function("cassini_optimize_fig2_mix", |b| {
        let jobs = [
            PeriodicJob::new(1.2, 0.5, 0.0).unwrap().with_bursts(2),
            PeriodicJob::new(1.8, 0.139, 0.0).unwrap(),
            PeriodicJob::new(1.8, 0.139, 0.0).unwrap(),
            PeriodicJob::new(1.8, 0.139, 0.0).unwrap(),
        ];
        b.iter(|| black_box(optimize_offsets(&jobs, 120, 2048)))
    });
}

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_runs");
    g.sample_size(10);
    for (label, cc) in [
        ("two_gpt2_reno_5iters", CongestionSpec::Reno),
        (
            "two_gpt2_mltcp_5iters",
            CongestionSpec::MltcpReno(FnSpec::Paper),
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let rate = models::paper_bottleneck();
                let mut sb = ScenarioBuilder::new(3);
                for j in models::gpt2_pack(rate, 1e-3, 5, 2) {
                    sb = sb.job(j, cc.clone());
                }
                let mut sc = sb.build();
                sc.run(SimTime::from_secs_f64(1.0));
                black_box(sc.all_finished())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_algorithm, bench_cassini, bench_scenarios);
criterion_main!(benches);
