//! Minimal JSON emission for experiment artifacts.
//!
//! The offline build replaces `serde_json` with this hand-rolled emitter:
//! a [`Json`] value tree plus a deterministic pretty printer (2-space
//! indent, object keys in insertion order). Determinism matters — the
//! sweep-harness tests compare sequential and parallel runs by comparing
//! these serialized bytes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null` (as serde_json
    /// does for f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array of numbers.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with 2-space indentation and a trailing newline-free
    /// body (matching `serde_json::to_string_pretty`).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Integral values keep a ".0" suffix so a reader can't misparse the
    // column as integer-typed; Rust's shortest-roundtrip float formatting
    // covers the rest.
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_rendering() {
        assert_eq!(Json::Null.to_string_pretty(), "null");
        assert_eq!(Json::Bool(true).to_string_pretty(), "true");
        assert_eq!(Json::Num(1.0).to_string_pretty(), "1.0");
        assert_eq!(Json::Num(1.5).to_string_pretty(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::str("a\"b\n").to_string_pretty(), r#""a\"b\n""#);
    }

    #[test]
    fn nested_pretty_layout() {
        let v = Json::obj([
            ("name", Json::str("fig")),
            ("xs", Json::nums([0.0, 0.5])),
            ("empty", Json::Arr(vec![])),
        ]);
        let expect =
            "{\n  \"name\": \"fig\",\n  \"xs\": [\n    0.0,\n    0.5\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.to_string_pretty(), expect);
    }

    #[test]
    fn deterministic_output() {
        let build = || Json::obj([("a", Json::Num(0.1)), ("b", Json::str("x"))]).to_string_pretty();
        assert_eq!(build(), build());
    }
}
