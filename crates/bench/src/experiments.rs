//! Shared experiment constructors used by the figure binaries and the
//! repository's integration tests — one canonical definition per paper
//! scenario, so every consumer measures exactly the same system.

use crate::default_noise;
use mltcp_netsim::fault::GilbertElliott;
use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_sched::cassini;
use mltcp_sched::pfabric::apply_pfabric;
use mltcp_workload::job::JobSpec;
use mltcp_workload::models;
use mltcp_workload::scenario::{CongestionSpec, LinkFault, Scenario, ScenarioBuilder};
use mltcp_workload::stats::JobReport;

/// The pacing factor used by the enforced-Cassini runs: planned periods
/// are `1.16 ×` the analytic ideal, covering the transport's measured
/// isolation overhead (~12% for the 2-burst GPT-3 profile) with margin so
/// every job can actually hold its planned slot.
pub const CASSINI_PACE_FACTOR: f64 = 1.16;

/// The RTT hint used to size pFabric queues/windows at the default
/// topology (3 hops × 2 µs each way).
pub fn rtt_hint() -> SimDuration {
    SimDuration::micros(12)
}

/// The Fig. 2 job mix (GPT-3 + 3×GPT-2) with 1% compute noise.
pub fn fig2_jobs(scale: f64, iters: u32) -> Vec<JobSpec> {
    let rate = models::paper_bottleneck();
    models::fig2_mix(rate, scale, iters)
        .into_iter()
        .map(|j| {
            let noise = default_noise(j.compute_time);
            j.with_noise(noise)
        })
        .collect()
}

/// `n` GPT-2 jobs with 1% compute noise (Figs. 3, 4, 6).
pub fn gpt2_jobs(scale: f64, iters: u32, n: usize) -> Vec<JobSpec> {
    let rate = models::paper_bottleneck();
    models::gpt2_pack(rate, scale, iters, n)
        .into_iter()
        .map(|j| {
            let noise = default_noise(j.compute_time);
            j.with_noise(noise)
        })
        .collect()
}

/// Builds a synchronized-start scenario with one congestion control for
/// all jobs.
pub fn uniform_scenario(seed: u64, jobs: Vec<JobSpec>, cc: CongestionSpec) -> Scenario {
    uniform_builder(seed, jobs, cc).build()
}

/// Builds the enforced-Cassini scenario: the centralized optimizer picks
/// communication offsets, the driver paces every job to its planned
/// (derated) period, and flows run plain Reno — no contention remains to
/// manage.
pub fn cassini_scenario(seed: u64, jobs: Vec<JobSpec>) -> Scenario {
    let rate = models::paper_bottleneck();
    let periodic: Vec<_> = jobs.iter().map(|j| j.to_periodic(rate)).collect();
    let sched = cassini::optimize_offsets(&periodic, 240, 8192);
    let computes: Vec<_> = jobs.iter().map(|j| j.compute_time).collect();
    let periods: Vec<f64> = periodic.iter().map(|p| p.period).collect();
    let offsets = cassini::driver_offsets(&sched, &computes, &periods);
    let mut b = ScenarioBuilder::new(seed);
    for (mut j, off) in jobs.into_iter().zip(offsets) {
        let pace = j.ideal_period(rate).mul_f64(CASSINI_PACE_FACTOR);
        j.start_offset = off.mul_f64(CASSINI_PACE_FACTOR);
        j = j.with_pace(pace);
        b = b.job(j, CongestionSpec::Reno);
    }
    b.build()
}

/// Builds the *static*-Cassini scenario: the centralized optimizer picks
/// communication offsets once, but — unlike [`cassini_scenario`] — no
/// pacing enforces the plan afterwards. Jobs free-run from their planned
/// offsets on plain Reno.
///
/// This is the honest "plan is not recomputed" baseline for fault
/// experiments: a paced plan is phase-preserving (jobs re-align to their
/// grid slots after any perturbation), whereas static offsets random-walk
/// apart as soon as a fault — or accumulated compute noise — shifts one
/// job's phase, exactly the failure mode that forces Cassini to replan.
pub fn cassini_static_scenario(seed: u64, jobs: Vec<JobSpec>) -> Scenario {
    cassini_static_builder(seed, jobs).build()
}

/// [`cassini_static_scenario`] as a builder, so callers can append link
/// faults before `build()`.
pub fn cassini_static_builder(seed: u64, jobs: Vec<JobSpec>) -> ScenarioBuilder {
    let rate = models::paper_bottleneck();
    let periodic: Vec<_> = jobs.iter().map(|j| j.to_periodic(rate)).collect();
    let sched = cassini::optimize_offsets(&periodic, 240, 8192);
    let computes: Vec<_> = jobs.iter().map(|j| j.compute_time).collect();
    let periods: Vec<f64> = periodic.iter().map(|p| p.period).collect();
    let offsets = cassini::driver_offsets(&sched, &computes, &periods);
    let mut b = ScenarioBuilder::new(seed);
    for (mut j, off) in jobs.into_iter().zip(offsets) {
        j.start_offset = off.mul_f64(CASSINI_PACE_FACTOR);
        b = b.job(j, CongestionSpec::Reno);
    }
    b
}

/// [`uniform_scenario`] as a builder, so callers can append link faults
/// before `build()`.
pub fn uniform_builder(seed: u64, jobs: Vec<JobSpec>, cc: CongestionSpec) -> ScenarioBuilder {
    let mut b = ScenarioBuilder::new(seed);
    for j in jobs {
        b = b.job(j, cc.clone());
    }
    b
}

/// Builds the pFabric scenario: strict-priority bottleneck, remaining-
/// bytes tags, line-rate initial windows.
pub fn pfabric_scenario(seed: u64, jobs: Vec<JobSpec>) -> Scenario {
    let rate = models::paper_bottleneck();
    let mut b = ScenarioBuilder::new(seed);
    for j in jobs {
        b = b.job(j, CongestionSpec::Reno);
    }
    apply_pfabric(b, rate, rtt_hint()).build()
}

/// A generous deadline for `iters` iterations of the slowest job in a
/// mix at time `scale`.
pub fn mix_deadline(scale: f64, iters: u32) -> SimTime {
    SimTime::from_secs_f64(1.8 * scale * (f64::from(iters) + 12.0) * 4.0)
}

/// Mean of each job's steady-state iteration time divided by its ideal.
pub fn mean_steady_ratio(sc: &Scenario) -> f64 {
    let n = sc.jobs.len();
    (0..n)
        .map(|i| sc.stats(i).tail_mean(5) / sc.ideal_period(i).as_secs_f64())
        .sum::<f64>()
        / n as f64
}

/// The bandwidth at which jobs in this repository are modelled.
pub fn bottleneck() -> Bandwidth {
    models::paper_bottleneck()
}

/// One fault class × severity for the recovery experiments — the shared
/// vocabulary of `exp_fault_recovery` and the chaos integration tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultCase {
    /// Fault-free control.
    None,
    /// Bottleneck hard down for `outage` starting at `at`.
    LinkFlap {
        /// Fault onset.
        at: SimTime,
        /// Outage length.
        outage: SimDuration,
    },
    /// Bottleneck serialization at `factor` × nominal for `window`.
    Brownout {
        /// Fault onset.
        at: SimTime,
        /// Window length.
        window: SimDuration,
        /// Rate multiplier in (0, 1].
        factor: f64,
    },
    /// Gilbert–Elliott bursty loss on the bottleneck for `window`.
    BurstyLoss {
        /// Fault onset.
        at: SimTime,
        /// Window length.
        window: SimDuration,
        /// The two-state loss model.
        model: GilbertElliott,
    },
    /// Job `job` crashes before iteration `at_iter` and restarts after
    /// `outage` (checkpoint restore; no iterations lost).
    JobRestart {
        /// Index of the job in the mix.
        job: usize,
        /// 0-based iteration before which the job pauses.
        at_iter: u32,
        /// Downtime before the job resumes.
        outage: SimDuration,
    },
}

impl FaultCase {
    /// Short label for tables and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            FaultCase::None => "none",
            FaultCase::LinkFlap { .. } => "link_flap",
            FaultCase::Brownout { .. } => "brownout",
            FaultCase::BurstyLoss { .. } => "bursty_loss",
            FaultCase::JobRestart { .. } => "job_restart",
        }
    }

    /// Builds a faulted scenario from a mix and a plan kind.
    pub fn scenario(&self, seed: u64, jobs: Vec<JobSpec>, plan: &PlanKind) -> Scenario {
        self.builder(seed, jobs, plan).build()
    }

    /// [`FaultCase::scenario`] as a builder, so callers can tweak
    /// transport knobs (e.g. `max_rto`) before `build()`: job-restart
    /// faults edit the specs *before* the builder clones them, link
    /// faults attach to the builder afterwards.
    pub fn builder(&self, seed: u64, mut jobs: Vec<JobSpec>, plan: &PlanKind) -> ScenarioBuilder {
        if let FaultCase::JobRestart {
            job,
            at_iter,
            outage,
        } = *self
        {
            jobs[job].restart = Some(mltcp_workload::RestartSpec { at_iter, outage });
        }
        let b = match plan {
            PlanKind::Uniform(cc) => uniform_builder(seed, jobs, cc.clone()),
            PlanKind::CassiniStatic => cassini_static_builder(seed, jobs),
        };
        match *self {
            FaultCase::None | FaultCase::JobRestart { .. } => b,
            FaultCase::LinkFlap { at, outage } => b.bottleneck_fault(LinkFault::Down {
                at,
                duration: outage,
            }),
            FaultCase::Brownout { at, window, factor } => b.bottleneck_fault(LinkFault::Brownout {
                at,
                duration: window,
                factor,
            }),
            FaultCase::BurstyLoss { at, window, model } => {
                b.bottleneck_fault(LinkFault::BurstyLoss {
                    at,
                    duration: window,
                    model,
                })
            }
        }
    }
}

/// Which scheduling plan carries the mix in a fault experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// Every job runs the same distributed congestion control.
    Uniform(CongestionSpec),
    /// Static Cassini offsets, plain Reno, no pacing (not recomputed
    /// after faults).
    CassiniStatic,
}

impl PlanKind {
    /// Short label for tables and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::Uniform(cc) => cc.label(),
            PlanKind::CassiniStatic => "cassini-static",
        }
    }
}

/// Iterations a duration series needed to re-converge after a fault.
///
/// `fault_idx` is the first iteration whose duration could have been
/// affected. The baseline is the mean of the (up to 5) durations
/// immediately before it. Both sides are smoothed: the post-fault series
/// is compared through a trailing 5-iteration mean, so a single noisy
/// iteration neither triggers nor masks a violation. The answer counts
/// post-fault iterations up to and including the *last* smoothed point
/// exceeding `baseline × (1 + rel_tol)`. `Some(0)` = never perturbed
/// beyond tolerance; `None` = no pre-fault baseline, or still violating
/// at the end of the series (did not recover within the run).
pub fn reconverge_after(durations: &[f64], fault_idx: usize, rel_tol: f64) -> Option<usize> {
    const WINDOW: usize = 5;
    if fault_idx == 0 || fault_idx >= durations.len() {
        return None;
    }
    let pre = &durations[..fault_idx];
    let take = pre.len().min(WINDOW);
    let baseline: f64 = pre[pre.len() - take..].iter().sum::<f64>() / take as f64;
    let bound = baseline * (1.0 + rel_tol);
    let mut last_bad = None;
    for i in fault_idx..durations.len() {
        let lo = (i + 1).saturating_sub(WINDOW).max(fault_idx);
        let smoothed: f64 = durations[lo..=i].iter().sum::<f64>() / (i + 1 - lo) as f64;
        if smoothed > bound {
            last_bad = Some(i);
        }
    }
    match last_bad {
        None => Some(0),
        Some(i) if i + 1 < durations.len() => Some(i + 1 - fault_idx),
        Some(_) => None,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_01b3;

fn fnv1a(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a fingerprint of a finished scenario: every iteration record of
/// every job plus the simulator's delivery/drop counters and final clock.
///
/// Two runs of the same scenario hash equal iff their event sequences
/// were identical — the repository's determinism contract. The telemetry
/// determinism tests compare this hash across sink configurations
/// (no sink / no-op / ring / JSONL) to prove sinks observe without
/// perturbing; `replay_hash` prints it for CI's run-twice check.
pub fn scenario_replay_hash(sc: &Scenario) -> u64 {
    let mut hash = FNV_OFFSET;
    for job in &sc.jobs {
        let driver = sc.sim.agent::<mltcp_workload::JobDriver>(job.driver);
        for r in driver.records() {
            fnv1a(&mut hash, u64::from(r.index));
            fnv1a(&mut hash, r.start.as_nanos());
            fnv1a(&mut hash, r.comm_start.as_nanos());
            fnv1a(&mut hash, r.end.as_nanos());
        }
    }
    let stats = sc.sim.stats();
    fnv1a(&mut hash, stats.delivered);
    fnv1a(&mut hash, stats.dropped);
    fnv1a(&mut hash, sc.sim.now().as_nanos());
    hash
}

/// Everything a figure binary needs from a finished scenario, as plain
/// `Send` data.
///
/// `Scenario` holds `Box<dyn Agent>` and deliberately never leaves the
/// sweep worker that built it (see `mltcp_workload::sweep`); workers
/// return this summary instead and the main thread assembles figures
/// from it in input order.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-job report rows, in job order.
    pub jobs: Vec<JobReport>,
    /// Per-job analytic ideal period (seconds), aligned with `jobs`.
    pub ideals: Vec<f64>,
    /// Per-job full iteration-duration series (seconds).
    pub durations: Vec<Vec<f64>>,
    /// Mean steady-state iteration ratio across jobs.
    pub mean_steady_ratio: f64,
}

/// Extracts a [`RunSummary`] from a finished scenario.
pub fn summarize_run(sc: &Scenario) -> RunSummary {
    let n = sc.jobs.len();
    RunSummary {
        jobs: sc.reports(),
        ideals: (0..n).map(|i| sc.ideal_period(i).as_secs_f64()).collect(),
        durations: (0..n).map(|i| sc.stats(i).durations().to_vec()).collect(),
        mean_steady_ratio: mean_steady_ratio(sc),
    }
}

/// Prints the compact per-job table for a summarized run, normalized by
/// each job's analytic ideal period.
pub fn print_summary_table(label: &str, rs: &RunSummary) {
    println!("-- {label}");
    println!(
        "   {:<16} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "job", "ideal(ms)", "mean(x)", "steady(x)", "p99(x)", "conv"
    );
    for (r, &ideal) in rs.jobs.iter().zip(&rs.ideals) {
        println!(
            "   {:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            r.name,
            ideal * 1e3,
            r.mean_secs / ideal,
            r.steady_secs / ideal,
            r.p99_secs / ideal,
            r.converged_after
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
}
