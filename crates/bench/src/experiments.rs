//! Shared experiment constructors used by the figure binaries and the
//! repository's integration tests — one canonical definition per paper
//! scenario, so every consumer measures exactly the same system.

use crate::default_noise;
use mltcp_netsim::link::Bandwidth;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_sched::cassini;
use mltcp_sched::pfabric::apply_pfabric;
use mltcp_workload::job::JobSpec;
use mltcp_workload::models;
use mltcp_workload::scenario::{CongestionSpec, Scenario, ScenarioBuilder};
use mltcp_workload::stats::JobReport;

/// The pacing factor used by the enforced-Cassini runs: planned periods
/// are `1.16 ×` the analytic ideal, covering the transport's measured
/// isolation overhead (~12% for the 2-burst GPT-3 profile) with margin so
/// every job can actually hold its planned slot.
pub const CASSINI_PACE_FACTOR: f64 = 1.16;

/// The RTT hint used to size pFabric queues/windows at the default
/// topology (3 hops × 2 µs each way).
pub fn rtt_hint() -> SimDuration {
    SimDuration::micros(12)
}

/// The Fig. 2 job mix (GPT-3 + 3×GPT-2) with 1% compute noise.
pub fn fig2_jobs(scale: f64, iters: u32) -> Vec<JobSpec> {
    let rate = models::paper_bottleneck();
    models::fig2_mix(rate, scale, iters)
        .into_iter()
        .map(|j| {
            let noise = default_noise(j.compute_time);
            j.with_noise(noise)
        })
        .collect()
}

/// `n` GPT-2 jobs with 1% compute noise (Figs. 3, 4, 6).
pub fn gpt2_jobs(scale: f64, iters: u32, n: usize) -> Vec<JobSpec> {
    let rate = models::paper_bottleneck();
    models::gpt2_pack(rate, scale, iters, n)
        .into_iter()
        .map(|j| {
            let noise = default_noise(j.compute_time);
            j.with_noise(noise)
        })
        .collect()
}

/// Builds a synchronized-start scenario with one congestion control for
/// all jobs.
pub fn uniform_scenario(seed: u64, jobs: Vec<JobSpec>, cc: CongestionSpec) -> Scenario {
    let mut b = ScenarioBuilder::new(seed);
    for j in jobs {
        b = b.job(j, cc.clone());
    }
    b.build()
}

/// Builds the enforced-Cassini scenario: the centralized optimizer picks
/// communication offsets, the driver paces every job to its planned
/// (derated) period, and flows run plain Reno — no contention remains to
/// manage.
pub fn cassini_scenario(seed: u64, jobs: Vec<JobSpec>) -> Scenario {
    let rate = models::paper_bottleneck();
    let periodic: Vec<_> = jobs.iter().map(|j| j.to_periodic(rate)).collect();
    let sched = cassini::optimize_offsets(&periodic, 240, 8192);
    let computes: Vec<_> = jobs.iter().map(|j| j.compute_time).collect();
    let periods: Vec<f64> = periodic.iter().map(|p| p.period).collect();
    let offsets = cassini::driver_offsets(&sched, &computes, &periods);
    let mut b = ScenarioBuilder::new(seed);
    for (mut j, off) in jobs.into_iter().zip(offsets) {
        let pace = j.ideal_period(rate).mul_f64(CASSINI_PACE_FACTOR);
        j.start_offset = off.mul_f64(CASSINI_PACE_FACTOR);
        j = j.with_pace(pace);
        b = b.job(j, CongestionSpec::Reno);
    }
    b.build()
}

/// Builds the pFabric scenario: strict-priority bottleneck, remaining-
/// bytes tags, line-rate initial windows.
pub fn pfabric_scenario(seed: u64, jobs: Vec<JobSpec>) -> Scenario {
    let rate = models::paper_bottleneck();
    let mut b = ScenarioBuilder::new(seed);
    for j in jobs {
        b = b.job(j, CongestionSpec::Reno);
    }
    apply_pfabric(b, rate, rtt_hint()).build()
}

/// A generous deadline for `iters` iterations of the slowest job in a
/// mix at time `scale`.
pub fn mix_deadline(scale: f64, iters: u32) -> SimTime {
    SimTime::from_secs_f64(1.8 * scale * (f64::from(iters) + 12.0) * 4.0)
}

/// Mean of each job's steady-state iteration time divided by its ideal.
pub fn mean_steady_ratio(sc: &Scenario) -> f64 {
    let n = sc.jobs.len();
    (0..n)
        .map(|i| sc.stats(i).tail_mean(5) / sc.ideal_period(i).as_secs_f64())
        .sum::<f64>()
        / n as f64
}

/// The bandwidth at which jobs in this repository are modelled.
pub fn bottleneck() -> Bandwidth {
    models::paper_bottleneck()
}

/// Everything a figure binary needs from a finished scenario, as plain
/// `Send` data.
///
/// `Scenario` holds `Box<dyn Agent>` and deliberately never leaves the
/// sweep worker that built it (see `mltcp_workload::sweep`); workers
/// return this summary instead and the main thread assembles figures
/// from it in input order.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-job report rows, in job order.
    pub jobs: Vec<JobReport>,
    /// Per-job analytic ideal period (seconds), aligned with `jobs`.
    pub ideals: Vec<f64>,
    /// Per-job full iteration-duration series (seconds).
    pub durations: Vec<Vec<f64>>,
    /// Mean steady-state iteration ratio across jobs.
    pub mean_steady_ratio: f64,
}

/// Extracts a [`RunSummary`] from a finished scenario.
pub fn summarize_run(sc: &Scenario) -> RunSummary {
    let n = sc.jobs.len();
    RunSummary {
        jobs: sc.reports(),
        ideals: (0..n).map(|i| sc.ideal_period(i).as_secs_f64()).collect(),
        durations: (0..n).map(|i| sc.stats(i).durations().to_vec()).collect(),
        mean_steady_ratio: mean_steady_ratio(sc),
    }
}

/// Prints the compact per-job table for a summarized run, normalized by
/// each job's analytic ideal period.
pub fn print_summary_table(label: &str, rs: &RunSummary) {
    println!("-- {label}");
    println!(
        "   {:<16} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "job", "ideal(ms)", "mean(x)", "steady(x)", "p99(x)", "conv"
    );
    for (r, &ideal) in rs.jobs.iter().zip(&rs.ideals) {
        println!(
            "   {:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            r.name,
            ideal * 1e3,
            r.mean_secs / ideal,
            r.steady_secs / ideal,
            r.p99_secs / ideal,
            r.converged_after
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
}
