//! **Figure 5** — the analytic shift and loss functions of §4.
//!
//! Regenerates (c): the loss landscape `Loss(Δ) = −∫Shift dΔ` for two
//! identical jobs with `a = 1/2`, which is maximal at Δ = 0 (full
//! overlap), minimal at Δ = T/2 (full interleaving), and symmetric.
//! Also emits the shift curve itself (Eq. 3) and cross-checks the closed
//! form against numeric quadrature. The 361 grid points are independent
//! (the quadrature cross-check dominates the cost), so the grid fans out
//! over [`SweepRunner`] workers.

use mltcp_bench::{Figure, Series};
use mltcp_core::loss::{loss_by_quadrature, LossFunction};
use mltcp_core::params::MltcpParams;
use mltcp_core::shift::ShiftFunction;
use mltcp_workload::SweepRunner;

fn main() {
    // Paper geometry: GPT-2-like period, a = 1/2 as in Fig. 5(c).
    let period = 1.8;
    let shift = ShiftFunction::new(MltcpParams::PAPER, period, 0.5).expect("valid geometry");
    let loss = LossFunction::new(shift);

    let mut fig = Figure::new(
        "fig5_shift_loss",
        "Shift(Δ) (Eq. 3) and the loss landscape Loss(Δ) (Eq. 4 / Fig. 5c)",
    );

    let n = 361;
    let idxs: Vec<usize> = (0..n).collect();
    let grid = SweepRunner::new().run(&idxs, |_, &i| {
        let d = period * i as f64 / (n - 1) as f64;
        let closed_vs_numeric = if d <= shift.comm_duration() {
            let numeric = loss_by_quadrature(|x| shift.eval(x), d, 2000);
            (loss.eval(d) - numeric).abs()
        } else {
            0.0
        };
        (
            d,
            shift.eval_periodic(d),
            loss.eval_periodic(d),
            closed_vs_numeric,
        )
    });

    let shift_pts: Vec<(f64, f64)> = grid.iter().map(|&(d, s, _, _)| (d, s)).collect();
    let loss_pts: Vec<(f64, f64)> = grid.iter().map(|&(d, _, l, _)| (d, l)).collect();
    let max_closed_vs_numeric = grid.iter().map(|&(_, _, _, e)| e).fold(0.0f64, f64::max);
    fig.push_series(Series::from_xy("Shift(Δ), periodic", shift_pts.clone()));
    fig.push_series(Series::from_xy("Loss(Δ), periodic", loss_pts.clone()));

    // Landscape checks matching the figure.
    let at_zero = loss.eval_periodic(0.0);
    let at_half = loss.eval_periodic(period / 2.0);
    let min_loss = loss_pts
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::INFINITY, f64::min);
    let argmin = loss_pts
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(x, _)| x)
        .unwrap_or(f64::NAN);
    fig.metric("Loss(0) (max, full overlap)", at_zero);
    fig.metric("Loss(T/2) (min, interleaved)", at_half);
    fig.metric("argmin of Loss (expect T/2 = 0.9)", argmin);
    fig.metric("basin depth", loss.basin_depth());
    fig.metric("max |closed-form - quadrature|", max_closed_vs_numeric);
    fig.metric("max per-iteration shift", shift.max_shift());
    assert!(
        (argmin - period / 2.0).abs() < period / (n as f64),
        "minimum must sit at T/2"
    );
    assert!(at_half < at_zero && (at_half - min_loss).abs() < 1e-9);

    fig.note("closed form: Loss(x) = x²/2 − (b+k)x + k(b+k)·ln(1 + x/k), b = aT, k = b·I/S");
    fig.finish();
}
