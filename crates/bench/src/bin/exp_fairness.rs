//! **§5 fairness** — throughput vs loss probability for Reno vs
//! MLTCP-Reno.
//!
//! The paper: "TCP's throughput is inversely proportional to the square
//! root of loss probability. Our analysis shows that the throughput of
//! our MLTCP-Reno flows is inversely proportional to the loss
//! probability. Intuitively, this implies that given the same packet
//! loss probability, an MLTCP-Reno flow claims more bandwidth share than
//! a standard Reno flow."
//!
//! We run one periodic flow over a Bernoulli-loss link (the random-loss
//! model behind the Mathis et al. formula the paper cites; the link is
//! fast enough never to saturate, so loss — not capacity — limits the
//! window). Sweeping `p` and fitting log-log slopes: Reno shows the
//! classic ≈ −0.5; MLTCP-Reno falls off *faster* (toward −1), because at
//! high loss its flows are pinned at low `bytes_ratio` (gain ≈ 0.25)
//! while at low loss they race to `bytes_ratio ≈ 1` (gain ≈ 2) — the
//! same-loss bandwidth-share ratio therefore *grows* as loss falls,
//! which is the §5 unfairness the paper warns legacy traffic about.
//!
//! The 36 single-flow simulations (2 CCs × 6 loss points × 3 seeds) fan
//! out over [`SweepRunner`] workers; the analytic Part B stays on the
//! main thread.

use mltcp_bench::{seed, Figure, Series};
use mltcp_core::aggressiveness::Linear;
use mltcp_netsim::link::{Bandwidth, LinkSpec};
use mltcp_netsim::packet::{FlowId, Packet};
use mltcp_netsim::sim::{Agent, AgentCtx, AgentId, Simulator};
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_netsim::topology::TopologyBuilder;
use mltcp_transport::cc::{CongestionControl, Mltcp, MltcpConfig, Reno};
use mltcp_transport::proto::{self, Msg};
use mltcp_transport::sender::SenderConfig;
use mltcp_transport::{TcpReceiver, TcpSender};
use mltcp_workload::SweepRunner;

const ITER_BYTES: u64 = 4_500_000; // 3000 MTU per iteration
const GAP: SimDuration = SimDuration::millis(2);
const ITERS: u32 = 20;

/// Runs back-to-back transfers with a compute gap; records each
/// communication phase's span so throughput excludes idle time.
#[derive(Debug)]
struct PeriodicApp {
    sender: Option<AgentId>,
    remaining: u32,
    current_start: SimTime,
    spans: Vec<(SimTime, SimTime)>,
}

impl Agent for PeriodicApp {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.current_start = ctx.now();
        let s = self.sender.expect("wired");
        ctx.send_message(s, proto::encode(Msg::StartTransfer { bytes: ITER_BYTES }));
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, _from: AgentId, _token: u64) {
        self.spans.push((self.current_start, ctx.now()));
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining > 0 {
            ctx.set_timer(GAP, 1);
        }
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _token: u64) {
        self.current_start = ctx.now();
        let s = self.sender.expect("wired");
        ctx.send_message(s, proto::encode(Msg::StartTransfer { bytes: ITER_BYTES }));
    }
}

/// Returns average communication-phase throughput (bps).
fn run_flow(p: f64, cc: Box<dyn CongestionControl>, seed: u64) -> f64 {
    let mut b = TopologyBuilder::new();
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    // 100 Gbps: at the lowest p in the sweep Reno's equilibrium window is
    // still well below the BDP, so loss (not capacity) limits throughput.
    let rate = Bandwidth::gbps(100);
    b.directed(
        h0,
        h1,
        LinkSpec::new(rate, SimDuration::micros(20)).with_loss(p),
    );
    b.directed(h1, h0, LinkSpec::new(rate, SimDuration::micros(20)));
    let mut sim = Simulator::new(b.build().expect("connected"), seed);
    let app = sim.add_agent(
        h0,
        PeriodicApp {
            sender: None,
            remaining: ITERS,
            current_start: SimTime::ZERO,
            spans: Vec::new(),
        },
    );
    let mut cfg = SenderConfig::new(FlowId(1), h1);
    cfg.driver = Some(app);
    cfg.min_rto = SimDuration::micros(500);
    let sender = sim.add_agent(h0, TcpSender::new_boxed(cfg, cc));
    let receiver = sim.add_agent(h1, TcpReceiver::new(FlowId(1)));
    sim.bind_flow(FlowId(1), sender);
    sim.bind_flow(FlowId(1), receiver);
    sim.agent_mut::<PeriodicApp>(app).sender = Some(sender);

    mltcp_bench::attach_trace_sim(&mut sim, &format!("p{p}-s{seed}"));
    sim.run_until(SimTime::from_secs_f64(120.0));
    let spans = &sim.agent::<PeriodicApp>(app).spans;
    assert!(
        spans.len() >= (ITERS / 2) as usize,
        "p={p}: too few completed iterations ({})",
        spans.len()
    );
    let comm_time: f64 = spans.iter().map(|(s, e)| (*e - *s).as_secs_f64()).sum();
    spans.len() as f64 * ITER_BYTES as f64 * 8.0 / comm_time.max(1e-9)
}

fn loglog_slope(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in pts {
        let (lx, ly) = (x.ln(), y.max(1e-300).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let mut fig = Figure::new(
        "exp_fairness",
        "Throughput vs random loss p: Reno ~ p^-0.5, MLTCP-Reno steeper; share ratio grows as p falls (paper §5)",
    );
    let probs = [0.0005, 0.001, 0.002, 0.004, 0.008, 0.016];
    let labels = ["reno", "mltcp-reno"];
    // One sweep job per single-flow simulation: 2 CCs × 6 loss points ×
    // 3 repeat seeds, flattened in (cc, p, seed) nesting order.
    let mut configs: Vec<(usize, f64, u64)> = Vec::new();
    for cc_kind in 0..labels.len() {
        for (i, &p) in probs.iter().enumerate() {
            for s in 0..3u64 {
                configs.push((cc_kind, p, seed() + i as u64 * 10 + s));
            }
        }
    }
    let tputs = SweepRunner::new().run(&configs, |_, &(cc_kind, p, sd)| {
        let cc: Box<dyn CongestionControl> = if cc_kind == 0 {
            Box::new(Reno::new())
        } else {
            Box::new(Mltcp::new(
                Reno::new(),
                Linear::paper_default(),
                MltcpConfig::oracle(ITER_BYTES, SimDuration::millis(1)),
            ))
        };
        run_flow(p, cc, sd)
    });

    let mut curves: Vec<Vec<(f64, f64)>> = Vec::new();
    for (cc_kind, &label) in labels.iter().enumerate() {
        let mut pts = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            let base = cc_kind * probs.len() * 3 + i * 3;
            let tput = tputs[base..base + 3].iter().sum::<f64>() / 3.0;
            pts.push((p, tput / 1e9));
            fig.metric(format!("{label}: p={p} throughput (Gbps)"), tput / 1e9);
        }
        let slope = loglog_slope(&pts);
        fig.metric(format!("{label}: log-log slope (throughput vs p)"), slope);
        fig.push_series(Series::from_xy(
            format!("{label} throughput (Gbps)"),
            pts.clone(),
        ));
        curves.push(pts);
    }

    let reno_slope = loglog_slope(&curves[0]);
    let mltcp_slope = loglog_slope(&curves[1]);
    fig.metric("slope separation (mltcp - reno)", mltcp_slope - reno_slope);

    // Same-loss bandwidth-share ratio: MLTCP / Reno, per p.
    let ratios: Vec<(f64, f64)> = curves[0]
        .iter()
        .zip(&curves[1])
        .map(|(&(p, r), &(_, m))| (p, m / r))
        .collect();
    for &(p, ratio) in &ratios {
        fig.metric(format!("share ratio (mltcp/reno) at p={p}"), ratio);
    }
    fig.push_series(Series::from_xy("share ratio mltcp/reno", ratios.clone()));

    // Part A finding (documented, not asserted beyond sanity): in the
    // *completion-clocked* regime — the iteration ends when the transfer
    // completes, so a slower flow simply takes longer — averaging the
    // Mathis rate over the ratio trajectory gives
    //   T_avg = T_reno / ∫₀¹ F(r)^{-1/2} dr ≈ 0.96 · T_reno
    // with the SAME p^{-1/2} exponent. Both measured slopes must sit in
    // the Reno band.
    assert!(
        (-0.65..-0.25).contains(&reno_slope) && (-0.65..-0.25).contains(&mltcp_slope),
        "both completion-clocked slopes should be ≈ -0.5: {reno_slope}, {mltcp_slope}"
    );

    // Part B — the paper's regime. §5's 1/p claim holds when the
    // iteration clock is FIXED by the job's schedule (compute phase and
    // the cluster's interleaving), so `bytes_ratio` at a given point of
    // the iteration is proportional to the throughput achieved so far:
    // r ≈ T·t*/total. The self-consistent Mathis fixed point
    //   T = (k/√p) · √F(min(1, T·t*/total))
    // then has a regime where T ∝ 1/p: substituting F = S·r + I and
    // r = T·t*/total gives T² ≈ (k²/p)·S·T·t*/total ⇒ T ∝ 1/p until the
    // ratio saturates at 1.
    // Constants chosen to put the ratio-saturation crossover mid-sweep;
    // the §5 analysis neglects the intercept (it only guarantees
    // non-starvation), so part B uses F ≈ Slope·r.
    let k = 2.0e8_f64; // Mathis constant MSS·sqrt(3/2)/RTT, in bps·√p
    let t_star_over_total = 1.94e-10_f64; // schedule position / iteration bytes
    let mut analytic = Vec::new();
    for i in 0..40 {
        let p = 1e-4 * 10f64.powf(i as f64 / 13.0); // 1e-4 .. ~1e-1
        let mut t = 1e9_f64;
        for _ in 0..500 {
            let r = (t * t_star_over_total).min(1.0);
            let f = 1.75 * r + 1e-6;
            t = k / p.sqrt() * f.sqrt();
        }
        analytic.push((p, t / 1e9));
    }
    // Slope in the unsaturated (high-p) region vs the saturated one.
    let unsat: Vec<(f64, f64)> = analytic
        .iter()
        .copied()
        .filter(|&(_, t)| t * 1e9 * t_star_over_total < 0.9)
        .collect();
    let sat: Vec<(f64, f64)> = analytic
        .iter()
        .copied()
        .filter(|&(_, t)| t * 1e9 * t_star_over_total >= 0.999)
        .collect();
    if unsat.len() >= 3 {
        let s_unsat = loglog_slope(&unsat);
        fig.metric(
            "analytic schedule-clocked slope (unsaturated, expect ~-1)",
            s_unsat,
        );
        assert!(
            s_unsat < -0.8,
            "the schedule-clocked model must show ~1/p scaling, got {s_unsat}"
        );
    }
    if sat.len() >= 3 {
        fig.metric(
            "analytic schedule-clocked slope (ratio saturated, expect ~-0.5)",
            loglog_slope(&sat),
        );
    }
    fig.push_series(Series::from_xy(
        "analytic schedule-clocked T(p) (Gbps)",
        analytic,
    ));

    fig.note(
        "paper: Reno ∝ 1/√p, MLTCP-Reno ∝ 1/p. Part A (packet-level,          completion-clocked) measures ≈ p^-0.5 for both with a ~0.96          constant, matching the trajectory-averaged Mathis analysis; Part          B reproduces the paper's 1/p in the schedule-clocked model its          §5 analysis assumes. See EXPERIMENTS.md for the discussion.",
    );
    fig.finish();
}
