//! **Figure 2** — four DNN jobs (GPT-3 + 3×GPT-2) under four schedulers:
//! (a) the centralized optimal (Cassini-style enforced interleaving),
//! (b) SRPT (pFabric), (c) MLTCP-Reno, plus plain Reno as the
//! uncoordinated baseline.
//!
//! Paper claims reproduced here:
//! * Cassini achieves the ideal iteration times (J1 ≈ 1.2 s·scale,
//!   J2–J4 ≈ 1.8 s·scale);
//! * MLTCP converges, distributedly, to within a few percent of the
//!   centralized schedule's *average* iteration time (§2: "within 5% of
//!   the optimal centralized schedule"), within tens of iterations;
//! * pFabric's SRPT systematically delays J1 (the job with the largest
//!   transfers) — the paper reports a 1.5× slowdown.

use mltcp_bench::experiments::{
    cassini_scenario, fig2_jobs, mean_steady_ratio, mix_deadline, pfabric_scenario,
    uniform_scenario,
};
use mltcp_bench::{iters_or, print_job_table, scale, seed, Figure, Series};
use mltcp_workload::scenario::{CongestionSpec, FnSpec};

fn main() {
    let scale = scale();
    let iters = iters_or(80);
    let deadline = mix_deadline(scale, iters);
    let mut fig = Figure::new(
        "fig2_schedules",
        "Scheduling 4 DNN jobs: Cassini vs pFabric vs MLTCP vs Reno (paper Fig. 2)",
    );

    let run = |label: &str, mut sc: mltcp_workload::Scenario, fig: &mut Figure| -> f64 {
        sc.run(deadline);
        assert!(sc.all_finished(), "{label}: jobs did not finish");
        print_job_table(label, &sc);
        for (i, r) in sc.reports().iter().enumerate() {
            let ideal = sc.ideal_period(i).as_secs_f64();
            fig.metric(
                format!("{label}: {} steady (x ideal)", r.name),
                r.steady_secs / ideal,
            );
            fig.push_series(Series::from_y(
                format!("{label}: {} iteration times (x ideal)", r.name),
                sc.stats(i).durations().iter().map(|d| d / ideal).collect(),
            ));
            if let Some(c) = r.converged_after {
                fig.metric(format!("{label}: {} converged_after", r.name), c as f64);
            }
        }
        mean_steady_ratio(&sc)
    };

    let reno = run(
        "reno",
        uniform_scenario(seed(), fig2_jobs(scale, iters), CongestionSpec::Reno),
        &mut fig,
    );
    let mltcp = run(
        "mltcp-reno",
        uniform_scenario(
            seed(),
            fig2_jobs(scale, iters),
            CongestionSpec::MltcpReno(FnSpec::Paper),
        ),
        &mut fig,
    );
    let cassini = run(
        "cassini",
        cassini_scenario(seed(), fig2_jobs(scale, iters)),
        &mut fig,
    );
    let pfabric = run(
        "pfabric",
        pfabric_scenario(seed(), fig2_jobs(scale, iters)),
        &mut fig,
    );

    fig.metric("mean steady ratio: reno", reno);
    fig.metric("mean steady ratio: mltcp-reno", mltcp);
    fig.metric("mean steady ratio: cassini (optimal)", cassini);
    fig.metric("mean steady ratio: pfabric", pfabric);
    fig.metric("mltcp vs cassini gap (avg, %)", (mltcp / cassini - 1.0) * 100.0);
    fig.note(
        "paper: Cassini = optimal; MLTCP within ~5% of it on average; \
         pFabric slows J1 ~1.5x. Expected shape: cassini <= mltcp < reno, \
         and pfabric's J1 row well above the others'.",
    );
    fig.finish();
}
