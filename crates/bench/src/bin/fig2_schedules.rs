//! **Figure 2** — four DNN jobs (GPT-3 + 3×GPT-2) under four schedulers:
//! (a) the centralized optimal (Cassini-style enforced interleaving),
//! (b) SRPT (pFabric), (c) MLTCP-Reno, plus plain Reno as the
//! uncoordinated baseline.
//!
//! Paper claims reproduced here:
//! * Cassini achieves the ideal iteration times (J1 ≈ 1.2 s·scale,
//!   J2–J4 ≈ 1.8 s·scale);
//! * MLTCP converges, distributedly, to within a few percent of the
//!   centralized schedule's *average* iteration time (§2: "within 5% of
//!   the optimal centralized schedule"), within tens of iterations;
//! * pFabric's SRPT systematically delays J1 (the job with the largest
//!   transfers) — the paper reports a 1.5× slowdown.
//!
//! The four scheduler runs are independent simulations; they fan out
//! over [`SweepRunner`] workers and the figure is assembled from the
//! returned [`RunSummary`]s in input order.

use mltcp_bench::experiments::{
    cassini_scenario, fig2_jobs, mix_deadline, pfabric_scenario, print_summary_table,
    summarize_run, uniform_scenario,
};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_workload::scenario::{CongestionSpec, FnSpec};
use mltcp_workload::SweepRunner;

fn main() {
    let scale = scale();
    let iters = iters_or(80);
    let deadline = mix_deadline(scale, iters);
    let mut fig = Figure::new(
        "fig2_schedules",
        "Scheduling 4 DNN jobs: Cassini vs pFabric vs MLTCP vs Reno (paper Fig. 2)",
    );

    let variants = ["reno", "mltcp-reno", "cassini", "pfabric"];
    let summaries = SweepRunner::new().run(&variants, |_, &label| {
        let jobs = fig2_jobs(scale, iters);
        let mut sc = match label {
            "reno" => uniform_scenario(seed(), jobs, CongestionSpec::Reno),
            "mltcp-reno" => {
                uniform_scenario(seed(), jobs, CongestionSpec::MltcpReno(FnSpec::Paper))
            }
            "cassini" => cassini_scenario(seed(), jobs),
            _ => pfabric_scenario(seed(), jobs),
        };
        mltcp_bench::attach_trace(&mut sc, label);
        sc.run(deadline);
        assert!(sc.all_finished(), "{label}: jobs did not finish");
        summarize_run(&sc)
    });

    for (label, rs) in variants.iter().zip(&summaries) {
        print_summary_table(label, rs);
        for ((r, &ideal), durs) in rs.jobs.iter().zip(&rs.ideals).zip(&rs.durations) {
            fig.metric(
                format!("{label}: {} steady (x ideal)", r.name),
                r.steady_secs / ideal,
            );
            fig.push_series(Series::from_y(
                format!("{label}: {} iteration times (x ideal)", r.name),
                durs.iter().map(|d| d / ideal).collect(),
            ));
            if let Some(c) = r.converged_after {
                fig.metric(format!("{label}: {} converged_after", r.name), c as f64);
            }
        }
    }

    let reno = summaries[0].mean_steady_ratio;
    let mltcp = summaries[1].mean_steady_ratio;
    let cassini = summaries[2].mean_steady_ratio;
    let pfabric = summaries[3].mean_steady_ratio;

    fig.metric("mean steady ratio: reno", reno);
    fig.metric("mean steady ratio: mltcp-reno", mltcp);
    fig.metric("mean steady ratio: cassini (optimal)", cassini);
    fig.metric("mean steady ratio: pfabric", pfabric);
    fig.metric(
        "mltcp vs cassini gap (avg, %)",
        (mltcp / cassini - 1.0) * 100.0,
    );
    fig.note(
        "paper: Cassini = optimal; MLTCP within ~5% of it on average; \
         pFabric slows J1 ~1.5x. Expected shape: cassini <= mltcp < reno, \
         and pfabric's J1 row well above the others'.",
    );
    fig.finish();
}
