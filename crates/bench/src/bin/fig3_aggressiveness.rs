//! **Figure 3** — six candidate bandwidth aggressiveness functions.
//!
//! Three GPT-2 jobs share the bottleneck under MLTCP-Reno with each of
//! F1..F6. The paper shows the increasing functions (F1–F4) converging to
//! an interleaved state (iteration times fall after ~20 iterations) while
//! the decreasing controls (F5, F6) never improve. The six runs fan out
//! over [`SweepRunner`] workers, one per candidate function.

use mltcp_bench::experiments::{gpt2_jobs, mix_deadline, uniform_scenario};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_core::aggressiveness::{Aggressiveness, FigureFunction};
use mltcp_workload::scenario::{CongestionSpec, FnSpec};
use mltcp_workload::SweepRunner;

fn main() {
    let scale = scale();
    let iters = iters_or(60);
    let deadline = mix_deadline(scale, iters);
    let mut fig = Figure::new(
        "fig3_aggressiveness",
        "Iteration time vs iteration number for F1..F6 (paper Fig. 3)",
    );

    let runs = SweepRunner::new().run(&FigureFunction::ALL, |_, f| {
        let label = f.name().to_string();
        let mut sc = uniform_scenario(
            seed(),
            gpt2_jobs(scale, iters, 3),
            CongestionSpec::MltcpReno(FnSpec::Figure(f.clone())),
        );
        mltcp_bench::attach_trace(&mut sc, &label);
        sc.run(deadline);
        assert!(sc.all_finished(), "{label}: jobs did not finish");

        // Average iteration time across the three jobs, per iteration
        // index — exactly the y-axis of Fig. 3 (reported in ms of
        // simulated time).
        let per_job: Vec<Vec<f64>> = (0..3).map(|i| sc.stats(i).durations().to_vec()).collect();
        let n = per_job.iter().map(Vec::len).min().unwrap_or(0);
        let avg_ms: Vec<f64> = (0..n)
            .map(|k| per_job.iter().map(|d| d[k]).sum::<f64>() / 3.0 * 1e3)
            .collect();
        (label, f.is_increasing(), avg_ms)
    });

    for (label, increasing, avg_ms) in runs {
        let early = avg_ms.iter().take(5).sum::<f64>() / 5.0f64.min(avg_ms.len() as f64);
        let late_n = 10.min(avg_ms.len());
        let late = avg_ms[avg_ms.len() - late_n..].iter().sum::<f64>() / late_n as f64;
        fig.metric(format!("{label}: early avg (ms)"), early);
        fig.metric(format!("{label}: late avg (ms)"), late);
        fig.metric(
            format!("{label}: improvement (early/late)"),
            early / late.max(1e-12),
        );
        fig.metric(
            format!("{label}: is_increasing"),
            if increasing { 1.0 } else { 0.0 },
        );
        fig.push_series(Series::from_y(label, avg_ms));
    }

    fig.note(
        "paper shape: F1..F4 (increasing) interleave — iteration times fall \
         toward the ideal after ~20 iterations; F5/F6 (decreasing) do not \
         improve. Compare each function's early vs late averages.",
    );
    fig.finish();
}
