//! **Figure 1** — the on/off traffic pattern of each job in isolation.
//!
//! The paper plots per-job bandwidth vs time for J1 (GPT-3) and J2–J4
//! (GPT-2): periodic bursts to ~50 Gbps separated by compute silences,
//! with GPT-3 showing a multi-burst communication phase. We run each
//! profile alone on the 50 Gbps dumbbell and record the bottleneck's
//! per-flow bandwidth trace. The two isolated runs are independent, so
//! they fan out over [`SweepRunner`] workers.

use mltcp_bench::{deadline, iters_or, scale, seed, Figure, Series};
use mltcp_netsim::time::SimDuration;
use mltcp_workload::models;
use mltcp_workload::scenario::{CongestionSpec, ScenarioBuilder};
use mltcp_workload::SweepRunner;

/// The `Send` payload a worker returns for one isolated-job run.
struct IsoRun {
    name: String,
    comm_frac: f64,
    peak: f64,
    duty: f64,
    points: Vec<(f64, f64)>,
}

fn main() {
    let scale = scale();
    let iters = iters_or(4);
    let rate = models::paper_bottleneck();
    let mut fig = Figure::new(
        "fig1_traffic_patterns",
        "Per-job bandwidth vs time in isolation (paper Fig. 1)",
    );
    // Bin width: 1/100 of the GPT-2 period keeps the on/off shape crisp.
    let bin = SimDuration::from_secs_f64(1.8 * scale / 100.0);

    let runs = SweepRunner::new().run(&[0usize, 1], |_, &idx| {
        let job = match idx {
            0 => models::gpt3(rate, scale, iters),
            _ => models::gpt2(rate, scale, iters),
        };
        let name = job.name.clone();
        let period = job.ideal_period(rate).as_secs_f64();
        let comm_frac = job.comm_fraction(rate);
        let mut sc = ScenarioBuilder::new(seed() + idx as u64)
            .trace(bin)
            .job(job, CongestionSpec::Reno)
            .build();
        mltcp_bench::attach_trace(&mut sc, &name);
        sc.run(deadline(period * f64::from(iters) * 2.0));
        assert!(sc.all_finished(), "{name} did not finish");

        let trace = sc.sim.trace(sc.dumbbell.bottleneck).expect("trace on");
        let flow = sc.jobs[0].flows[0];
        let gbps = trace.gbps_series(flow);
        let t = trace.time_axis_secs();
        let points: Vec<(f64, f64)> = t.into_iter().zip(gbps.iter().copied()).collect();

        // Shape checks mirroring the figure: peaks near line rate,
        // silence between bursts.
        let peak = gbps.iter().copied().fold(0.0, f64::max);
        let busy_bins = gbps.iter().filter(|&&g| g > 1.0).count();
        let duty = busy_bins as f64 / gbps.len().max(1) as f64;
        IsoRun {
            name,
            comm_frac,
            peak,
            duty,
            points,
        }
    });

    for r in runs {
        fig.metric(format!("{}: peak_gbps", r.name), r.peak);
        fig.metric(format!("{}: duty_cycle", r.name), r.duty);
        fig.metric(format!("{}: nominal_comm_fraction", r.name), r.comm_frac);
        fig.push_series(Series::from_xy(r.name, r.points));
    }

    fig.note(format!(
        "time scale = {scale} of the paper's second-scale testbed; GPT-3's \
         comm phase is two sub-bursts per iteration (visible as paired \
         peaks), matching Fig. 1(a)'s multi-spike pattern"
    ));
    fig.finish();
}
