//! **§5 multi-resource generalization** — progress-based CPU-core
//! scheduling.
//!
//! The paper sketches replacing `bytes_ratio` with generic job *progress*
//! to schedule other resources; we run the CPU-core simulator
//! (`mltcp-sched::multires`) with the paper's F against fair sharing:
//! progress-based allocation interleaves the bursts (iteration times fall
//! to the ideal), fair sharing preserves the contended alignment.
//!
//! The job lists are drawn from the base RNG on the main thread (so the
//! draw order is fixed), then the four independent simulations (2-job and
//! 4-job, each progress-based and fair) fan out over [`SweepRunner`]
//! workers.

use mltcp_bench::{seed, Figure, Series};
use mltcp_core::aggressiveness::{Constant, Linear};
use mltcp_netsim::rng::SimRng;
use mltcp_sched::multires::{simulate, CpuJob};
use mltcp_workload::SweepRunner;

fn main() {
    let mut fig = Figure::new(
        "exp_multires",
        "Progress-based CPU-core allocation vs fair sharing (paper §5 generalization)",
    );

    // Two jobs, each: think 1 s, 8 core-seconds of burst work on an
    // 8-core box — ideal period 2 s, exactly compatible (a = 1/2 each).
    // Small deterministic stagger replaces network noise as tiebreaker.
    let mut rng = SimRng::new(seed());
    let jobs: Vec<CpuJob> = (0..2)
        .map(|_| CpuJob {
            think: 1.0,
            work: 8.0,
            max_parallelism: 8.0,
            offset: rng.uniform(0.0, 0.1),
        })
        .collect();
    let ideal = jobs[0].ideal_period();

    // Four-job, capped-parallelism variant (a = 1/4 each — compatible).
    let jobs4: Vec<CpuJob> = (0..4)
        .map(|_| CpuJob {
            think: 1.5,
            work: 4.0,
            max_parallelism: 8.0,
            offset: rng.uniform(0.0, 0.1),
        })
        .collect();
    let ideal4 = jobs4[0].ideal_period();

    // (two-job mix?, progress-based?) — input order mirrors the figure's
    // presentation order.
    let configs = [(true, true), (true, false), (false, true), (false, false)];
    let runs = SweepRunner::new().run(&configs, |_, &(two, progress)| {
        let (js, horizon) = if two {
            (&jobs[..], 120.0)
        } else {
            (&jobs4[..], 200.0)
        };
        if progress {
            simulate(js, 8.0, &Linear::paper_default(), horizon, 1e-3)
        } else {
            simulate(js, 8.0, &Constant(1.0), horizon, 1e-3)
        }
    });

    for (label, results) in [
        ("progress-based (F = 1.75r + 0.25)", &runs[0]),
        ("fair (F = 1)", &runs[1]),
    ] {
        for (i, r) in results.iter().enumerate() {
            let series: Vec<f64> = r.iteration_times.iter().map(|t| t / ideal).collect();
            fig.metric(
                format!("{label}: job{} steady (x ideal)", i + 1),
                r.tail_mean(5) / ideal,
            );
            fig.push_series(Series::from_y(
                format!("{label}: job{} iteration times (x ideal)", i + 1),
                series,
            ));
        }
        let avg =
            results.iter().map(|r| r.tail_mean(5)).sum::<f64>() / results.len() as f64 / ideal;
        fig.metric(format!("{label}: mean steady (x ideal)"), avg);
    }

    let pm = runs[2].iter().map(|r| r.tail_mean(5)).sum::<f64>() / 4.0 / ideal4;
    let fm = runs[3].iter().map(|r| r.tail_mean(5)).sum::<f64>() / 4.0 / ideal4;
    fig.metric("4 jobs: progress-based mean steady (x ideal)", pm);
    fig.metric("4 jobs: fair mean steady (x ideal)", fm);
    assert!(
        pm < fm,
        "progress-based allocation must beat fair sharing: {pm} vs {fm}"
    );

    fig.note("same sliding-into-interleaving dynamic as the network case, driven by job progress instead of bytes_ratio");
    fig.finish();
}
