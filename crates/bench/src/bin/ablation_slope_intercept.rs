//! **Ablation** — sensitivity to the aggressiveness function's Slope and
//! Intercept (the paper tunes them "based on the link rate and the noise
//! in the system" and ships 1.75/0.25).
//!
//! Six GPT-2 jobs (the Fig. 4 workload) under MLTCP-Reno with a grid of
//! `(slope, intercept)` pairs; reports steady-state mean iteration ratio
//! and convergence behaviour. Expected: a wide basin of working
//! parameters as long as the dynamic range is large (requirement (i)) —
//! tiny slopes (weak differentiation) or huge intercepts (flows nearly
//! uniform) degrade toward plain Reno. The six grid points fan out over
//! [`SweepRunner`] workers.

use mltcp_bench::experiments::{gpt2_jobs, mean_steady_ratio, mix_deadline, uniform_scenario};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_workload::scenario::{CongestionSpec, FnSpec};
use mltcp_workload::SweepRunner;

fn main() {
    let scale = scale();
    let iters = iters_or(50);
    let deadline = mix_deadline(scale, iters);
    let mut fig = Figure::new(
        "ablation_slope_intercept",
        "Steady-state mean iteration ratio vs (Slope, Intercept) — 6 GPT-2 jobs, MLTCP-Reno",
    );

    let grid = [
        (0.0, 1.0),   // no differentiation: degenerates to Reno
        (0.5, 0.25),  // weak slope
        (1.75, 0.25), // the paper's choice
        (1.75, 0.05), // tiny intercept: huge dynamic range
        (1.75, 1.0),  // large intercept: range only 2.75x
        (4.0, 0.25),  // steep slope
    ];
    let ratios = SweepRunner::new().run(&grid, |i, &(slope, intercept)| {
        let mut sc = uniform_scenario(
            seed() + i as u64,
            gpt2_jobs(scale, iters, 6),
            CongestionSpec::MltcpReno(FnSpec::Linear { slope, intercept }),
        );
        mltcp_bench::attach_trace(&mut sc, &format!("s{slope}-i{intercept}"));
        sc.run(deadline);
        assert!(sc.all_finished(), "S={slope} I={intercept}: did not finish");
        mean_steady_ratio(&sc)
    });

    let mut pts = Vec::new();
    for (i, (&(slope, intercept), &ratio)) in grid.iter().zip(&ratios).enumerate() {
        fig.metric(
            format!("S={slope} I={intercept}: mean steady (x ideal)"),
            ratio,
        );
        pts.push((i as f64, ratio));
    }
    fig.push_series(Series::from_xy(
        "mean steady ratio per grid point",
        pts.clone(),
    ));

    let reno_like = pts[0].1; // (0, 1) == plain Reno
    let paper = pts[2].1;
    fig.metric("paper params vs reno-equivalent (ratio)", paper / reno_like);
    assert!(
        paper < reno_like,
        "the paper's parameters must beat the degenerate (Reno) setting: {paper} vs {reno_like}"
    );
    fig.note("grid order: (0,1)=Reno-equivalent, (0.5,0.25), (1.75,0.25)=paper, (1.75,0.05), (1.75,1.0), (4,0.25)");
    fig.finish();
}
