//! **Performance report** — the tracked events/sec baseline.
//!
//! Measures the simulator's hot-path throughput (events processed per
//! wall-clock second) on a canonical contended workload, and the sweep
//! harness's parallel speedup (the same multi-seed sweep run inline and
//! on all cores), then writes `BENCH_PR1.json` at the repository root.
//! That file is the committed baseline: future performance PRs re-run
//! this binary (release profile, quiet machine) and compare. See
//! DESIGN.md § Performance for how to read and update it.
//!
//! ```text
//! cargo run --release -p mltcp-bench --bin perf_report
//! ```
//!
//! Knobs: `MLTCP_SCALE` / `MLTCP_ITERS` / `MLTCP_SEED` as in every other
//! figure binary, so the measured workload is reproducible.

use mltcp_bench::experiments::{gpt2_jobs, mix_deadline, uniform_scenario};
use mltcp_bench::json::Json;
use mltcp_bench::{iters_or, scale, seed};
use mltcp_workload::scenario::{CongestionSpec, FnSpec};
use mltcp_workload::SweepRunner;
use std::io::Write;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Instant;

/// Runs the canonical single-simulator workload (6 GPT-2 jobs sharing
/// the dumbbell under MLTCP-Reno) and returns (events, wall seconds).
fn single_run(scale: f64, iters: u32, sd: u64) -> (u64, f64) {
    let mut sc = uniform_scenario(
        sd,
        gpt2_jobs(scale, iters, 6),
        CongestionSpec::MltcpReno(FnSpec::Paper),
    );
    let t0 = Instant::now();
    sc.run(mix_deadline(scale, iters));
    let wall = t0.elapsed().as_secs_f64();
    assert!(sc.all_finished(), "perf workload did not finish");
    (sc.sim.stats().events, wall)
}

/// Runs the multi-seed sweep on `threads` workers and returns
/// (total events, wall seconds).
fn sweep_run(scale: f64, iters: u32, seeds: &[u64], threads: usize) -> (u64, f64) {
    let t0 = Instant::now();
    let events = SweepRunner::with_threads(threads).run(seeds, |_, &sd| {
        let mut sc = uniform_scenario(
            sd,
            gpt2_jobs(scale, iters, 6),
            CongestionSpec::MltcpReno(FnSpec::Paper),
        );
        sc.run(mix_deadline(scale, iters));
        assert!(
            sc.all_finished(),
            "seed {sd}: sweep workload did not finish"
        );
        sc.sim.stats().events
    });
    (events.iter().sum(), t0.elapsed().as_secs_f64())
}

fn main() {
    let scale = scale();
    let iters = iters_or(30);
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);

    // Warm up (page in code + allocator), then measure the single run.
    let _ = single_run(scale, iters.min(5), seed());
    let (events, wall) = single_run(scale, iters, seed());
    let single_eps = events as f64 / wall.max(1e-9);
    println!(
        "single simulator : {events} events in {wall:.3}s  ->  {:.3} M events/sec",
        single_eps / 1e6
    );

    // The sweep: one job per seed, inline vs all cores.
    let seeds: Vec<u64> = (0..8).map(|i| seed() + 7 * i).collect();
    let (seq_events, seq_wall) = sweep_run(scale, iters, &seeds, 1);
    let workers = SweepRunner::new().threads();
    let (par_events, par_wall) = sweep_run(scale, iters, &seeds, workers);
    assert_eq!(
        seq_events, par_events,
        "parallel sweep processed a different event count — determinism broken"
    );
    let speedup = seq_wall / par_wall.max(1e-9);
    println!(
        "sweep ({} jobs)   : sequential {seq_wall:.3}s, parallel {par_wall:.3}s on {workers} workers  ->  {speedup:.2}x",
        seeds.len()
    );

    let report = Json::obj([
        ("bench", Json::str("BENCH_PR1")),
        (
            "command",
            Json::str("cargo run --release -p mltcp-bench --bin perf_report"),
        ),
        ("cores", Json::Num(cores as f64)),
        ("scale", Json::Num(scale)),
        ("iters", Json::Num(f64::from(iters))),
        ("seed", Json::Num(seed() as f64)),
        (
            "single_thread",
            Json::obj([
                (
                    "scenario",
                    Json::str("6 GPT-2 jobs, MLTCP-Reno, shared dumbbell"),
                ),
                ("events", Json::Num(events as f64)),
                ("wall_secs", Json::Num(wall)),
                ("events_per_sec", Json::Num(single_eps)),
            ]),
        ),
        (
            "sweep",
            Json::obj([
                ("jobs", Json::Num(seeds.len() as f64)),
                ("workers", Json::Num(workers as f64)),
                ("total_events", Json::Num(seq_events as f64)),
                ("sequential_secs", Json::Num(seq_wall)),
                ("parallel_secs", Json::Num(par_wall)),
                ("speedup", Json::Num(speedup)),
                (
                    "events_per_sec_sequential",
                    Json::Num(seq_events as f64 / seq_wall.max(1e-9)),
                ),
                (
                    "events_per_sec_parallel",
                    Json::Num(par_events as f64 / par_wall.max(1e-9)),
                ),
            ]),
        ),
        (
            "notes",
            Json::Arr(vec![
                Json::str(
                    "events/sec covers the full stack: event queue, link \
                     serialization, queue disciplines, TCP state machines, \
                     MLTCP trackers, and job drivers",
                ),
                Json::str(
                    "the sweep speedup is bounded by the machine's core \
                     count; on a single-core runner sequential and parallel \
                     are the same code path",
                ),
            ]),
        ),
    ]);

    let path = bench_path();
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(report.to_string_pretty().as_bytes());
            println!("[written {}]", path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// `BENCH_PR1.json` at the workspace root when run via cargo, else the
/// current directory.
fn bench_path() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../BENCH_PR1.json"))
        .unwrap_or_else(|_| PathBuf::from("BENCH_PR1.json"))
}
