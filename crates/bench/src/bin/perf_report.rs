//! **Performance report** — the tracked events/sec baseline.
//!
//! Measures the simulator's hot-path throughput (events processed per
//! wall-clock second) on a canonical contended workload — on **both**
//! event engines, interleaved, best-of-N per engine — plus the sweep
//! harness's parallel speedup, then writes `BENCH_PR5.json` at the
//! repository root. That file is the committed baseline: future
//! performance PRs re-run this binary (release profile, quiet machine)
//! and compare. See DESIGN.md § Performance for how to read and update
//! it.
//!
//! Best-of-N, interleaved: shared CI boxes show ±30% run-to-run wall
//! clock noise, which a single pass cannot distinguish from a real
//! regression. Each engine runs `MLTCP_PERF_PASSES` (default 3) passes,
//! alternating heap/wheel so thermal or neighbour drift hits both
//! equally, and the minimum wall time per engine is the reported number
//! (the minimum estimates the noise-free cost; means smear the noise
//! back in).
//!
//! The duel doubles as a determinism check: every pass on either engine
//! must produce the same event count *and* the same replay hash, or the
//! engines have diverged and the throughput comparison is meaningless.
//!
//! ```text
//! cargo run --release -p mltcp-bench --bin perf_report
//! ```
//!
//! Knobs: `MLTCP_SCALE` / `MLTCP_ITERS` / `MLTCP_SEED` as in every other
//! figure binary, so the measured workload is reproducible. Set
//! `MLTCP_PERF_CHECK=<frac>` (e.g. `0.05`) to *check* the measured
//! wheel-engine throughput against the committed `BENCH_PR5.json`
//! instead of rewriting it — the binary exits non-zero when throughput
//! fell more than that fraction below the baseline.

use mltcp_bench::experiments::{
    gpt2_jobs, mix_deadline, scenario_replay_hash, uniform_builder, uniform_scenario,
};
use mltcp_bench::json::Json;
use mltcp_bench::{iters_or, scale, seed};
use mltcp_netsim::event::EngineKind;
use mltcp_telemetry::RingRecorder;
use mltcp_workload::scenario::{CongestionSpec, FnSpec, Scenario};
use mltcp_workload::SweepRunner;
use std::io::Write;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Instant;

/// The canonical single-simulator workload: 6 GPT-2 jobs sharing the
/// dumbbell under MLTCP-Reno, pinned to an explicit event engine.
fn build_workload(scale: f64, iters: u32, sd: u64, engine: EngineKind) -> Scenario {
    uniform_builder(
        sd,
        gpt2_jobs(scale, iters, 6),
        CongestionSpec::MltcpReno(FnSpec::Paper),
    )
    .engine(engine)
    .build()
}

/// One timed pass of the canonical workload. Telemetry stays detached —
/// this is the tracked baseline path. Returns (events, wall seconds,
/// replay hash).
fn single_pass(scale: f64, iters: u32, sd: u64, engine: EngineKind) -> (u64, f64, u64) {
    let mut sc = build_workload(scale, iters, sd, engine);
    let t0 = Instant::now();
    sc.run(mix_deadline(scale, iters));
    let wall = t0.elapsed().as_secs_f64();
    assert!(sc.all_finished(), "perf workload did not finish");
    (sc.sim.stats().events, wall, scenario_replay_hash(&sc))
}

/// Best-of-N result for one engine.
struct Measured {
    events: u64,
    best_wall: f64,
    hash: u64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.best_wall.max(1e-9)
    }
}

/// Runs `passes` interleaved heap/wheel passes and keeps the best wall
/// time per engine. Panics if any pass disagrees on event count or
/// replay hash — cross-engine equivalence is a precondition for the
/// throughput numbers meaning anything.
fn engine_duel(scale: f64, iters: u32, sd: u64, passes: usize) -> (Measured, Measured) {
    let mut best = [f64::INFINITY; 2];
    let mut baseline: Option<(u64, u64)> = None;
    let engines = [EngineKind::Heap, EngineKind::Wheel];
    for pass in 0..passes {
        for (slot, &engine) in engines.iter().enumerate() {
            let (events, wall, hash) = single_pass(scale, iters, sd, engine);
            match baseline {
                None => baseline = Some((events, hash)),
                Some((ev0, h0)) => {
                    assert_eq!(
                        events, ev0,
                        "{engine:?} pass {pass}: event count diverged between engines/passes"
                    );
                    assert_eq!(
                        hash, h0,
                        "{engine:?} pass {pass}: replay hash diverged — engines are not equivalent"
                    );
                }
            }
            best[slot] = best[slot].min(wall);
            println!(
                "  pass {pass} {engine:<5?}: {events} events in {wall:.3}s  ->  {:.3} M events/sec",
                events as f64 / wall.max(1e-9) / 1e6
            );
        }
    }
    let (events, hash) = baseline.expect("at least one pass");
    let m = |slot: usize| Measured {
        events,
        best_wall: best[slot],
        hash,
    };
    (m(0), m(1))
}

/// The same workload with a ring-buffer telemetry sink attached — the
/// enabled-path overhead measurement. Returns (events, wall seconds,
/// telemetry events recorded).
fn ring_run(scale: f64, iters: u32, sd: u64) -> (u64, f64, u64) {
    let mut sc = build_workload(scale, iters, sd, EngineKind::Wheel);
    sc.set_telemetry(Box::new(RingRecorder::new(1 << 16)));
    let t0 = Instant::now();
    sc.run(mix_deadline(scale, iters));
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        sc.all_finished(),
        "instrumented perf workload did not finish"
    );
    let recorded = sc
        .take_telemetry()
        .map(|sink| {
            let any = sink.into_any();
            any.downcast::<RingRecorder>()
                .map(|r| r.total_recorded())
                .unwrap_or(0)
        })
        .unwrap_or(0);
    (sc.sim.stats().events, wall, recorded)
}

/// The same workload under the sim-time profiler; returns the per-kind
/// wall-clock attribution.
fn profiled_run(scale: f64, iters: u32, sd: u64) -> mltcp_telemetry::ProfileSnapshot {
    let mut sc = build_workload(scale, iters, sd, EngineKind::Wheel);
    sc.sim.enable_profiler();
    sc.run(mix_deadline(scale, iters));
    assert!(sc.all_finished(), "profiled perf workload did not finish");
    sc.sim.profile_snapshot().expect("profiler enabled")
}

/// Extracts the first `events_per_sec` value from a committed benchmark
/// report without a JSON parser: the report writer always emits the
/// tracked single-thread number before any other `events_per_sec` key.
fn baseline_events_per_sec(text: &str) -> Option<f64> {
    json_number(text, "\"events_per_sec\"")
}

/// First numeric value following `key` in a committed report — enough
/// of a parser for the flat keys the report writer emits.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)?;
    let rest = &text[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Runs the multi-seed sweep on `threads` workers and returns
/// (total events, wall seconds).
fn sweep_run(scale: f64, iters: u32, seeds: &[u64], threads: usize) -> (u64, f64) {
    let t0 = Instant::now();
    let events = SweepRunner::with_threads(threads).run(seeds, |_, &sd| {
        let mut sc = uniform_scenario(
            sd,
            gpt2_jobs(scale, iters, 6),
            CongestionSpec::MltcpReno(FnSpec::Paper),
        );
        sc.run(mix_deadline(scale, iters));
        assert!(
            sc.all_finished(),
            "seed {sd}: sweep workload did not finish"
        );
        sc.sim.stats().events
    });
    (events.iter().sum(), t0.elapsed().as_secs_f64())
}

fn main() {
    let scale = scale();
    let iters = iters_or(30);
    let passes: usize = std::env::var("MLTCP_PERF_PASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);

    // Warm up (page in code + allocator) on both engines, then duel.
    let _ = single_pass(scale, iters.min(5), seed(), EngineKind::Heap);
    let _ = single_pass(scale, iters.min(5), seed(), EngineKind::Wheel);
    println!("engine duel (best of {passes} interleaved passes each):");
    let (heap, wheel) = engine_duel(scale, iters, seed(), passes);
    let wheel_eps = wheel.events_per_sec();
    let heap_eps = heap.events_per_sec();
    println!(
        "single simulator : wheel {:.3} M events/sec, heap {:.3} M  ->  wheel/heap {:.2}x  (replay {:016x})",
        wheel_eps / 1e6,
        heap_eps / 1e6,
        wheel_eps / heap_eps.max(1e-9),
        wheel.hash
    );

    // Telemetry-enabled overhead: the same workload with a ring sink.
    let (ring_events, ring_wall, recorded) = ring_run(scale, iters, seed());
    assert_eq!(
        wheel.events, ring_events,
        "a telemetry sink changed the event count — the observe-only contract is broken"
    );
    let ring_eps = ring_events as f64 / ring_wall.max(1e-9);
    println!(
        "with ring sink   : {recorded} telemetry events recorded  ->  {:.3} M events/sec ({:+.1}% vs disabled)",
        ring_eps / 1e6,
        (ring_eps / wheel_eps - 1.0) * 100.0
    );

    // Wall-clock attribution by event kind.
    let profile = profiled_run(scale, iters, seed());
    println!("profile (wall-clock by event kind):");
    println!(
        "  {:<14} {:>12} {:>10} {:>10} {:>7}",
        "kind", "events", "ms", "ns/event", "share"
    );
    for e in profile.by_time() {
        println!(
            "  {:<14} {:>12} {:>10.2} {:>10.1} {:>6.1}%",
            e.label,
            e.events,
            e.nanos as f64 / 1e6,
            e.ns_per_event(),
            profile.share(&e) * 100.0
        );
    }

    // Regression-check mode: compare against the committed baseline and
    // leave it untouched.
    if let Ok(frac) = std::env::var("MLTCP_PERF_CHECK") {
        let frac: f64 = frac.parse().unwrap_or(0.05);
        let path = bench_path();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("MLTCP_PERF_CHECK: cannot read {}: {e}", path.display()));
        let baseline = baseline_events_per_sec(&text)
            .expect("BENCH_PR5.json has single_thread.events_per_sec");
        let floor = baseline * (1.0 - frac);
        println!(
            "perf check       : measured {:.3} M events/sec vs baseline {:.3} M (floor {:.3} M at -{:.0}%)",
            wheel_eps / 1e6,
            baseline / 1e6,
            floor / 1e6,
            frac * 100.0
        );
        assert!(
            wheel_eps >= floor,
            "disabled-telemetry throughput regressed more than {:.0}% below the committed baseline",
            frac * 100.0
        );
        // The absolute floor is machine-speed-dependent, so it must stay
        // loose; the wheel/heap ratio — both engines measured interleaved
        // in the same window — is speed-invariant and pins the engine
        // overhaul's win tightly.
        if let Some(committed) = json_number(&text, "\"wheel_vs_heap\"") {
            let measured = wheel_eps / heap_eps.max(1e-9);
            let ratio_floor = committed - 0.15;
            println!(
                "perf check       : wheel/heap {measured:.2}x vs committed {committed:.2}x (floor {ratio_floor:.2}x)"
            );
            assert!(
                measured >= ratio_floor,
                "the wheel engine's advantage over the heap collapsed \
                 ({measured:.2}x measured vs {committed:.2}x committed)"
            );
        }
        println!("perf check       : OK (baseline left untouched)");
        return;
    }

    // The sweep: one job per seed, inline vs all cores.
    let seeds: Vec<u64> = (0..8).map(|i| seed() + 7 * i).collect();
    let (seq_events, seq_wall) = sweep_run(scale, iters, &seeds, 1);
    let workers = SweepRunner::new().threads();
    let (par_events, par_wall) = sweep_run(scale, iters, &seeds, workers);
    assert_eq!(
        seq_events, par_events,
        "parallel sweep processed a different event count — determinism broken"
    );
    let speedup = seq_wall / par_wall.max(1e-9);
    println!(
        "sweep ({} jobs)   : sequential {seq_wall:.3}s, parallel {par_wall:.3}s on {workers} workers  ->  {speedup:.2}x",
        seeds.len()
    );

    // The PR1 heap-only baseline this PR is measured against, when the
    // committed file is still present.
    let pr1_baseline = std::fs::read_to_string(pr1_path())
        .ok()
        .and_then(|t| baseline_events_per_sec(&t));

    let report = Json::obj([
        ("bench", Json::str("BENCH_PR5")),
        (
            "command",
            Json::str("cargo run --release -p mltcp-bench --bin perf_report"),
        ),
        ("cores", Json::Num(cores as f64)),
        ("scale", Json::Num(scale)),
        ("iters", Json::Num(f64::from(iters))),
        ("seed", Json::Num(seed() as f64)),
        ("passes", Json::Num(passes as f64)),
        (
            "single_thread",
            Json::obj([
                (
                    "scenario",
                    Json::str("6 GPT-2 jobs, MLTCP-Reno, shared dumbbell"),
                ),
                ("engine", Json::str("wheel")),
                ("events", Json::Num(wheel.events as f64)),
                ("wall_secs", Json::Num(wheel.best_wall)),
                ("events_per_sec", Json::Num(wheel_eps)),
                ("replay_hash", Json::str(format!("{:016x}", wheel.hash))),
            ]),
        ),
        (
            "heap_engine",
            Json::obj([
                ("events", Json::Num(heap.events as f64)),
                ("wall_secs", Json::Num(heap.best_wall)),
                ("events_per_sec", Json::Num(heap_eps)),
                ("replay_hash", Json::str(format!("{:016x}", heap.hash))),
            ]),
        ),
        ("wheel_vs_heap", Json::Num(wheel_eps / heap_eps.max(1e-9))),
        (
            "vs_pr1",
            match pr1_baseline {
                Some(b) => Json::obj([
                    ("baseline_events_per_sec", Json::Num(b)),
                    ("ratio", Json::Num(wheel_eps / b.max(1e-9))),
                ]),
                None => Json::str("BENCH_PR1.json not found"),
            },
        ),
        (
            "telemetry_overhead",
            Json::obj([
                ("sink", Json::str("ring recorder, 65536 events")),
                ("events", Json::Num(ring_events as f64)),
                ("wall_secs", Json::Num(ring_wall)),
                ("events_per_sec", Json::Num(ring_eps)),
                ("telemetry_events_recorded", Json::Num(recorded as f64)),
                (
                    "overhead_frac",
                    Json::Num(1.0 - ring_eps / wheel_eps.max(1e-9)),
                ),
            ]),
        ),
        (
            "profile",
            Json::Arr(
                profile
                    .by_time()
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("kind", Json::str(e.label)),
                            ("events", Json::Num(e.events as f64)),
                            ("nanos", Json::Num(e.nanos as f64)),
                            ("ns_per_event", Json::Num(e.ns_per_event())),
                            ("share", Json::Num(profile.share(e))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sweep",
            Json::obj([
                ("jobs", Json::Num(seeds.len() as f64)),
                ("workers", Json::Num(workers as f64)),
                ("total_events", Json::Num(seq_events as f64)),
                ("sequential_secs", Json::Num(seq_wall)),
                ("parallel_secs", Json::Num(par_wall)),
                ("speedup", Json::Num(speedup)),
                (
                    "events_per_sec_sequential",
                    Json::Num(seq_events as f64 / seq_wall.max(1e-9)),
                ),
                (
                    "events_per_sec_parallel",
                    Json::Num(par_events as f64 / par_wall.max(1e-9)),
                ),
            ]),
        ),
        (
            "notes",
            Json::Arr(vec![
                Json::str(
                    "events/sec covers the full stack: event queue, link \
                     serialization, queue disciplines, TCP state machines, \
                     MLTCP trackers, and job drivers",
                ),
                Json::str(
                    "single-thread numbers are best-of-N interleaved passes \
                     per engine; shared runners show +/-30% wall-clock noise \
                     on single passes",
                ),
                Json::str(
                    "heap and wheel engines must agree on event count and \
                     replay hash every pass; the duel enforces it",
                ),
                Json::str(
                    "the sweep speedup is bounded by the machine's core \
                     count; on a single-core runner sequential and parallel \
                     are the same code path",
                ),
            ]),
        ),
    ]);

    let path = bench_path();
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(report.to_string_pretty().as_bytes());
            println!("[written {}]", path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// `BENCH_PR5.json` at the workspace root when run via cargo, else the
/// current directory.
fn bench_path() -> PathBuf {
    workspace_file("BENCH_PR5.json")
}

/// The committed PR1 baseline, for the vs-PR1 ratio in the report.
fn pr1_path() -> PathBuf {
    workspace_file("BENCH_PR1.json")
}

fn workspace_file(name: &str) -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../..").join(name))
        .unwrap_or_else(|_| PathBuf::from(name))
}
