//! **Ablation** — MLTCP over other congestion control algorithms.
//!
//! §6: "Other congestion control schemes are augmented in a similar way
//! to induce shifts in communication start times." We apply the same
//! wrapper to CUBIC and DCTCP (the latter over an ECN-marking
//! bottleneck) and compare each augmented variant to its base on the
//! six-GPT-2 workload: the augmentation should improve (or at least not
//! hurt) every base.

use mltcp_bench::experiments::{gpt2_jobs, mean_steady_ratio, mix_deadline};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_netsim::queue::QueueKind;
use mltcp_workload::scenario::{CongestionSpec, FnSpec, ScenarioBuilder};

fn run(scale: f64, iters: u32, cc: CongestionSpec, seed: u64) -> f64 {
    let mut b = ScenarioBuilder::new(seed);
    if cc.needs_ecn() {
        // DCTCP: ECN marking at ~1/3 of the buffer.
        b = b.bottleneck_queue(QueueKind::EcnDropTail {
            cap_bytes: 300_000,
            mark_threshold_bytes: 100_000,
        });
    }
    for j in gpt2_jobs(scale, iters, 6) {
        b = b.job(j, cc.clone());
    }
    let mut sc = b.build();
    sc.run(mix_deadline(scale, iters));
    assert!(sc.all_finished(), "{}: did not finish", cc.label());
    mean_steady_ratio(&sc)
}

fn main() {
    let scale = scale();
    let iters = iters_or(50);
    let mut fig = Figure::new(
        "ablation_cc_variants",
        "MLTCP applied to Reno, CUBIC, and DCTCP — 6 GPT-2 jobs, steady-state mean ratio",
    );

    let pairs = [
        (CongestionSpec::Reno, CongestionSpec::MltcpReno(FnSpec::Paper)),
        (CongestionSpec::Cubic, CongestionSpec::MltcpCubic(FnSpec::Paper)),
        (CongestionSpec::Dctcp, CongestionSpec::MltcpDctcp(FnSpec::Paper)),
    ];
    let mut pts = Vec::new();
    for (i, (base, augmented)) in pairs.into_iter().enumerate() {
        let base_label = base.label();
        let r_base = run(scale, iters, base, seed() + i as u64);
        let r_aug = run(scale, iters, augmented, seed() + i as u64);
        fig.metric(format!("{base_label}: base steady (x ideal)"), r_base);
        fig.metric(format!("{base_label}: mltcp steady (x ideal)"), r_aug);
        fig.metric(format!("{base_label}: improvement (base/mltcp)"), r_base / r_aug);
        pts.push((i as f64, r_base / r_aug));
        assert!(
            r_aug < r_base * 1.02,
            "MLTCP-{base_label} must not regress its base: {r_aug} vs {r_base}"
        );
    }
    fig.push_series(Series::from_xy("improvement factor per base CC", pts));
    fig.note("bases in order: reno, cubic, dctcp (DCTCP pair runs over an ECN-marking bottleneck)");
    fig.finish();
}
