//! **Ablation** — MLTCP over other congestion control algorithms.
//!
//! §6: "Other congestion control schemes are augmented in a similar way
//! to induce shifts in communication start times." We apply the same
//! wrapper to CUBIC and DCTCP (the latter over an ECN-marking
//! bottleneck) and compare each augmented variant to its base on the
//! six-GPT-2 workload: the augmentation should improve (or at least not
//! hurt) every base.
//!
//! A single seed is too noisy for that claim at the compressed scale —
//! whichever interleave a run converges to swings the steady-state mean
//! by a few percent either way — so each (base, augmented) comparison is
//! averaged over [`SEEDS_PER_CC`] seeds, with base and augmented halves
//! sharing each seed. All 18 runs (3 bases × {plain, augmented} ×
//! seeds) fan out over [`SweepRunner`] workers.

use mltcp_bench::experiments::{gpt2_jobs, mean_steady_ratio, mix_deadline};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_netsim::queue::QueueKind;
use mltcp_workload::scenario::{CongestionSpec, FnSpec, ScenarioBuilder};
use mltcp_workload::SweepRunner;

/// Seeds averaged per (base, augmented) comparison.
const SEEDS_PER_CC: usize = 3;

fn run(scale: f64, iters: u32, cc: &CongestionSpec, seed: u64) -> f64 {
    let mut b = ScenarioBuilder::new(seed);
    if cc.needs_ecn() {
        // DCTCP: ECN marking at ~1/3 of the buffer.
        b = b.bottleneck_queue(QueueKind::EcnDropTail {
            cap_bytes: 300_000,
            mark_threshold_bytes: 100_000,
        });
    }
    for j in gpt2_jobs(scale, iters, 6) {
        b = b.job(j, cc.clone());
    }
    let mut sc = b.build();
    mltcp_bench::attach_trace(&mut sc, &format!("{}-s{seed}", cc.label()));
    sc.run(mix_deadline(scale, iters));
    assert!(sc.all_finished(), "{}: did not finish", cc.label());
    mean_steady_ratio(&sc)
}

fn main() {
    let scale = scale();
    let iters = iters_or(50);
    let mut fig = Figure::new(
        "ablation_cc_variants",
        "MLTCP applied to Reno, CUBIC, and DCTCP — 6 GPT-2 jobs, steady-state mean ratio",
    );

    let pairs = [
        (
            CongestionSpec::Reno,
            CongestionSpec::MltcpReno(FnSpec::Paper),
        ),
        (
            CongestionSpec::Cubic,
            CongestionSpec::MltcpCubic(FnSpec::Paper),
        ),
        (
            CongestionSpec::Dctcp,
            CongestionSpec::MltcpDctcp(FnSpec::Paper),
        ),
    ];
    // Flatten to one sweep job per simulation: for each pair, base and
    // augmented runs over SEEDS_PER_CC shared seeds (both halves of a
    // comparison see the same workload), base block then augmented
    // block, pairs in order.
    let configs: Vec<(CongestionSpec, u64)> = pairs
        .iter()
        .enumerate()
        .flat_map(|(i, (base, aug))| {
            let sd = move |s: usize| seed() + (i * SEEDS_PER_CC + s) as u64;
            (0..SEEDS_PER_CC)
                .map(move |s| (base.clone(), sd(s)))
                .chain((0..SEEDS_PER_CC).map(move |s| (aug.clone(), sd(s))))
        })
        .collect();
    let ratios = SweepRunner::new().run(&configs, |_, (cc, sd)| run(scale, iters, cc, *sd));

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let mut pts = Vec::new();
    for (i, (base, _)) in pairs.iter().enumerate() {
        let base_label = base.label();
        let at = 2 * i * SEEDS_PER_CC;
        let r_base = mean(&ratios[at..at + SEEDS_PER_CC]);
        let r_aug = mean(&ratios[at + SEEDS_PER_CC..at + 2 * SEEDS_PER_CC]);
        fig.metric(format!("{base_label}: base steady (x ideal)"), r_base);
        fig.metric(format!("{base_label}: mltcp steady (x ideal)"), r_aug);
        fig.metric(
            format!("{base_label}: improvement (base/mltcp)"),
            r_base / r_aug,
        );
        pts.push((i as f64, r_base / r_aug));
        assert!(
            r_aug < r_base * 1.02,
            "MLTCP-{base_label} must not regress its base \
             (mean over {SEEDS_PER_CC} seeds): {r_aug} vs {r_base}"
        );
    }
    fig.push_series(Series::from_xy("improvement factor per base CC", pts));
    fig.note(format!(
        "bases in order: reno, cubic, dctcp (DCTCP pair runs over an \
         ECN-marking bottleneck); each ratio is a mean over \
         {SEEDS_PER_CC} seeds"
    ));
    fig.finish();
}
