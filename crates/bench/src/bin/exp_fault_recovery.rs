//! **Fault recovery** — MLTCP self-heals where a static Cassini plan
//! must replan.
//!
//! The canonical 4-job Fig. 2 mix (GPT-3 + 3×GPT-2) runs through a sweep
//! of fault classes × severities — bottleneck link flaps, bandwidth
//! brownouts, Gilbert–Elliott bursty-loss windows, and a job
//! crash/restart — under two plans:
//!
//! * **mltcp-reno** — every flow runs the distributed MLTCP algorithm;
//!   after a fault perturbs the jobs' phases, the bandwidth-aggressiveness
//!   feedback loop re-interleaves them with no coordination;
//! * **cassini-static** — the centralized optimizer's offsets, applied
//!   once and *not recomputed*: the plan that was optimal before the
//!   fault keeps running, which is what happens to a Cassini-style
//!   controller between replan rounds.
//!
//! Reported per case: the post-fault steady-state iteration ratio (tail
//! mean ÷ analytic ideal) and iterations-to-re-interleave (first index
//! after which every later duration is within 5% of the pre-fault steady
//! mean). MLTCP should re-converge within tens of iterations; the static
//! plan drifts and stays degraded.
//!
//! Every run also carries a telemetry [`MetricsSink`], so each fault
//! class reports its transport-level footprint — packet drops, RTO and
//! fast-retransmit counts, and brownout/downtime seconds — alongside the
//! iteration-level recovery numbers. The full per-case snapshots land in
//! `results/exp_fault_recovery_metrics.json`.

use mltcp_bench::experiments::{
    cassini_scenario, mix_deadline, print_summary_table, reconverge_after, summarize_run,
    FaultCase, PlanKind, RunSummary,
};
use mltcp_bench::{experiments::fig2_jobs, iters_or, scale, seed, Figure, Series};
use mltcp_netsim::fault::GilbertElliott;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_telemetry::{
    take_metrics, JsonlSink, MetricsSink, MetricsSnapshot, TeeSink, TelemetrySink,
};
use mltcp_workload::scenario::{CongestionSpec, FnSpec, Scenario};
use mltcp_workload::{JobDriver, SweepRunner};
use std::io::Write;

/// Re-convergence tolerance: within 5% of the pre-fault steady mean.
const REL_TOL: f64 = 0.05;

struct CaseResult {
    summary: RunSummary,
    /// Per-job iterations-to-re-interleave (`None` = no baseline or
    /// never recovered).
    reconv: Vec<Option<usize>>,
    /// Mix-level mean iteration ratio per index (jobs may trade places
    /// at a new fixed point; the mix mean measures system efficiency).
    mix_series: Vec<f64>,
    /// Mix-level iterations-to-re-interleave.
    reconv_mix: Option<usize>,
    /// Transport-level footprint of the case (drops, RTOs, fault
    /// windows), from the run's [`MetricsSink`].
    metrics: MetricsSnapshot,
}

/// First iteration of job `idx` whose duration could reflect the fault.
fn fault_iteration(sc: &Scenario, idx: usize, case: &FaultCase) -> Option<usize> {
    let driver = sc.sim.agent::<JobDriver>(sc.jobs[idx].driver);
    let records = driver.records();
    let onset = match *case {
        FaultCase::None => return None,
        FaultCase::LinkFlap { at, .. }
        | FaultCase::Brownout { at, .. }
        | FaultCase::BurstyLoss { at, .. } => at,
        FaultCase::JobRestart { job, at_iter, .. } => {
            if job == idx {
                return Some(at_iter as usize);
            }
            // Peers feel the restart when the job *resumes* and its
            // traffic re-enters the bottleneck out of phase.
            sc.restart_resume(job)?.1
        }
    };
    records.iter().position(|r| r.end >= onset)
}

/// The run's telemetry sink: metrics always; tee in a JSONL stream when
/// the binary was invoked with `--trace`.
fn case_sink(label: &str) -> Box<dyn TelemetrySink> {
    let metrics = Box::new(MetricsSink::new());
    if let Some(base) = mltcp_bench::trace_base() {
        let path = mltcp_bench::trace_path(&base, label);
        if let Ok(jsonl) = JsonlSink::create(&path) {
            return Box::new(TeeSink::new(vec![metrics, Box::new(jsonl)]));
        }
    }
    metrics
}

fn run_case(
    seed: u64,
    label: &str,
    case: &FaultCase,
    plan: &PlanKind,
    scale: f64,
    iters: u32,
) -> CaseResult {
    // Cap RTO backoff near one iteration period so a sender probes a
    // repaired link promptly instead of overshooting the outage.
    let period = SimDuration::from_secs_f64(1.8 * scale); // GPT-2 ideal period
    let mut sc = case
        .builder(seed, fig2_jobs(scale, iters), plan)
        .max_rto(period)
        .build();
    sc.set_telemetry(case_sink(label));
    sc.run(mix_deadline(scale, iters));
    assert!(
        sc.all_finished(),
        "{}/{}: jobs did not finish",
        case.label(),
        plan.label()
    );
    let fault_idxs: Vec<Option<usize>> = (0..sc.jobs.len())
        .map(|i| fault_iteration(&sc, i, case))
        .collect();
    let reconv = (0..sc.jobs.len())
        .map(|i| {
            let fi = fault_idxs[i]?;
            reconverge_after(sc.stats(i).durations(), fi, REL_TOL)
        })
        .collect();
    let summary = summarize_run(&sc);
    let n_iter = summary.durations.iter().map(Vec::len).min().unwrap_or(0);
    let mix_series: Vec<f64> = (0..n_iter)
        .map(|k| {
            summary
                .durations
                .iter()
                .zip(&summary.ideals)
                .map(|(d, &ideal)| d[k] / ideal)
                .sum::<f64>()
                / summary.durations.len() as f64
        })
        .collect();
    // The mix is "post-fault" only once every job is past its own onset.
    let reconv_mix = fault_idxs
        .iter()
        .copied()
        .collect::<Option<Vec<_>>>()
        .and_then(|fis| reconverge_after(&mix_series, fis.into_iter().max()?, REL_TOL));
    let metrics = sc
        .take_telemetry()
        .and_then(take_metrics)
        .expect("metrics sink was attached");
    CaseResult {
        summary,
        reconv,
        mix_series,
        reconv_mix,
        metrics,
    }
}

fn main() {
    let scale = scale();
    let iters = iters_or(60);
    let period = SimDuration::from_secs_f64(1.8 * scale); // GPT-2 ideal period
                                                          // Fault onset: ~35% into the run, so every job has a pre-fault
                                                          // baseline and plenty of post-fault runway.
    let at = SimTime::from_secs_f64(1.8 * scale * f64::from(iters) * 0.35);
    let restart_iter = iters / 3;

    let cases: Vec<(&'static str, FaultCase)> = vec![
        ("none", FaultCase::None),
        (
            "link_flap/mild",
            FaultCase::LinkFlap {
                at,
                outage: period.mul_f64(0.5),
            },
        ),
        (
            "link_flap/severe",
            FaultCase::LinkFlap {
                at,
                outage: period.mul_f64(2.0),
            },
        ),
        (
            "brownout/mild",
            FaultCase::Brownout {
                at,
                window: period.mul_f64(4.0),
                factor: 0.5,
            },
        ),
        (
            "brownout/severe",
            FaultCase::Brownout {
                at,
                window: period.mul_f64(4.0),
                factor: 0.25,
            },
        ),
        (
            "bursty_loss/mild",
            FaultCase::BurstyLoss {
                at,
                window: period.mul_f64(4.0),
                model: GilbertElliott::bursty(0.05, 0.3, 0.25),
            },
        ),
        (
            "bursty_loss/severe",
            FaultCase::BurstyLoss {
                at,
                window: period.mul_f64(4.0),
                model: GilbertElliott::bursty(0.1, 0.25, 0.5),
            },
        ),
        (
            "job_restart/mild",
            FaultCase::JobRestart {
                job: 0,
                at_iter: restart_iter,
                outage: SimDuration::from_secs_f64(1.2 * scale * 0.5),
            },
        ),
        (
            "job_restart/severe",
            FaultCase::JobRestart {
                job: 0,
                at_iter: restart_iter,
                outage: SimDuration::from_secs_f64(1.2 * scale * 2.0),
            },
        ),
    ];
    let plans = [
        PlanKind::Uniform(CongestionSpec::MltcpReno(FnSpec::Paper)),
        PlanKind::CassiniStatic,
    ];

    let mut fig = Figure::new(
        "exp_fault_recovery",
        "Fault recovery: MLTCP re-interleaves after faults; static Cassini offsets do not",
    );

    // Reference: what the Cassini plan *promises* when it is enforced
    // (paced) and nothing faults. The static baseline is measured against
    // this — "recovered" for a plan means regaining planned quality.
    let planned_optimal = {
        let mut sc = cassini_scenario(seed(), fig2_jobs(scale, iters));
        sc.run(mix_deadline(scale, iters));
        assert!(
            sc.all_finished(),
            "enforced cassini reference did not finish"
        );
        summarize_run(&sc).mean_steady_ratio
    };

    // One independent simulation per (case, plan): fan out over workers.
    let grid: Vec<(usize, usize)> = (0..cases.len())
        .flat_map(|c| (0..plans.len()).map(move |p| (c, p)))
        .collect();
    let results = SweepRunner::new().run(&grid, |_, &(c, p)| {
        let label = format!("{}/{}", cases[c].0, plans[p].label());
        run_case(seed(), &label, &cases[c].1, &plans[p], scale, iters)
    });

    for ((c, p), res) in grid.iter().zip(&results) {
        let (case_label, case) = &cases[*c];
        let plan = &plans[*p];
        let label = format!("{}/{}", case_label, plan.label());
        print_summary_table(&label, &res.summary);
        fig.metric(
            format!("{label}: mean steady ratio (post-fault)"),
            res.summary.mean_steady_ratio,
        );
        fig.metric(
            format!("{label}: gap to planned optimal (%)"),
            (res.summary.mean_steady_ratio / planned_optimal - 1.0) * 100.0,
        );
        if !matches!(case, FaultCase::None) {
            // Worst per-job re-convergence; a job that never recovered
            // reports the full remaining run as its cost.
            let worst = res
                .reconv
                .iter()
                .map(|r| r.map(|n| n as f64).unwrap_or(f64::from(iters)))
                .fold(0.0_f64, f64::max);
            fig.metric(format!("{label}: iterations to re-interleave (max)"), worst);
            let recovered = res.reconv.iter().filter(|r| r.is_some()).count();
            fig.metric(
                format!("{label}: jobs recovered (of {})", res.reconv.len()),
                recovered as f64,
            );
            fig.metric(
                format!("{label}: mix iterations to re-interleave"),
                res.reconv_mix.map(|n| n as f64).unwrap_or(f64::from(iters)),
            );
        }
        // Transport-level footprint of the fault class (satellite view:
        // what the fault did to packets, not just to iteration times).
        let m = &res.metrics;
        fig.metric(
            format!("{label}: packet drops"),
            m.counter("drops/total") as f64,
        );
        fig.metric(format!("{label}: rtos"), m.counter("retx/rto") as f64);
        fig.metric(
            format!("{label}: fast retransmits"),
            m.counter("retx/fast") as f64,
        );
        if let Some(s) = m.gauge("fault/brownout_s") {
            fig.metric(format!("{label}: brownout seconds"), s);
        }
        if let Some(s) = m.gauge("fault/downtime_s") {
            fig.metric(format!("{label}: downtime seconds"), s);
        }
        fig.push_series(Series::from_y(
            format!("{label}: mix mean iteration ratio"),
            res.mix_series.clone(),
        ));
        for ((r, &ideal), durs) in res
            .summary
            .jobs
            .iter()
            .zip(&res.summary.ideals)
            .zip(&res.summary.durations)
        {
            fig.push_series(Series::from_y(
                format!("{label}: {} iteration times (x ideal)", r.name),
                durs.iter().map(|d| d / ideal).collect(),
            ));
        }
    }

    // Headline comparison: across all faulted cases, MLTCP's post-fault
    // steady ratio vs the static plan's.
    let mut mltcp_worst: f64 = 0.0;
    let mut static_best = f64::INFINITY;
    for ((c, p), res) in grid.iter().zip(&results) {
        if matches!(cases[*c].1, FaultCase::None) {
            continue;
        }
        match plans[*p] {
            PlanKind::Uniform(_) => mltcp_worst = mltcp_worst.max(res.summary.mean_steady_ratio),
            PlanKind::CassiniStatic => static_best = static_best.min(res.summary.mean_steady_ratio),
        }
    }
    fig.metric(
        "planned optimal (enforced cassini, fault-free)",
        planned_optimal,
    );
    fig.metric("mltcp worst post-fault steady ratio", mltcp_worst);
    fig.metric("cassini-static best post-fault steady ratio", static_best);
    // Full per-case metrics snapshots, machine-readable.
    let metrics_path = mltcp_bench::results_dir().join("exp_fault_recovery_metrics.json");
    let body: Vec<String> = grid
        .iter()
        .zip(&results)
        .map(|((c, p), res)| {
            format!(
                "  \"{}/{}\": {}",
                cases[*c].0,
                plans[*p].label(),
                res.metrics.to_json()
            )
        })
        .collect();
    match std::fs::File::create(&metrics_path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{{\n{}\n}}", body.join(",\n"));
            println!("[written {}]", metrics_path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", metrics_path.display()),
    }

    fig.note(
        "expected: mltcp returns to its fault-free steady level within tens \
         of iterations for every fault class (the aggressiveness feedback \
         loop re-interleaves with no coordination); the static, \
         never-recomputed Cassini offsets never regain planned (enforced) \
         quality after drift or faults — they degenerate to uncoordinated \
         Reno-level performance, which is why Cassini must replan.",
    );
    fig.finish();
}
