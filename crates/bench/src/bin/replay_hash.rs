//! **Replay hash** — a deterministic fingerprint of one faulted run.
//!
//! Runs the canonical 4-job mix through a composite fault schedule (link
//! flap + brownout + bursty loss + a job restart) and prints one FNV-1a
//! hash over every iteration record of every job plus the simulator's
//! delivery/drop counters. CI runs this binary twice and compares the
//! hashes: same fault seed ⇒ byte-identical trace, or the simulator's
//! determinism contract is broken.
//!
//! Honors `MLTCP_SEED` / `MLTCP_SCALE` / `MLTCP_ITERS` like every other
//! binary, so a determinism failure can be bisected at other operating
//! points.

use mltcp_bench::experiments::{
    fig2_jobs, mix_deadline, scenario_replay_hash, FaultCase, PlanKind,
};
use mltcp_bench::{iters_or, scale, seed};
use mltcp_netsim::fault::GilbertElliott;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_workload::scenario::{CongestionSpec, FnSpec, LinkFault};

fn main() {
    let scale = scale();
    let iters = iters_or(24);
    let period = SimDuration::from_secs_f64(1.8 * scale);
    let t = |frac: f64| SimTime::from_secs_f64(1.8 * scale * f64::from(iters) * frac);

    // A composite schedule touching every fault class in one run.
    let restart = FaultCase::JobRestart {
        job: 0,
        at_iter: iters / 3,
        outage: period.mul_f64(0.75),
    };
    let mut sc = restart
        .builder(
            seed(),
            fig2_jobs(scale, iters),
            &PlanKind::Uniform(CongestionSpec::MltcpReno(FnSpec::Paper)),
        )
        .max_rto(period)
        .bottleneck_fault(LinkFault::Down {
            at: t(0.2),
            duration: period.mul_f64(0.5),
        })
        .bottleneck_fault(LinkFault::Brownout {
            at: t(0.45),
            duration: period.mul_f64(2.0),
            factor: 0.3,
        })
        .bottleneck_fault(LinkFault::BurstyLoss {
            at: t(0.7),
            duration: period.mul_f64(2.0),
            model: GilbertElliott::bursty(0.08, 0.25, 0.4),
        })
        .build();
    // Stream the run's telemetry when requested; the sink never perturbs
    // the hash (that invariant has its own tests).
    mltcp_bench::attach_trace(&mut sc, "replay");
    sc.run(mix_deadline(scale, iters));
    assert!(sc.all_finished(), "faulted replay did not finish");
    sc.take_telemetry();

    println!("{:016x}", scenario_replay_hash(&sc));
}
