//! **Figure 4** — six identical GPT-2 jobs on one bottleneck:
//! (a) TCP-Reno stays congested, (b) MLTCP-Reno interleaves,
//! (c) the CDF of iteration times shows a tail speedup (paper: 1.59×).
//!
//! The Reno and MLTCP runs are independent; they fan out over
//! [`SweepRunner`] workers, which return plain `Send` payloads (traces +
//! pooled durations) for main-thread figure assembly.

use mltcp_bench::experiments::{gpt2_jobs, mix_deadline};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_netsim::time::SimDuration;
use mltcp_workload::scenario::{CongestionSpec, FnSpec};
use mltcp_workload::stats::{speedup_at, IterationStats};
use mltcp_workload::SweepRunner;

/// The `Send` payload a worker returns for one six-job run.
struct SixJobRun {
    /// Per-job bottleneck bandwidth series, as (time, Gbps) points.
    flow_series: Vec<Vec<(f64, f64)>>,
    /// Lifetime iteration durations pooled across all six jobs.
    pooled: Vec<f64>,
    /// Pooled durations with each job's first 20 iterations dropped.
    steady_pool: Vec<f64>,
}

fn main() {
    let scale = scale();
    let iters = iters_or(150);
    let deadline = mix_deadline(scale, iters);
    let mut fig = Figure::new(
        "fig4_six_jobs",
        "Six GPT-2 jobs: Reno vs MLTCP-Reno bandwidth shares and iteration-time CDF (paper Fig. 4)",
    );
    let bin = SimDuration::from_secs_f64(1.8 * scale / 50.0);

    let variants = [
        ("reno", CongestionSpec::Reno),
        ("mltcp-reno", CongestionSpec::MltcpReno(FnSpec::Paper)),
    ];
    let runs = SweepRunner::new().run(&variants, |_, (label, cc)| {
        let mut b = mltcp_workload::scenario::ScenarioBuilder::new(seed()).trace(bin);
        for j in gpt2_jobs(scale, iters, 6) {
            b = b.job(j, cc.clone());
        }
        let mut sc = b.build();
        mltcp_bench::attach_trace(&mut sc, label);
        sc.run(deadline);
        assert!(sc.all_finished(), "{label}: jobs did not finish");

        // (a)/(b): per-flow bandwidth traces on the bottleneck.
        let trace = sc.sim.trace(sc.dumbbell.bottleneck).expect("trace on");
        let t = trace.time_axis_secs();
        let flow_series: Vec<Vec<(f64, f64)>> = sc
            .jobs
            .iter()
            .map(|job| {
                t.iter()
                    .copied()
                    .zip(trace.gbps_series(job.flows[0]))
                    .collect()
            })
            .collect();

        // (c): pooled iteration times across all six jobs (lifetime CDF,
        // as the paper plots it).
        let pooled: Vec<f64> = (0..6)
            .flat_map(|i| sc.stats(i).durations().to_vec())
            .collect();
        // Steady-state pool: skip each job's first 20 iterations (the
        // paper's convergence window) for a transient-free comparison.
        let steady_pool: Vec<f64> = (0..6)
            .flat_map(|i| {
                sc.stats(i)
                    .durations()
                    .iter()
                    .skip(20)
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        SixJobRun {
            flow_series,
            pooled,
            steady_pool,
        }
    });

    for ((label, _), run) in variants.iter().zip(&runs) {
        for (i, pts) in run.flow_series.iter().enumerate() {
            fig.push_series(Series::from_xy(
                format!("{label}: Job{} Gbps", i + 1),
                pts.clone(),
            ));
        }
        let stats = IterationStats::from_durations(run.pooled.clone());
        fig.metric(format!("{label}: mean iter (ms)"), stats.mean() * 1e3);
        fig.metric(format!("{label}: p50 (ms)"), stats.percentile(0.5) * 1e3);
        fig.metric(format!("{label}: p99 (ms)"), stats.percentile(0.99) * 1e3);
        fig.push_series(Series::from_xy(
            format!("{label}: CDF of iteration times (s)"),
            stats.cdf(),
        ));
    }

    let reno = IterationStats::from_durations(runs[0].pooled.clone());
    let mltcp = IterationStats::from_durations(runs[1].pooled.clone());
    fig.metric(
        "lifetime tail (p99) speedup reno/mltcp",
        speedup_at(&reno, &mltcp, 0.99),
    );
    fig.metric(
        "lifetime p95 speedup reno/mltcp",
        speedup_at(&reno, &mltcp, 0.95),
    );
    fig.metric(
        "lifetime median speedup reno/mltcp",
        speedup_at(&reno, &mltcp, 0.50),
    );
    fig.metric(
        "lifetime mean speedup reno/mltcp",
        reno.mean() / mltcp.mean(),
    );
    let reno_ss = IterationStats::from_durations(runs[0].steady_pool.clone());
    let mltcp_ss = IterationStats::from_durations(runs[1].steady_pool.clone());
    fig.metric(
        "steady tail (p99) speedup reno/mltcp",
        speedup_at(&reno_ss, &mltcp_ss, 0.99),
    );
    fig.metric(
        "steady p95 speedup reno/mltcp",
        speedup_at(&reno_ss, &mltcp_ss, 0.95),
    );
    fig.metric(
        "steady median speedup reno/mltcp",
        speedup_at(&reno_ss, &mltcp_ss, 0.50),
    );
    fig.note("paper Fig. 4(c): tail iteration-time speedup of 1.59x for MLTCP over Reno");
    fig.finish();
}
