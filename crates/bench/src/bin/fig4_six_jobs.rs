//! **Figure 4** — six identical GPT-2 jobs on one bottleneck:
//! (a) TCP-Reno stays congested, (b) MLTCP-Reno interleaves,
//! (c) the CDF of iteration times shows a tail speedup (paper: 1.59×).

use mltcp_bench::experiments::{gpt2_jobs, mix_deadline};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_netsim::time::SimDuration;
use mltcp_workload::scenario::{CongestionSpec, FnSpec};
use mltcp_workload::stats::{speedup_at, IterationStats};

fn main() {
    let scale = scale();
    let iters = iters_or(150);
    let deadline = mix_deadline(scale, iters);
    let mut fig = Figure::new(
        "fig4_six_jobs",
        "Six GPT-2 jobs: Reno vs MLTCP-Reno bandwidth shares and iteration-time CDF (paper Fig. 4)",
    );
    let bin = SimDuration::from_secs_f64(1.8 * scale / 50.0);

    let mut all_durations: Vec<Vec<f64>> = Vec::new();
    let mut all_steady: Vec<Vec<f64>> = Vec::new();
    for (label, cc) in [
        ("reno", CongestionSpec::Reno),
        ("mltcp-reno", CongestionSpec::MltcpReno(FnSpec::Paper)),
    ] {
        let mut b = mltcp_workload::scenario::ScenarioBuilder::new(seed()).trace(bin);
        for j in gpt2_jobs(scale, iters, 6) {
            b = b.job(j, cc.clone());
        }
        let mut sc = b.build();
        sc.run(deadline);
        assert!(sc.all_finished(), "{label}: jobs did not finish");

        // (a)/(b): per-flow bandwidth traces on the bottleneck.
        let trace = sc.sim.trace(sc.dumbbell.bottleneck).expect("trace on");
        let t = trace.time_axis_secs();
        for (i, job) in sc.jobs.iter().enumerate() {
            let gbps = trace.gbps_series(job.flows[0]);
            let pts: Vec<(f64, f64)> = t.iter().copied().zip(gbps).collect();
            fig.push_series(Series::from_xy(format!("{label}: Job{} Gbps", i + 1), pts));
        }

        // (c): pooled iteration times across all six jobs (lifetime CDF,
        // as the paper plots it).
        let pooled: Vec<f64> = (0..6)
            .flat_map(|i| sc.stats(i).durations().to_vec())
            .collect();
        // Steady-state pool: skip each job's first 20 iterations (the
        // paper's convergence window) for a transient-free comparison.
        let steady_pool: Vec<f64> = (0..6)
            .flat_map(|i| sc.stats(i).durations().iter().skip(20).copied().collect::<Vec<_>>())
            .collect();
        all_steady.push(steady_pool);
        let stats = IterationStats::from_durations(pooled.clone());
        fig.metric(format!("{label}: mean iter (ms)"), stats.mean() * 1e3);
        fig.metric(format!("{label}: p50 (ms)"), stats.percentile(0.5) * 1e3);
        fig.metric(format!("{label}: p99 (ms)"), stats.percentile(0.99) * 1e3);
        let cdf = stats.cdf();
        fig.push_series(Series::from_xy(
            format!("{label}: CDF of iteration times (s)"),
            cdf,
        ));
        all_durations.push(pooled);
    }

    let reno = IterationStats::from_durations(all_durations[0].clone());
    let mltcp = IterationStats::from_durations(all_durations[1].clone());
    fig.metric("lifetime tail (p99) speedup reno/mltcp", speedup_at(&reno, &mltcp, 0.99));
    fig.metric("lifetime p95 speedup reno/mltcp", speedup_at(&reno, &mltcp, 0.95));
    fig.metric("lifetime median speedup reno/mltcp", speedup_at(&reno, &mltcp, 0.50));
    fig.metric("lifetime mean speedup reno/mltcp", reno.mean() / mltcp.mean());
    let reno_ss = IterationStats::from_durations(all_steady[0].clone());
    let mltcp_ss = IterationStats::from_durations(all_steady[1].clone());
    fig.metric("steady tail (p99) speedup reno/mltcp", speedup_at(&reno_ss, &mltcp_ss, 0.99));
    fig.metric("steady p95 speedup reno/mltcp", speedup_at(&reno_ss, &mltcp_ss, 0.95));
    fig.metric("steady median speedup reno/mltcp", speedup_at(&reno_ss, &mltcp_ss, 0.50));
    fig.note("paper Fig. 4(c): tail iteration-time speedup of 1.59x for MLTCP over Reno");
    fig.finish();
}
