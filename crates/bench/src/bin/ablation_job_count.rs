//! **Ablation** — scaling the number of competing jobs across the
//! compatibility boundary.
//!
//! §4 guarantees convergence only "in scenarios in which an interleaved
//! schedule exists" (Σa ≤ 1). With the GPT-2 profile (a ≈ 0.139), up to
//! 7 jobs are compatible; 8+ are not. MLTCP's advantage over Reno should
//! hold throughout, while absolute iteration ratios rise once demand
//! exceeds capacity (nothing can interleave an incompatible mix). The
//! ten runs (5 job counts × {Reno, MLTCP}) fan out over [`SweepRunner`]
//! workers.

use mltcp_bench::experiments::{gpt2_jobs, mean_steady_ratio, mix_deadline, uniform_scenario};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_workload::scenario::{CongestionSpec, FnSpec};
use mltcp_workload::SweepRunner;

fn main() {
    let scale = scale();
    let iters = iters_or(50);
    let mut fig = Figure::new(
        "ablation_job_count",
        "Mean steady iteration ratio vs number of GPT-2 jobs (compatibility boundary ≈ 7)",
    );

    let counts = [2usize, 4, 6, 7, 8];
    // One sweep job per (job count, congestion control); both CCs at a
    // given count share a seed so they face the same noise draws.
    let configs: Vec<(usize, bool, u64)> = counts
        .iter()
        .enumerate()
        .flat_map(|(i, &n)| [(n, false, seed() + i as u64), (n, true, seed() + i as u64)])
        .collect();
    let ratios = SweepRunner::new().run(&configs, |_, &(n, mltcp, sd)| {
        let cc = if mltcp {
            CongestionSpec::MltcpReno(FnSpec::Paper)
        } else {
            CongestionSpec::Reno
        };
        let mut sc = uniform_scenario(sd, gpt2_jobs(scale, iters, n), cc);
        mltcp_bench::attach_trace(
            &mut sc,
            &format!("n{n}-{}", if mltcp { "mltcp" } else { "reno" }),
        );
        sc.run(mix_deadline(scale, iters));
        assert!(
            sc.all_finished(),
            "{} n={n}",
            if mltcp { "mltcp" } else { "reno" }
        );
        mean_steady_ratio(&sc)
    });

    let mut reno_pts = Vec::new();
    let mut mltcp_pts = Vec::new();
    for (i, &n) in counts.iter().enumerate() {
        let r_reno = ratios[2 * i];
        let r_ml = ratios[2 * i + 1];
        fig.metric(format!("n={n}: reno steady (x ideal)"), r_reno);
        fig.metric(format!("n={n}: mltcp steady (x ideal)"), r_ml);
        fig.metric(format!("n={n}: improvement"), r_reno / r_ml);
        reno_pts.push((n as f64, r_reno));
        mltcp_pts.push((n as f64, r_ml));
    }
    fig.push_series(Series::from_xy("reno", reno_pts.clone()));
    fig.push_series(Series::from_xy("mltcp-reno", mltcp_pts.clone()));

    // In the congested-but-compatible regime (n = 6) the advantage must
    // be clear; in the incompatible regime (n = 8) MLTCP should still not
    // be worse than Reno.
    let idx6 = 2;
    assert!(
        mltcp_pts[idx6].1 < reno_pts[idx6].1 * 0.9,
        "n=6: MLTCP must clearly beat Reno: {} vs {}",
        mltcp_pts[idx6].1,
        reno_pts[idx6].1
    );
    let idx8 = 4;
    assert!(
        mltcp_pts[idx8].1 < reno_pts[idx8].1 * 1.05,
        "n=8 (incompatible): MLTCP must not regress: {} vs {}",
        mltcp_pts[idx8].1,
        reno_pts[idx8].1
    );
    fig.note("Σa: 2 jobs 0.28, 4 jobs 0.56, 6 jobs 0.83, 7 jobs 0.97, 8 jobs 1.11 (> 1: no interleaved schedule exists)");
    fig.finish();
}
