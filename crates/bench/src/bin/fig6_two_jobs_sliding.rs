//! **Figure 6** — two GPT-2 jobs sliding into an interleaved schedule.
//!
//! The paper overlays the two jobs' bandwidth on the bottleneck: initial
//! congestion (overlapping comm phases), then MLTCP's per-iteration shift
//! separates them within a few iterations, after which they stay
//! interleaved. We regenerate the bandwidth traces and track the circular
//! start-time difference Δᵢ between the jobs' comm phases — the quantity
//! the §4 gradient-descent analysis evolves.
//!
//! A single scenario can't parallelize, but the run still goes through
//! [`SweepRunner`] (which executes singleton sweeps inline) so every
//! figure binary shares the same worker-closure shape: simulate in the
//! worker, return plain `Send` data, assemble the figure on the main
//! thread.

use mltcp_bench::experiments::{bottleneck, gpt2_jobs, mix_deadline};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_core::gradient::circular_distance;
use mltcp_netsim::time::SimDuration;
use mltcp_workload::scenario::{CongestionSpec, FnSpec, ScenarioBuilder};
use mltcp_workload::SweepRunner;

/// The `Send` payload extracted from the single sliding-jobs run.
struct SlidingRun {
    flow_series: Vec<Vec<(f64, f64)>>,
    deltas: Vec<f64>,
    comm: f64,
    steady: [f64; 2],
}

fn main() {
    let scale = scale();
    let iters = iters_or(40);
    let deadline = mix_deadline(scale, iters);
    let mut fig = Figure::new(
        "fig6_two_jobs_sliding",
        "Two GPT-2 jobs interleaving over a few iterations under MLTCP-Reno (paper Fig. 6)",
    );
    let bin = SimDuration::from_secs_f64(1.8 * scale / 50.0);

    let run = SweepRunner::new()
        .run(&[()], |_, _| {
            let mut b = ScenarioBuilder::new(seed()).trace(bin);
            for j in gpt2_jobs(scale, iters, 2) {
                b = b.job(j, CongestionSpec::MltcpReno(FnSpec::Paper));
            }
            let mut sc = b.build();
            mltcp_bench::attach_trace(&mut sc, "two-jobs");
            sc.run(deadline);
            assert!(sc.all_finished(), "jobs did not finish");

            let trace = sc.sim.trace(sc.dumbbell.bottleneck).expect("trace on");
            let t = trace.time_axis_secs();
            let flow_series: Vec<Vec<(f64, f64)>> = sc
                .jobs
                .iter()
                .map(|job| {
                    t.iter()
                        .copied()
                        .zip(trace.gbps_series(job.flows[0]))
                        .collect()
                })
                .collect();

            // Δᵢ: circular difference of comm-phase starts, per iteration.
            let s0 = sc.comm_starts_secs(0);
            let s1 = sc.comm_starts_secs(1);
            let period = sc.ideal_period(0).as_secs_f64();
            let n = s0.len().min(s1.len());
            let deltas: Vec<f64> = (0..n)
                .map(|k| circular_distance(s0[k], s1[k], period))
                .collect();
            let comm = period * sc.jobs[0].spec.comm_fraction(bottleneck());
            SlidingRun {
                flow_series,
                deltas,
                comm,
                steady: [
                    sc.stats(0).tail_mean(5) / period,
                    sc.stats(1).tail_mean(5) / period,
                ],
            }
        })
        .pop()
        .expect("one run");

    // Bandwidth overlay.
    for (i, pts) in run.flow_series.into_iter().enumerate() {
        fig.push_series(Series::from_xy(format!("Job{} Gbps", i + 1), pts));
    }
    let deltas = run.deltas;
    fig.push_series(Series::from_y("Δᵢ (s, circular)", deltas.clone()));

    let early = deltas.iter().take(3).sum::<f64>() / 3.0;
    let late_n = 10.min(deltas.len());
    let late = deltas[deltas.len() - late_n..].iter().sum::<f64>() / late_n as f64;
    fig.metric("comm duration aT (s)", run.comm);
    fig.metric("early mean Δ (s)", early);
    fig.metric("late mean Δ (s)", late);
    // Interleaved = comm phases separated by at least one comm duration.
    let first_separated = deltas.iter().position(|&d| d >= run.comm);
    if let Some(k) = first_separated {
        fig.metric("first iteration with Δ >= aT", k as f64);
    }
    fig.metric("job1 steady (x ideal)", run.steady[0]);
    fig.metric("job2 steady (x ideal)", run.steady[1]);

    fig.note(
        "paper shape: jobs start synchronized (network congestion), the \
         sliding effect grows Δ each iteration, and after a few iterations \
         Δ exceeds the comm duration — fully interleaved, stable thereafter.",
    );
    fig.finish();
}
