//! **§4 noise bound** — MLTCP's steady-state approximation error under
//! zero-mean Gaussian iteration-time noise.
//!
//! The paper derives that the converged configuration's deviation from
//! the exact interleaved optimum is Gaussian with standard deviation
//! `2σ(1 + Intercept/Slope)` — linear in the noise intensity σ. We sweep
//! σ, run the noisy gradient-descent iteration map (the §4 model) to
//! steady state via Monte Carlo, and compare the empirical spread against
//! the predicted bound, plus a linearity regression across the sweep. The
//! six Monte Carlo runs (one per σ) fan out over [`SweepRunner`] workers,
//! each seeding its own RNG from the σ index.

use mltcp_bench::{seed, Figure, Series};
use mltcp_core::noise::{predicted_error_stddev, NoisyDescent};
use mltcp_core::params::MltcpParams;
use mltcp_core::shift::ShiftFunction;
use mltcp_netsim::rng::SimRng;
use mltcp_workload::SweepRunner;

fn main() {
    let period = 1.8;
    let shift = ShiftFunction::new(MltcpParams::PAPER, period, 0.5).expect("valid geometry");
    let nd = NoisyDescent::new(shift);
    let reference = period / 2.0; // the a = 1/2 optimum

    let mut fig = Figure::new(
        "exp_noise_error",
        "Steady-state error vs noise σ: empirical Monte Carlo vs 2σ(1 + I/S) (paper §4)",
    );

    let sigmas = [0.001, 0.002, 0.004, 0.008, 0.016, 0.032];
    let rows = SweepRunner::new().run(&sigmas, |i, &sigma| {
        let mut rng = SimRng::new(seed() + i as u64);
        let stats = nd.steady_state(0.3, reference, 3000, 20_000, || rng.gaussian(0.0, sigma));
        let pred = predicted_error_stddev(MltcpParams::PAPER, sigma);
        (sigma, stats.stddev, pred)
    });

    let mut empirical = Vec::new();
    let mut predicted = Vec::new();
    for &(sigma, stddev, pred) in &rows {
        empirical.push((sigma, stddev));
        predicted.push((sigma, pred));
        fig.metric(format!("sigma={sigma}: empirical stddev"), stddev);
        fig.metric(format!("sigma={sigma}: predicted bound"), pred);
        fig.metric(format!("sigma={sigma}: empirical/predicted"), stddev / pred);
        assert!(
            stddev <= pred * 1.5,
            "σ={sigma}: empirical {stddev} exceeds 1.5× the predicted bound {pred}"
        );
    }

    // Linearity: log-log slope of empirical stddev vs σ should be ≈ 1.
    let slope = loglog_slope(&empirical);
    fig.metric(
        "log-log slope of empirical error vs sigma (expect ~1)",
        slope,
    );
    assert!(
        (0.8..1.2).contains(&slope),
        "error must scale ~linearly, slope={slope}"
    );

    fig.push_series(Series::from_xy("empirical steady-state stddev", empirical));
    fig.push_series(Series::from_xy("predicted 2σ(1 + I/S)", predicted));
    fig.note(
        "the paper's bound: error ~ N(0, (2σ(1+I/S))²); ratio < 1 means the bound is conservative",
    );
    fig.finish();
}

fn loglog_slope(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in pts {
        let (lx, ly) = (x.ln(), y.max(1e-300).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}
