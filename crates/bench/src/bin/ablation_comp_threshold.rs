//! **Ablation** — sensitivity to the COMP_TIME detection threshold and
//! to learning TOTAL_BYTES/COMP_TIME online (autotune) instead of
//! receiving them from the job profile (oracle).
//!
//! The paper measures both values "during the first few iterations"; this
//! ablation checks that (a) the gap threshold is forgiving across a wide
//! range (it only has to separate multi-RTT stalls from the compute
//! phase), and (b) the autotuned configuration performs like the oracle
//! after its warmup. The seven runs (5-point threshold sweep + the
//! oracle/autotune pair) fan out over [`SweepRunner`] workers.

use mltcp_bench::experiments::{gpt2_jobs, mean_steady_ratio, mix_deadline};
use mltcp_bench::{iters_or, scale, seed, Figure, Series};
use mltcp_workload::scenario::{CongestionSpec, FnSpec, ScenarioBuilder};
use mltcp_workload::SweepRunner;

fn run(scale: f64, iters: u32, frac: f64, autotune: bool, seed: u64) -> f64 {
    let mut b = ScenarioBuilder::new(seed)
        .comp_threshold_frac(frac)
        .autotune(autotune);
    for j in gpt2_jobs(scale, iters, 6) {
        b = b.job(j, CongestionSpec::MltcpReno(FnSpec::Paper));
    }
    let mut sc = b.build();
    mltcp_bench::attach_trace(
        &mut sc,
        &format!("frac{frac}{}", if autotune { "-autotune" } else { "" }),
    );
    sc.run(mix_deadline(scale, iters));
    assert!(
        sc.all_finished(),
        "frac={frac} autotune={autotune}: did not finish"
    );
    mean_steady_ratio(&sc)
}

fn main() {
    let scale = scale();
    let iters = iters_or(50);
    let mut fig = Figure::new(
        "ablation_comp_threshold",
        "COMP_TIME threshold sweep + autotune vs oracle — 6 GPT-2 jobs, MLTCP-Reno",
    );

    let fracs = [0.05, 0.1, 0.25, 0.5, 0.8];
    // The 5 oracle threshold points, then the oracle/autotune pair.
    let mut configs: Vec<(f64, bool, u64)> = fracs
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, false, seed() + i as u64))
        .collect();
    configs.push((0.25, false, seed() + 100));
    configs.push((0.25, true, seed() + 100));
    let ratios =
        SweepRunner::new().run(&configs, |_, &(f, auto, sd)| run(scale, iters, f, auto, sd));

    let mut pts = Vec::new();
    for (&f, &r) in fracs.iter().zip(&ratios) {
        fig.metric(
            format!("oracle threshold frac={f}: mean steady (x ideal)"),
            r,
        );
        pts.push((f, r));
    }
    fig.push_series(Series::from_xy(
        "oracle: steady ratio vs threshold frac",
        pts.clone(),
    ));
    let spread = pts
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::NEG_INFINITY, f64::max)
        - pts.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
    fig.metric("oracle sweep spread (max - min ratio)", spread);
    assert!(
        spread < 0.25,
        "the threshold should be forgiving across 0.05..0.8 of compute: spread {spread}"
    );

    let oracle = ratios[fracs.len()];
    let auto = ratios[fracs.len() + 1];
    fig.metric("oracle (frac=0.25): mean steady", oracle);
    fig.metric("autotune: mean steady", auto);
    fig.metric("autotune penalty (auto/oracle)", auto / oracle);
    assert!(
        auto < oracle * 1.25,
        "autotune must land near the oracle configuration: {auto} vs {oracle}"
    );
    fig.note("autotune flows behave like plain Reno until the warmup (3 iterations) locks the learned parameters");
    fig.finish();
}
