//! **trace_inspect** — offline viewer for JSONL telemetry traces.
//!
//! Every figure binary accepts `--trace out.jsonl` and streams one trace
//! per scenario (`out-<label>.jsonl`). This binary turns such a trace
//! back into the paper's mental pictures:
//!
//! * a per-job **interleaving timeline** (communication phases rendered
//!   against a common time axis — the Fig. 2/Fig. 6 view of whether jobs
//!   share the bottleneck by turn-taking);
//! * a **gain-vs-iteration table** (how each MLTCP flow's
//!   `F(bytes_ratio)` evolved — the feedback loop at work);
//! * a **convergence verdict** per job (from the iteration durations
//!   embedded in the `Phase` events, via the same
//!   [`IterationStats::converged_after`] the figure binaries use).
//!
//! ```text
//! cargo run --release -p mltcp-bench --bin fig2_schedules -- --trace t.jsonl
//! cargo run --release -p mltcp-bench --bin trace_inspect -- t-mltcp-reno.jsonl
//! cargo run --release -p mltcp-bench --bin trace_inspect -- --check t-mltcp-reno.jsonl
//! ```
//!
//! `--check` validates the schema (header, version, field presence,
//! monotone timestamps) and prints event counts without the reports —
//! CI's trace gate. Exit status 1 on any validation error.

use mltcp_telemetry::{EventKind, TelemetryEvent, Trace};
use mltcp_workload::IterationStats;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Re-convergence tolerance for the verdict: within 5% of the job's own
/// steady tail, matching the figure binaries.
const REL_TOL: f64 = 0.05;
const STEADY_K: usize = 5;

/// Width of the rendered timeline, in character cells.
const TIMELINE_COLS: usize = 100;

/// `(compute_start, comm_start, end)` in nanoseconds; any field may be
/// missing when the trace starts/ends mid-iteration.
type IterBounds = (Option<u64>, Option<u64>, Option<u64>);

/// One job's iteration boundaries reconstructed from `Phase` events.
#[derive(Debug, Default)]
struct JobPhases {
    iters: BTreeMap<u32, IterBounds>,
}

impl JobPhases {
    /// Completed iterations in index order: `(iter, start, comm, end)`.
    fn complete(&self) -> Vec<(u32, u64, u64, u64)> {
        self.iters
            .iter()
            .filter_map(|(&i, &(s, c, e))| Some((i, s?, c?, e?)))
            .collect()
    }
}

fn collect_phases(trace: &Trace) -> BTreeMap<u32, JobPhases> {
    let mut jobs: BTreeMap<u32, JobPhases> = BTreeMap::new();
    for ev in &trace.events {
        if let TelemetryEvent::Phase {
            t_ns,
            job,
            iter,
            phase,
        } = *ev
        {
            let slot = jobs.entry(job).or_default().iters.entry(iter).or_default();
            match phase {
                mltcp_telemetry::PhaseKind::ComputeStart => slot.0 = Some(t_ns),
                mltcp_telemetry::PhaseKind::CommStart => slot.1 = Some(t_ns),
                mltcp_telemetry::PhaseKind::IterEnd => slot.2 = Some(t_ns),
            }
        }
    }
    jobs
}

/// Renders each job's communication phases onto a shared time axis:
/// `#` = communicating, `.` = computing/idle inside the job's lifetime.
fn print_timelines(trace: &Trace, phases: &BTreeMap<u32, JobPhases>) {
    let (mut t0, mut t1) = (u64::MAX, 0u64);
    for jp in phases.values() {
        for (_, s, _, e) in jp.complete() {
            t0 = t0.min(s);
            t1 = t1.max(e);
        }
    }
    if t0 >= t1 {
        println!("(no completed iterations — timeline skipped)");
        return;
    }
    let span = (t1 - t0) as f64;
    println!(
        "interleaving timeline ({:.3} ms .. {:.3} ms, {} cols):",
        t0 as f64 / 1e6,
        t1 as f64 / 1e6,
        TIMELINE_COLS
    );
    let cell = |t: u64| -> usize {
        (((t.saturating_sub(t0)) as f64 / span) * (TIMELINE_COLS - 1) as f64).round() as usize
    };
    for (&job, jp) in phases {
        let complete = jp.complete();
        if complete.is_empty() {
            continue;
        }
        let mut row = vec![' '; TIMELINE_COLS];
        for &(_, s, c, e) in &complete {
            for slot in row.iter_mut().take(cell(e) + 1).skip(cell(s)) {
                *slot = '.';
            }
            for slot in row.iter_mut().take(cell(e) + 1).skip(cell(c)) {
                *slot = '#';
            }
        }
        println!(
            "  {:<16} |{}|",
            trace.job_label(job),
            row.into_iter().collect::<String>()
        );
    }
    println!("  ('#' = communication phase, '.' = compute; turn-taking '#' blocks = interleaved)");
}

/// Mean gain per (job, iteration window), from `Gain` events bucketed by
/// the job's own phase boundaries.
fn print_gain_table(trace: &Trace, phases: &BTreeMap<u32, JobPhases>) {
    // job → sorted iteration windows (iter, start, end).
    let windows: BTreeMap<u32, Vec<(u32, u64, u64)>> = phases
        .iter()
        .map(|(&j, jp)| {
            (
                j,
                jp.complete()
                    .iter()
                    .map(|&(i, s, _, e)| (i, s, e))
                    .collect(),
            )
        })
        .collect();
    // (job, iter) → (sum, count).
    let mut acc: BTreeMap<(u32, u32), (f64, u64)> = BTreeMap::new();
    let mut any = false;
    for ev in &trace.events {
        if let TelemetryEvent::Gain {
            t_ns, job, gain, ..
        } = *ev
        {
            any = true;
            if let Some(ws) = windows.get(&job) {
                if let Some(&(iter, _, _)) = ws.iter().find(|&&(_, s, e)| t_ns >= s && t_ns <= e) {
                    let slot = acc.entry((job, iter)).or_insert((0.0, 0));
                    slot.0 += gain;
                    slot.1 += 1;
                }
            }
        }
    }
    if !any {
        println!("gain table: no Gain events in trace (plain CC, or gain never changed from 1)");
        return;
    }
    let jobs: Vec<u32> = windows.keys().copied().collect();
    let max_iter = acc.keys().map(|&(_, i)| i).max().unwrap_or(0);
    println!("mean gain per iteration (blank = no change that iteration):");
    print!("  {:>6}", "iter");
    for &j in &jobs {
        print!(" {:>16}", trace.job_label(j));
    }
    println!();
    for i in 0..=max_iter {
        // Only print rows where at least one job changed gain.
        if jobs.iter().all(|&j| !acc.contains_key(&(j, i))) {
            continue;
        }
        print!("  {i:>6}");
        for &j in &jobs {
            match acc.get(&(j, i)) {
                Some(&(sum, n)) => print!(" {:>16.3}", sum / n as f64),
                None => print!(" {:>16}", ""),
            }
        }
        println!();
    }
}

/// Per-job convergence verdict from the embedded iteration durations.
fn print_verdict(trace: &Trace, phases: &BTreeMap<u32, JobPhases>) {
    println!(
        "convergence verdict (tol {:.0}%, steady tail {STEADY_K}):",
        REL_TOL * 100.0
    );
    for (&job, jp) in phases {
        let durations: Vec<f64> = jp
            .complete()
            .iter()
            .map(|&(_, s, _, e)| (e - s) as f64 / 1e9)
            .collect();
        let n = durations.len();
        let stats = IterationStats::from_durations(durations);
        let verdict = match stats.converged_after(REL_TOL, STEADY_K) {
            Some(k) => format!("CONVERGED after iteration {k}"),
            None => "NOT CONVERGED within the trace".to_string(),
        };
        println!(
            "  {:<16} {n:>4} iterations, steady tail {:.3} ms — {verdict}",
            trace.job_label(job),
            stats.tail_mean(STEADY_K) * 1e3
        );
    }
}

fn print_event_counts(trace: &Trace) {
    let mut counts = [0u64; EventKind::COUNT];
    for ev in &trace.events {
        counts[ev.kind().index()] += 1;
    }
    println!("{} events, {} jobs:", trace.events.len(), trace.jobs.len());
    for kind in EventKind::ALL {
        if counts[kind.index()] > 0 {
            println!("  {:<8} {:>10}", kind.name(), counts[kind.index()]);
        }
    }
}

fn main() -> ExitCode {
    let mut check = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_inspect [--check] <trace.jsonl>");
        return ExitCode::FAILURE;
    };

    let trace = match Trace::read(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("== {path}");
    print_event_counts(&trace);
    if check {
        println!("schema: OK (header, version, fields, monotone timestamps)");
        return ExitCode::SUCCESS;
    }

    let phases = collect_phases(&trace);
    if phases.is_empty() {
        println!("(no Phase events — was the trace taken from a scenario run?)");
        return ExitCode::SUCCESS;
    }
    println!();
    print_timelines(&trace, &phases);
    println!();
    print_gain_table(&trace, &phases);
    println!();
    print_verdict(&trace, &phases);
    ExitCode::SUCCESS
}
