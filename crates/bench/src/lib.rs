//! # mltcp-bench
//!
//! The benchmark harness: one binary per paper figure/claim (see
//! `src/bin/`) plus Criterion micro/macro benches (`benches/`).
//!
//! Figure binaries print human-readable tables/series to stdout and write
//! machine-readable JSON under `results/` (created on demand). They are
//! the artifacts EXPERIMENTS.md records. Run them with e.g.
//!
//! ```text
//! cargo run --release -p mltcp-bench --bin fig2_schedules
//! ```
//!
//! Common knobs are environment variables so the binaries stay
//! argument-free for reproducibility:
//!
//! * `MLTCP_SCALE` — time scale relative to the paper's second-scale
//!   testbed (default `0.01`; `1.0` reproduces the paper's absolute
//!   times but takes ~100× longer to simulate).
//! * `MLTCP_SEED` — base RNG seed (default 42).
//! * `MLTCP_ITERS` — training iterations per job (default figure-specific).
//!
//! Every binary also honors `--trace out.jsonl` (or `MLTCP_TRACE`):
//! each scenario the binary runs streams its telemetry to
//! `out-<label>.jsonl`, readable with the `trace_inspect` binary.
//! Tracing never changes results — instrumented runs are event-for-event
//! identical to uninstrumented ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;

use json::Json;
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_workload::scenario::Scenario;
use std::io::Write;
use std::path::PathBuf;

/// Reads the global time scale (`MLTCP_SCALE`, default 0.01).
pub fn scale() -> f64 {
    std::env::var("MLTCP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &f64| s > 0.0)
        .unwrap_or(0.01)
}

/// Reads the base seed (`MLTCP_SEED`, default 42).
pub fn seed() -> u64 {
    std::env::var("MLTCP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Reads the iteration count override (`MLTCP_ITERS`).
pub fn iters_or(default: u32) -> u32 {
    std::env::var("MLTCP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A generous simulated-time deadline for a scenario expected to span
/// roughly `expected_secs` of simulated time.
pub fn deadline(expected_secs: f64) -> SimTime {
    SimTime::from_secs_f64(expected_secs * 4.0 + 1.0)
}

/// Default per-job compute noise for experiments: 1% of the compute
/// phase, the paper's "slight variations" regime.
pub fn default_noise(compute: SimDuration) -> SimDuration {
    compute.mul_f64(0.01)
}

/// The telemetry trace base path from `--trace PATH` / `--trace=PATH`
/// on the command line, or the `MLTCP_TRACE` environment variable.
/// `None` (the common case) disables tracing entirely.
pub fn trace_base() -> Option<PathBuf> {
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--trace" {
            return argv.next().map(PathBuf::from);
        }
        if let Some(path) = arg.strip_prefix("--trace=") {
            return Some(PathBuf::from(path));
        }
    }
    std::env::var("MLTCP_TRACE").ok().map(PathBuf::from)
}

/// The per-scenario trace path for `label`: `<stem>-<label>.jsonl` next
/// to the base path (slashes in the label become dashes).
pub fn trace_path(base: &std::path::Path, label: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let safe: String = label
        .chars()
        .map(|c| {
            if c == '/' || c.is_whitespace() {
                '-'
            } else {
                c
            }
        })
        .collect();
    base.with_file_name(format!("{stem}-{safe}.jsonl"))
}

/// Attaches a streaming JSONL telemetry sink to the scenario when the
/// binary was invoked with `--trace` (or `MLTCP_TRACE`); no-op otherwise.
/// Each traced scenario needs a unique `label` so parallel sweep workers
/// write distinct files.
pub fn attach_trace(sc: &mut Scenario, label: &str) {
    let Some(base) = trace_base() else { return };
    let path = trace_path(&base, label);
    match mltcp_telemetry::JsonlSink::create(&path) {
        Ok(sink) => {
            sc.set_telemetry(Box::new(sink));
            eprintln!("[tracing {label} -> {}]", path.display());
        }
        Err(e) => eprintln!("warning: could not create trace {}: {e}", path.display()),
    }
}

/// [`attach_trace`] for binaries that drive a raw
/// [`mltcp_netsim::sim::Simulator`] without the `Scenario` wrapper (no
/// job table is written, so events carry flow/job ids only).
pub fn attach_trace_sim(sim: &mut mltcp_netsim::sim::Simulator, label: &str) {
    let Some(base) = trace_base() else { return };
    let path = trace_path(&base, label);
    match mltcp_telemetry::JsonlSink::create(&path) {
        Ok(sink) => {
            sim.set_sink(Box::new(sink));
            eprintln!("[tracing {label} -> {}]", path.display());
        }
        Err(e) => eprintln!("warning: could not create trace {}: {e}", path.display()),
    }
}

/// One labelled data series (a line in a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl Series {
    /// Builds a series from y values with `x = 0, 1, 2, …`.
    pub fn from_y(label: impl Into<String>, y: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            x: (0..y.len()).map(|i| i as f64).collect(),
            y,
        }
    }

    /// Builds a series from paired points.
    pub fn from_xy(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        let (x, y) = points.into_iter().unzip();
        Self {
            label: label.into(),
            x,
            y,
        }
    }
}

/// A figure artifact: a set of series plus free-form notes, serialized to
/// `results/<name>.json` and summarized to stdout.
#[derive(Debug, Clone)]
pub struct Figure {
    /// File stem / figure id (e.g. "fig3_aggressiveness").
    pub name: String,
    /// What the figure shows.
    pub title: String,
    /// The data series.
    pub series: Vec<Series>,
    /// Key-value result summary (e.g. "tail_speedup" → 1.52).
    pub summary: Vec<(String, f64)>,
    /// Free-form notes (calibration, deviations from the paper).
    pub notes: Vec<String>,
}

impl Figure {
    /// An empty figure.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            series: Vec::new(),
            summary: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Adds a summary metric.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        self.summary.push((key.into(), value));
    }

    /// Adds a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// The figure as a JSON value tree.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("title", Json::str(&self.title)),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("label", Json::str(&s.label)),
                                ("x", Json::nums(s.x.iter().copied())),
                                ("y", Json::nums(s.y.iter().copied())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::Obj(
                    self.summary
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Writes `results/<name>.json` and prints the summary table.
    pub fn finish(&self) {
        let dir = results_dir();
        let path = dir.join(format!("{}.json", self.name));
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let json = self.to_json().to_string_pretty();
                let _ = f.write_all(json.as_bytes());
                println!("[written {}]", path.display());
            }
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        println!("== {} — {}", self.name, self.title);
        for (k, v) in &self.summary {
            println!("  {k:<44} {v:.6}");
        }
        for n in &self.notes {
            println!("  note: {n}");
        }
    }
}

/// The `results/` directory (created on demand) next to the workspace
/// root when run via cargo, else the current directory.
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../results"))
        .unwrap_or_else(|_| PathBuf::from("results"));
    let _ = std::fs::create_dir_all(&base);
    base
}

/// Prints a compact per-job report table for a finished scenario,
/// normalized by each job's analytic ideal period.
pub fn print_job_table(label: &str, sc: &Scenario) {
    experiments::print_summary_table(label, &experiments::summarize_run(sc));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_constructors() {
        let s = Series::from_y("a", vec![1.0, 2.0]);
        assert_eq!(s.x, vec![0.0, 1.0]);
        let s2 = Series::from_xy("b", vec![(0.5, 5.0), (1.5, 6.0)]);
        assert_eq!(s2.x, vec![0.5, 1.5]);
        assert_eq!(s2.y, vec![5.0, 6.0]);
    }

    #[test]
    fn env_knob_defaults() {
        assert!(scale() > 0.0);
        assert!(iters_or(7) >= 1);
    }

    #[test]
    fn figure_builds() {
        let mut f = Figure::new("test_fig", "title");
        f.push_series(Series::from_y("s", vec![1.0]));
        f.metric("m", 2.0);
        f.note("n");
        assert_eq!(f.series.len(), 1);
        assert_eq!(f.summary[0].1, 2.0);
    }
}
