//! The deterministic event engine.
//!
//! Logically, the queue is a total order over pending events by
//! `(time, sequence)`: events scheduled for the same instant fire in
//! insertion order, which makes the whole simulation reproducible
//! bit-for-bit regardless of the engine's internals.
//!
//! Two engines implement that contract (selected by [`EngineKind`]):
//!
//! * **Heap** — a plain binary min-heap, the reference implementation.
//!   Every operation is `O(log n)` in the standing event population,
//!   which on packet workloads is dominated by in-flight deliveries and
//!   lazily-cancelled RTO timers.
//! * **Wheel** — a timing wheel plus per-link *rails*, the default. The
//!   wheel gives `O(1)` inserts for timers/messages/faults; the rails
//!   exploit link serialization order so per-packet events never touch a
//!   heap at all (see below). Pop order is identical to the heap engine:
//!   both consume the same sequence counter at the same call sites, and
//!   the global pop takes the `(time, seq)`-minimum across sub-queues.
//!   `engine_equivalence` proptests pin this.
//!
//! ## The timing wheel
//!
//! Near-future events land in one of [`WHEEL_SLOTS`] buckets of
//! `2^WHEEL_SHIFT` ns each (4.096 µs — comfortably below the 50 µs RTO
//! floor, so retransmission timers spread across buckets instead of
//! piling into one). Insert is a `Vec::push`. A cursor walks the
//! occupancy bitmap; the current bucket's events sit in a small `active`
//! heap that restores exact `(time, seq)` order within the bucket.
//! Events beyond the ~8.4 ms horizon go to an `overflow` heap that is
//! drained bucket-wise as the cursor reaches them — far-future faults
//! and coarse compute timers are rare, so the overflow heap stays tiny.
//!
//! ## Link rails (serialization coalescing)
//!
//! A directed channel serializes one packet at a time, so per link there
//! is **at most one** pending `ChannelIdle` (the departure of the packet
//! being serialized), and deliveries leave the link in FIFO order: each
//! arrival is `done + delay` where `done` is non-decreasing and `delay`
//! is a link constant — true under brownouts (which only stretch `done`)
//! and under link flaps (which drop, never reorder). Each link therefore
//! keeps a one-slot departure and a `VecDeque` of in-flight deliveries;
//! a tiny index-min-heap over links (dozens of entries, not millions of
//! events) yields the earliest rail head. The common per-packet cost is
//! two deque ops and a near-top heap fixup instead of four full-depth
//! binary-heap sifts. Events that do not fit the invariant (a second
//! pending departure, an out-of-order delivery — possible only through
//! the generic [`EventQueue::schedule`] API, never from the simulator)
//! fall back to the wheel, so the rails are a pure optimization, not a
//! correctness assumption.
//!
//! ## Event size
//!
//! Heap sifts copy whole [`Event`]s, so [`EventKind::Deliver`] boxes its
//! payload to pin `size_of::<Event>()` at 40 bytes (test-enforced by
//! `event_size_stays_small`); the queue recycles the boxes through an
//! internal free list so steady-state delivery costs no allocation. The
//! rails store the
//! [`Delivery`] payload inline in their deques — deque pushes don't
//! sift, so the box round-trip is skipped entirely on that path.
//!
//! ## Capacity release
//!
//! Large scenarios grow the engine's internal buffers to their peak
//! event population. When the queue drains (and on explicit
//! [`EventQueue::shrink_to_fit`] calls) any oversized buffer is returned
//! to the allocator, so a process running many scenarios back to back
//! holds peak memory only while the peak scenario runs.

use crate::link::LinkId;
use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::OnceLock;

/// A packet in flight: the payload of [`EventKind::Deliver`].
///
/// Besides the packet itself, a delivery remembers which channel carried
/// it (`via`) and that channel's incarnation (`epoch`) at serialization
/// time, so fault injection can cut packets that were on the wire when a
/// link went down: the arrival handler drops any delivery whose stamped
/// epoch no longer matches the channel's. Host-local sends use
/// [`LinkId::NONE`] and are never cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving node.
    pub node: NodeId,
    /// The channel the packet crossed ([`LinkId::NONE`] for local sends).
    pub via: LinkId,
    /// The channel's epoch when serialization started.
    pub epoch: u32,
    /// The packet.
    pub pkt: Packet,
}

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A packet finishes propagation and arrives (boxed to keep
    /// [`Event`] small; the queue pools and reuses the allocations).
    Deliver(Box<Delivery>),
    /// A directed channel finishes serializing its current packet and may
    /// start the next one.
    ChannelIdle {
        /// The channel that became idle.
        link: LinkId,
    },
    /// An agent-scheduled timer fires; `agent` is the agent index and
    /// `token` an opaque value the agent chose.
    Timer {
        /// Owning agent (index into the simulator's agent table).
        agent: u32,
        /// Opaque discriminator chosen by the agent.
        token: u64,
    },
    /// An agent-to-agent message (e.g. a workload driver commanding a
    /// transport endpoint, or an endpoint reporting completion).
    Message {
        /// Receiving agent index.
        to: u32,
        /// Sending agent index.
        from: u32,
        /// Opaque payload.
        token: u64,
    },
    /// An installed fault fires; `index` points into the simulator's
    /// fault table (see [`crate::fault::FaultPlan`]).
    Fault {
        /// Index into the simulator's installed-fault table.
        index: u32,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion sequence number (tie-break).
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A popped event with its delivery payload inline — what
/// [`EventQueue::pop_event`] returns to the simulator's dispatcher.
///
/// [`Event`] boxes deliveries so heap sifts stay cheap, but the
/// *dispatcher* wants the payload by value (it consumes the delivery
/// immediately). Returning this shape lets the wheel's rails hand their
/// inline payload straight through — no box round-trip on the hottest
/// path — while the heap engine unboxes once and recycles internally.
#[derive(Debug)]
pub struct Popped {
    /// When the event fired.
    pub at: SimTime,
    /// Insertion sequence number.
    pub seq: u64,
    /// The action, with any delivery payload inline.
    pub kind: PoppedKind,
}

/// [`EventKind`] with the `Deliver` payload held by value. See
/// [`Popped`].
#[derive(Debug)]
pub enum PoppedKind {
    /// A packet arrives (payload inline).
    Deliver(Delivery),
    /// A channel's serializer frees up.
    ChannelIdle {
        /// The channel that became idle.
        link: LinkId,
    },
    /// An agent timer fires.
    Timer {
        /// Owning agent index.
        agent: u32,
        /// Opaque discriminator chosen by the agent.
        token: u64,
    },
    /// An agent-to-agent message.
    Message {
        /// Receiving agent index.
        to: u32,
        /// Sending agent index.
        from: u32,
        /// Opaque payload.
        token: u64,
    },
    /// An installed fault fires.
    Fault {
        /// Index into the simulator's installed-fault table.
        index: u32,
    },
}

/// Which event-engine implementation a queue uses. Both produce
/// bit-for-bit identical pop orders; they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The reference binary min-heap.
    Heap,
    /// Timing wheel + link rails (the default).
    Wheel,
}

static ENGINE_FROM_ENV: OnceLock<EngineKind> = OnceLock::new();

impl EngineKind {
    /// The engine selected by the `MLTCP_ENGINE` environment variable
    /// (`"heap"` or `"wheel"`), defaulting to [`EngineKind::Wheel`].
    ///
    /// The lookup is cached for the process lifetime, so every simulator
    /// in a run — including sweep workers on other threads — sees the
    /// same engine even if the environment is mutated mid-process.
    pub fn from_env() -> Self {
        *ENGINE_FROM_ENV.get_or_init(|| match std::env::var("MLTCP_ENGINE").as_deref() {
            Ok("heap") => EngineKind::Heap,
            _ => EngineKind::Wheel,
        })
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Heap => "heap",
            EngineKind::Wheel => "wheel",
        }
    }
}

/// log2 of the wheel bucket width in nanoseconds (4.096 µs buckets).
const WHEEL_SHIFT: u32 = 12;
/// Number of wheel buckets (must be a power of two); with
/// [`WHEEL_SHIFT`] this spans an ~8.4 ms horizon.
const WHEEL_SLOTS: usize = 2048;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// Links with indices above this never get a rail (guards against
/// pathological `LinkId`s through the generic API allocating huge
/// tables; real topologies have at most thousands of channels).
const MAX_RAIL_LINKS: usize = 1 << 20;

/// Buffers at or below this capacity are kept across drains; bigger
/// ones are released (see module docs, *Capacity release*).
const KEEP_CAPACITY: usize = 64;

/// The timing wheel: near-future buckets + an overflow heap, with the
/// cursor bucket's events held in a small `active` heap.
#[derive(Debug)]
struct Wheel {
    buckets: Vec<Vec<Event>>,
    occupied: [u64; WHEEL_WORDS],
    /// Events of the cursor bucket (and any insert at/behind the
    /// cursor), in exact `(time, seq)` order.
    active: BinaryHeap<Event>,
    /// Events beyond the wheel horizon at insert time.
    overflow: BinaryHeap<Event>,
    /// Absolute bucket index (`at >> WHEEL_SHIFT`) the wheel is at.
    cursor: u64,
    len: usize,
}

impl Wheel {
    fn new() -> Self {
        Self {
            buckets: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            active: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            len: 0,
        }
    }

    fn push(&mut self, e: Event) {
        self.len += 1;
        let b = e.at.as_nanos() >> WHEEL_SHIFT;
        if b <= self.cursor {
            self.active.push(e);
        } else if b < self.cursor + WHEEL_SLOTS as u64 {
            let s = (b & WHEEL_MASK) as usize;
            self.buckets[s].push(e);
            self.occupied[s >> 6] |= 1 << (s & 63);
        } else {
            self.overflow.push(e);
        }
    }

    /// First occupied bucket strictly after the cursor (absolute index),
    /// via a word-wise circular scan of the occupancy bitmap.
    fn next_occupied(&self) -> Option<u64> {
        let start = ((self.cursor + 1) & WHEEL_MASK) as usize;
        let mut w = start >> 6;
        let mut word = self.occupied[w] & (!0u64 << (start & 63));
        // One extra iteration re-visits the first word's low bits, which
        // sit a full lap away in circular order.
        for _ in 0..=WHEEL_WORDS {
            if word != 0 {
                let slot = (w << 6) + word.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) & (WHEEL_SLOTS - 1);
                return Some(self.cursor + 1 + dist as u64);
            }
            w = (w + 1) % WHEEL_WORDS;
            word = self.occupied[w];
        }
        None
    }

    /// Advances the cursor to the next non-empty bucket and refills
    /// `active`; afterwards `active` is non-empty iff the wheel is.
    ///
    /// Invariant kept: `active` holds exactly the pending events with
    /// bucket ≤ cursor, so its min is the wheel's global min.
    fn ensure_active(&mut self) {
        if !self.active.is_empty() || self.len == 0 {
            return;
        }
        let target = match (
            self.next_occupied(),
            self.overflow.peek().map(|e| e.at.as_nanos() >> WHEEL_SHIFT),
        ) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => unreachable!("wheel len > 0 with no pending bucket"),
        };
        self.cursor = target;
        let s = (target & WHEEL_MASK) as usize;
        if self.occupied[s >> 6] & (1 << (s & 63)) != 0 {
            self.occupied[s >> 6] &= !(1 << (s & 63));
            for e in self.buckets[s].drain(..) {
                self.active.push(e);
            }
        }
        while let Some(e) = self.overflow.peek() {
            if e.at.as_nanos() >> WHEEL_SHIFT > self.cursor {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            self.active.push(e);
        }
        debug_assert!(!self.active.is_empty());
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.ensure_active();
        self.active.peek().map(|e| (e.at, e.seq))
    }

    fn pop(&mut self) -> Option<Event> {
        self.ensure_active();
        let e = self.active.pop()?;
        self.len -= 1;
        Some(e)
    }

    fn capacity(&self) -> usize {
        self.active.capacity()
            + self.overflow.capacity()
            + self
                .buckets
                .iter()
                .map(Vec::capacity)
                .filter(|&c| c > KEEP_CAPACITY)
                .sum::<usize>()
    }

    fn release(&mut self) {
        if self.active.capacity() > KEEP_CAPACITY {
            self.active.shrink_to_fit();
        }
        if self.overflow.capacity() > KEEP_CAPACITY {
            self.overflow.shrink_to_fit();
        }
        for b in &mut self.buckets {
            if b.capacity() > KEEP_CAPACITY {
                b.shrink_to_fit();
            }
        }
    }
}

/// An in-flight delivery riding a link rail (payload inline: deque
/// pushes don't sift, so fat entries cost one copy each way).
#[derive(Debug)]
struct RailDelivery {
    at: SimTime,
    seq: u64,
    d: Delivery,
}

/// One directed channel's pending events: the (single) departure of the
/// packet being serialized, and the FIFO of packets on the wire.
#[derive(Debug, Default)]
struct Rail {
    departure: Option<(SimTime, u64)>,
    deliveries: VecDeque<RailDelivery>,
}

impl Rail {
    fn head_key(&self) -> Option<(SimTime, u64)> {
        let del = self.deliveries.front().map(|r| (r.at, r.seq));
        match (self.departure, del) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Sentinel for "not in the rail index heap".
const ABSENT: u32 = u32::MAX;

/// What a rail pop yields.
enum RailItem {
    Departure(LinkId),
    Delivery(Delivery),
}

/// An index-min-heap entry: a rail's head `(time, seq)` key, cached,
/// plus the link it belongs to. Caching the key keeps sift comparisons
/// inside the heap array instead of chasing into `rails` twice per
/// comparison.
#[derive(Debug, Clone, Copy)]
struct RailEntry {
    at: SimTime,
    seq: u64,
    link: u32,
}

impl RailEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Per-link rails under an index-min-heap keyed by each rail's head
/// `(time, seq)`. The heap has one entry per *link with pending events*
/// — topology-sized, not event-population-sized.
#[derive(Debug, Default)]
struct Rails {
    rails: Vec<Rail>,
    heap: Vec<RailEntry>,
    /// `pos[link] == ABSENT` when the link has no pending events.
    pos: Vec<u32>,
}

impl Rails {
    fn ensure(&mut self, li: usize) {
        if li >= self.rails.len() {
            self.rails.resize_with(li + 1, Rail::default);
            self.pos.resize(li + 1, ABSENT);
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].link as usize] = a as u32;
        self.pos[self.heap[b].link as usize] = b as u32;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut best = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len() && self.heap[child].key() < self.heap[best].key() {
                    best = child;
                }
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    /// Re-positions link `li` in the index heap after its head changed,
    /// refreshing the cached key.
    fn reindex(&mut self, li: usize) {
        let head = self.rails[li].head_key();
        match (self.pos[li], head) {
            (ABSENT, Some((at, seq))) => {
                let i = self.heap.len();
                self.heap.push(RailEntry {
                    at,
                    seq,
                    link: li as u32,
                });
                self.pos[li] = i as u32;
                self.sift_up(i);
            }
            (ABSENT, None) => {}
            (p, Some((at, seq))) => {
                let p = p as usize;
                self.heap[p].at = at;
                self.heap[p].seq = seq;
                self.sift_up(p);
                self.sift_down(p);
            }
            (p, None) => {
                let p = p as usize;
                let last = self.heap.len() - 1;
                if p != last {
                    self.swap(p, last);
                }
                self.heap.pop();
                self.pos[li] = ABSENT;
                if p < self.heap.len() {
                    self.sift_up(p);
                    self.sift_down(p);
                }
            }
        }
    }

    /// Whether the departure slot of `li` is free (rails hold at most
    /// one pending departure per link).
    fn departure_slot_free(&self, li: usize) -> bool {
        self.rails.get(li).is_none_or(|r| r.departure.is_none())
    }

    /// Whether `(at, seq)` extends link `li`'s delivery FIFO in order.
    fn delivery_in_order(&self, li: usize, at: SimTime, seq: u64) -> bool {
        match self.rails.get(li).and_then(|r| r.deliveries.back()) {
            Some(b) => (b.at, b.seq) < (at, seq),
            None => true,
        }
    }

    fn push_departure(&mut self, li: usize, at: SimTime, seq: u64) {
        let old = self.rails[li].head_key();
        debug_assert!(self.rails[li].departure.is_none());
        self.rails[li].departure = Some((at, seq));
        if old != self.rails[li].head_key() {
            self.reindex(li);
        }
    }

    fn push_delivery(&mut self, li: usize, at: SimTime, seq: u64, d: Delivery) {
        let old = self.rails[li].head_key();
        self.rails[li]
            .deliveries
            .push_back(RailDelivery { at, seq, d });
        if old != self.rails[li].head_key() {
            self.reindex(li);
        }
    }

    #[inline]
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.first().map(RailEntry::key)
    }

    fn pop_min(&mut self) -> Option<(SimTime, u64, RailItem)> {
        let li = self.heap.first()?.link;
        let liu = li as usize;
        let rail = &mut self.rails[liu];
        let take_departure = match (rail.departure, rail.deliveries.front()) {
            (Some(a), Some(b)) => a < (b.at, b.seq),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("empty rail in heap"),
        };
        let out = if take_departure {
            let (at, seq) = rail.departure.take().expect("checked");
            (at, seq, RailItem::Departure(LinkId(li)))
        } else {
            let r = rail.deliveries.pop_front().expect("checked");
            (r.at, r.seq, RailItem::Delivery(r.d))
        };
        self.reindex(liu);
        Some(out)
    }

    fn capacity(&self) -> usize {
        self.rails
            .iter()
            .map(|r| r.deliveries.capacity())
            .filter(|&c| c > KEEP_CAPACITY)
            .sum()
    }

    fn release(&mut self) {
        for r in &mut self.rails {
            if r.deliveries.capacity() > KEEP_CAPACITY {
                r.deliveries.shrink_to_fit();
            }
        }
    }
}

/// The simulation's event queue. See the module docs for the two
/// engines and their shared determinism contract.
#[derive(Debug)]
pub struct EventQueue {
    engine: EngineKind,
    next_seq: u64,
    len: usize,
    /// The entire queue under [`EngineKind::Heap`]; unused by the wheel
    /// engine (which has its own overflow heap inside [`Wheel`]).
    heap: BinaryHeap<Event>,
    wheel: Wheel,
    rails: Rails,
    /// Recycled `Deliver` boxes; bounded by the peak number of in-flight
    /// boxed deliveries.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<Delivery>>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue on the environment-selected engine
    /// ([`EngineKind::from_env`]).
    pub fn new() -> Self {
        Self::with_engine(EngineKind::from_env())
    }

    /// An empty queue on an explicit engine.
    pub fn with_engine(engine: EngineKind) -> Self {
        Self {
            engine,
            next_seq: 0,
            len: 0,
            heap: BinaryHeap::new(),
            wheel: Wheel::new(),
            rails: Rails::default(),
            pool: Vec::new(),
        }
    }

    /// The engine this queue runs on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    fn bump(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn railable(link: LinkId) -> bool {
        link != LinkId::NONE && link.index() < MAX_RAIL_LINKS
    }

    /// Wraps a delivery in a pooled box (allocating only when the pool
    /// is dry).
    fn boxed(&mut self, d: Delivery) -> Box<Delivery> {
        match self.pool.pop() {
            Some(mut b) => {
                *b = d;
                b
            }
            None => Box::new(d),
        }
    }

    /// Converts a heap/wheel [`Event`] into a [`Popped`], returning any
    /// delivery box to the pool.
    fn unbox(&mut self, e: Event) -> Popped {
        let kind = match e.kind {
            EventKind::Deliver(b) => {
                let d = *b;
                self.pool.push(b);
                PoppedKind::Deliver(d)
            }
            EventKind::ChannelIdle { link } => PoppedKind::ChannelIdle { link },
            EventKind::Timer { agent, token } => PoppedKind::Timer { agent, token },
            EventKind::Message { to, from, token } => PoppedKind::Message { to, from, token },
            EventKind::Fault { index } => PoppedKind::Fault { index },
        };
        Popped {
            at: e.at,
            seq: e.seq,
            kind,
        }
    }

    /// Schedules `kind` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.bump();
        self.len += 1;
        match self.engine {
            EngineKind::Heap => self.heap.push(Event { at, seq, kind }),
            EngineKind::Wheel => match kind {
                EventKind::ChannelIdle { link } if Self::railable(link) => {
                    let li = link.index();
                    self.rails.ensure(li);
                    if self.rails.departure_slot_free(li) {
                        self.rails.push_departure(li, at, seq);
                    } else {
                        let kind = EventKind::ChannelIdle { link };
                        self.wheel.push(Event { at, seq, kind });
                    }
                }
                EventKind::Deliver(b) if Self::railable(b.via) => {
                    let li = b.via.index();
                    self.rails.ensure(li);
                    if self.rails.delivery_in_order(li, at, seq) {
                        let d = *b;
                        self.pool.push(b);
                        self.rails.push_delivery(li, at, seq, d);
                    } else {
                        let kind = EventKind::Deliver(b);
                        self.wheel.push(Event { at, seq, kind });
                    }
                }
                other => self.wheel.push(Event {
                    at,
                    seq,
                    kind: other,
                }),
            },
        }
    }

    /// Schedules a packet delivery — the per-packet hot path. On the
    /// wheel engine an in-order link delivery rides the rail with its
    /// payload inline, skipping the box entirely.
    pub fn schedule_delivery(
        &mut self,
        at: SimTime,
        node: NodeId,
        via: LinkId,
        epoch: u32,
        pkt: Packet,
    ) {
        let seq = self.bump();
        self.len += 1;
        let d = Delivery {
            node,
            via,
            epoch,
            pkt,
        };
        if self.engine == EngineKind::Wheel && Self::railable(via) {
            let li = via.index();
            self.rails.ensure(li);
            if self.rails.delivery_in_order(li, at, seq) {
                self.rails.push_delivery(li, at, seq, d);
                return;
            }
        }
        let b = self.boxed(d);
        let kind = EventKind::Deliver(b);
        match self.engine {
            EngineKind::Heap => self.heap.push(Event { at, seq, kind }),
            EngineKind::Wheel => self.wheel.push(Event { at, seq, kind }),
        }
    }

    /// Removes and returns the earliest event with its payload inline —
    /// the dispatcher's pop (see [`Popped`]).
    pub fn pop_event(&mut self) -> Option<Popped> {
        let e = self.pop_inner()?;
        self.len -= 1;
        if self.len == 0 {
            self.maybe_release();
        }
        Some(e)
    }

    /// Removes and returns the earliest event (boxed [`Event`] shape,
    /// for callers that store or compare events).
    pub fn pop(&mut self) -> Option<Event> {
        let p = self.pop_event()?;
        let kind = match p.kind {
            PoppedKind::Deliver(d) => EventKind::Deliver(self.boxed(d)),
            PoppedKind::ChannelIdle { link } => EventKind::ChannelIdle { link },
            PoppedKind::Timer { agent, token } => EventKind::Timer { agent, token },
            PoppedKind::Message { to, from, token } => EventKind::Message { to, from, token },
            PoppedKind::Fault { index } => EventKind::Fault { index },
        };
        Some(Event {
            at: p.at,
            seq: p.seq,
            kind,
        })
    }

    fn pop_inner(&mut self) -> Option<Popped> {
        match self.engine {
            EngineKind::Heap => {
                let e = self.heap.pop()?;
                Some(self.unbox(e))
            }
            EngineKind::Wheel => {
                let take_rail = match (self.wheel.peek_key(), self.rails.peek_key()) {
                    (Some(w), Some(r)) => r < w,
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                    (None, None) => return None,
                };
                Some(self.pop_wheel_source(take_rail))
            }
        }
    }

    /// Pops from the chosen wheel-engine source (`true` = rails). The
    /// caller has already established the source is non-empty.
    fn pop_wheel_source(&mut self, take_rail: bool) -> Popped {
        if take_rail {
            let (at, seq, item) = self.rails.pop_min().expect("rail head exists");
            let kind = match item {
                RailItem::Departure(link) => PoppedKind::ChannelIdle { link },
                RailItem::Delivery(d) => PoppedKind::Deliver(d),
            };
            Popped { at, seq, kind }
        } else {
            let e = self.wheel.pop().expect("wheel head exists");
            self.unbox(e)
        }
    }

    /// Like [`EventQueue::pop_event`], but only if the earliest event
    /// fires at or before `deadline`; later events stay queued.
    ///
    /// Peek and pop are fused: the run loop calls this once per event,
    /// so the min-across-sources comparison happens exactly once instead
    /// of once in `peek_time` and again in the pop.
    pub fn pop_event_before(&mut self, deadline: SimTime) -> Option<Popped> {
        let p = match self.engine {
            EngineKind::Heap => {
                if self.heap.peek()?.at > deadline {
                    return None;
                }
                let e = self.heap.pop().expect("peeked");
                self.unbox(e)
            }
            EngineKind::Wheel => {
                let (key, take_rail) = match (self.wheel.peek_key(), self.rails.peek_key()) {
                    (Some(w), Some(r)) => {
                        if r < w {
                            (r, true)
                        } else {
                            (w, false)
                        }
                    }
                    (None, Some(r)) => (r, true),
                    (Some(w), None) => (w, false),
                    (None, None) => return None,
                };
                if key.0 > deadline {
                    return None;
                }
                self.pop_wheel_source(take_rail)
            }
        };
        self.len -= 1;
        if self.len == 0 {
            self.maybe_release();
        }
        Some(p)
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `deadline`; later events stay queued.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event> {
        if self.peek_time()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Timestamp of the earliest pending event. Takes `&mut self`: the
    /// wheel engine may advance its cursor to find the minimum (which
    /// never changes what will be popped, only where it is staged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match self.engine {
            EngineKind::Heap => self.heap.peek().map(|e| e.at),
            EngineKind::Wheel => match (self.wheel.peek_key(), self.rails.peek_key()) {
                (Some(w), Some(r)) => Some(w.min(r).0),
                (Some(w), None) => Some(w.0),
                (None, Some(r)) => Some(r.0),
                (None, None) => None,
            },
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate retained capacity, in event-sized slots — the
    /// observable the capacity-release tests bound.
    pub fn capacity(&self) -> usize {
        self.heap.capacity() + self.wheel.capacity() + self.rails.capacity() + self.pool.len()
    }

    /// Releases oversized internal buffers (see module docs). Called
    /// automatically whenever the queue drains; harmless mid-run.
    pub fn shrink_to_fit(&mut self) {
        if self.heap.capacity() > KEEP_CAPACITY {
            self.heap.shrink_to_fit();
        }
        self.wheel.release();
        self.rails.release();
        if self.pool.len() > KEEP_CAPACITY {
            self.pool.truncate(KEEP_CAPACITY);
            self.pool.shrink_to_fit();
        }
    }

    fn maybe_release(&mut self) {
        if self.capacity() > 4 * KEEP_CAPACITY {
            self.shrink_to_fit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(agent: u32, token: u64) -> EventKind {
        EventKind::Timer { agent, token }
    }

    fn engines() -> [EngineKind; 2] {
        [EngineKind::Heap, EngineKind::Wheel]
    }

    #[test]
    fn event_size_stays_small() {
        // Heap sifts copy whole events; a fat event (e.g. an inline
        // ~56-byte packet) multiplies the event loop's memory traffic.
        assert!(
            std::mem::size_of::<Event>() <= 40,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn pop_before_respects_deadline() {
        for engine in engines() {
            let mut q = EventQueue::with_engine(engine);
            q.schedule(SimTime(10), timer(0, 1));
            q.schedule(SimTime(20), timer(0, 2));
            q.schedule(SimTime(20), timer(0, 3));
            q.schedule(SimTime(30), timer(0, 4));
            assert!(q.pop_before(SimTime(5)).is_none());
            assert_eq!(q.pop_before(SimTime(20)).unwrap().at, SimTime(10));
            // Deadline is inclusive, ties still pop in insertion order.
            let e2 = q.pop_before(SimTime(20)).unwrap();
            let e3 = q.pop_before(SimTime(20)).unwrap();
            assert!(e2.seq < e3.seq);
            assert!(q.pop_before(SimTime(20)).is_none());
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_before(SimTime::MAX).unwrap().at, SimTime(30));
            assert!(q.pop_before(SimTime::MAX).is_none());
        }
    }

    #[test]
    fn pops_in_time_order() {
        for engine in engines() {
            let mut q = EventQueue::with_engine(engine);
            q.schedule(SimTime(30), timer(0, 3));
            q.schedule(SimTime(10), timer(0, 1));
            q.schedule(SimTime(20), timer(0, 2));
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Timer { token, .. } => token,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for engine in engines() {
            let mut q = EventQueue::with_engine(engine);
            for token in 0..100 {
                q.schedule(SimTime(5), timer(0, token));
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Timer { token, .. } => token,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        // Spans several horizons (8.4 ms each) plus near-term events, so
        // buckets, overflow refill, and cursor jumps all exercise.
        for engine in engines() {
            let mut q = EventQueue::with_engine(engine);
            let times = [
                0u64,
                1,
                5_000,
                4_100_000, // a bucket boundary region
                8_400_000, // ~ horizon
                8_400_001,
                100_000_000,   // far overflow
                3_000_000_000, // seconds out
            ];
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), timer(0, i as u64));
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
            let mut sorted = times.to_vec();
            sorted.sort_unstable();
            assert_eq!(order, sorted, "engine {engine:?}");
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        for engine in engines() {
            let mut q = EventQueue::with_engine(engine);
            assert_eq!(q.peek_time(), None);
            q.schedule(SimTime(42), timer(0, 0));
            q.schedule(SimTime(7), timer(0, 1));
            assert_eq!(q.peek_time(), Some(SimTime(7)));
            q.pop();
            assert_eq!(q.peek_time(), Some(SimTime(42)));
        }
    }

    #[test]
    fn len_and_is_empty() {
        for engine in engines() {
            let mut q = EventQueue::with_engine(engine);
            assert!(q.is_empty());
            q.schedule(SimTime(1), timer(0, 0));
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn drain_releases_capacity() {
        for engine in engines() {
            let mut q = EventQueue::with_engine(engine);
            for i in 0..100_000u64 {
                q.schedule(SimTime(i * 13 % 50_000), timer(0, i));
            }
            assert!(q.capacity() >= 50_000, "queue should have grown");
            while q.pop().is_some() {}
            assert!(
                q.capacity() <= 4 * KEEP_CAPACITY,
                "engine {engine:?} retained {} slots after drain",
                q.capacity()
            );
        }
    }

    /// A deterministic mixed workload for the equivalence tests: link
    /// traffic (in-order and deliberately out-of-order deliveries,
    /// paired and duplicate departures), timers near and far, and
    /// interleaved pops.
    fn mixed_op(i: u64) -> (u64, u8) {
        // Simple LCG so the pattern is fixed but irregular.
        let x = i
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 16, (x >> 8) as u8)
    }

    #[test]
    fn engines_pop_identically_on_mixed_traffic() {
        use crate::packet::FlowId;
        let run = |engine: EngineKind| -> Vec<(u64, u64, String)> {
            let mut q = EventQueue::with_engine(engine);
            let mut out = Vec::new();
            let mut t = 0u64;
            for i in 0..4_000u64 {
                let (r, op) = mixed_op(i);
                t += r % 5_000; // mostly forward, frequent ties via %
                let at = SimTime(t - t % 3); // force some equal stamps
                match op % 8 {
                    0 | 1 => q.schedule(
                        at,
                        EventKind::ChannelIdle {
                            link: LinkId((r % 4) as u32),
                        },
                    ),
                    2..=4 => {
                        let d = Delivery {
                            node: NodeId(1),
                            via: LinkId((r % 4) as u32),
                            epoch: 0,
                            pkt: Packet::data(FlowId(1), NodeId(0), NodeId(1), i * 100, 100),
                        };
                        // Out-of-order arrivals (earlier than the rail
                        // tail) exercise the wheel fallback.
                        let at = if op % 16 < 2 { SimTime(t / 2) } else { at };
                        q.schedule(at, EventKind::Deliver(Box::new(d)));
                    }
                    5 => q.schedule(SimTime(t + 50_000_000), timer(0, i)), // overflow range
                    6 => q.schedule(at, timer(0, i)),
                    _ => {
                        if let Some(e) = q.pop() {
                            out.push((e.at.0, e.seq, format!("{:?}", e.kind)));
                        }
                    }
                }
            }
            while let Some(e) = q.pop() {
                out.push((e.at.0, e.seq, format!("{:?}", e.kind)));
            }
            out
        };
        let heap = run(EngineKind::Heap);
        let wheel = run(EngineKind::Wheel);
        assert_eq!(heap.len(), wheel.len());
        for (i, (h, w)) in heap.iter().zip(wheel.iter()).enumerate() {
            assert_eq!(h, w, "divergence at pop {i}");
        }
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Popping always yields a non-decreasing time sequence, and
            /// equal-time events preserve insertion order — on both
            /// engines.
            #[test]
            fn total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
                for engine in engines() {
                    let mut q = EventQueue::with_engine(engine);
                    for (i, &t) in times.iter().enumerate() {
                        q.schedule(SimTime(t), timer(0, i as u64));
                    }
                    let mut prev: Option<Event> = None;
                    while let Some(e) = q.pop() {
                        if let Some(p) = &prev {
                            prop_assert!(p.at <= e.at);
                            if p.at == e.at {
                                prop_assert!(p.seq < e.seq);
                            }
                        }
                        prev = Some(e);
                    }
                }
            }

            /// Satellite: wheel-vs-heap pop-order equivalence on random
            /// insert/pop interleavings. `ops` drives both an insert
            /// schedule (with same-timestamp ties and a wheel-horizon
            /// time spread) and interleaved pops; the two engines must
            /// produce identical `(time, seq, kind)` streams.
            #[test]
            fn engine_equivalence(ops in proptest::collection::vec((0u64..30_000_000, 0u8..10), 1..300)) {
                let run = |engine: EngineKind| -> Vec<(u64, u64, String)> {
                    let mut q = EventQueue::with_engine(engine);
                    let mut out = Vec::new();
                    for (i, &(t, op)) in ops.iter().enumerate() {
                        // Quantize times so ties are common.
                        let at = SimTime(t - t % 1000);
                        match op {
                            0..=2 => q.schedule(at, timer(0, i as u64)),
                            3 | 4 => q.schedule(at, EventKind::ChannelIdle { link: LinkId((op % 3) as u32) }),
                            5 | 6 => {
                                use crate::packet::FlowId;
                                let d = Delivery {
                                    node: NodeId(1),
                                    via: LinkId((op % 3) as u32),
                                    epoch: 0,
                                    pkt: Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 100),
                                };
                                q.schedule(at, EventKind::Deliver(Box::new(d)));
                            }
                            7 => q.schedule(at, EventKind::Message { to: 0, from: 1, token: i as u64 }),
                            _ => {
                                if let Some(e) = q.pop() {
                                    out.push((e.at.0, e.seq, format!("{:?}", e.kind)));
                                }
                            }
                        }
                    }
                    while let Some(e) = q.pop() {
                        out.push((e.at.0, e.seq, format!("{:?}", e.kind)));
                    }
                    out
                };
                prop_assert_eq!(run(EngineKind::Heap), run(EngineKind::Wheel));
            }
        }
    }
}
