//! The deterministic event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`: events scheduled for
//! the same instant fire in insertion order, which makes the whole
//! simulation reproducible bit-for-bit regardless of heap internals.
//!
//! ## Event size
//!
//! Every sift during a heap push/pop moves whole [`Event`]s, so the event
//! loop's memory traffic is proportional to `size_of::<Event>()`. Two
//! representation choices keep that small (40 bytes rather than ~104):
//!
//! * [`EventKind::Deliver`] boxes its packet; the simulator recycles the
//!   boxes through a free list, so steady-state delivery costs no
//!   allocation (see `SimCore` in [`crate::sim`]).
//! * Agent indices are stored as `u32` (4 billion agents is far beyond
//!   any topology this simulator targets; the public
//!   [`AgentId`](crate::sim::AgentId) stays `usize`).
//!
//! The `event_size_stays_small` test pins this bound.

use crate::link::LinkId;
use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A packet in flight: the payload of [`EventKind::Deliver`].
///
/// Besides the packet itself, a delivery remembers which channel carried
/// it (`via`) and that channel's incarnation (`epoch`) at serialization
/// time, so fault injection can cut packets that were on the wire when a
/// link went down: the arrival handler drops any delivery whose stamped
/// epoch no longer matches the channel's. Host-local sends use
/// [`LinkId::NONE`] and are never cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving node.
    pub node: NodeId,
    /// The channel the packet crossed ([`LinkId::NONE`] for local sends).
    pub via: LinkId,
    /// The channel's epoch when serialization started.
    pub epoch: u32,
    /// The packet.
    pub pkt: Packet,
}

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A packet finishes propagation and arrives (boxed to keep
    /// [`Event`] small; the simulator pools and reuses the allocations).
    Deliver(Box<Delivery>),
    /// A directed channel finishes serializing its current packet and may
    /// start the next one.
    ChannelIdle {
        /// The channel that became idle.
        link: LinkId,
    },
    /// An agent-scheduled timer fires; `agent` is the agent index and
    /// `token` an opaque value the agent chose.
    Timer {
        /// Owning agent (index into the simulator's agent table).
        agent: u32,
        /// Opaque discriminator chosen by the agent.
        token: u64,
    },
    /// An agent-to-agent message (e.g. a workload driver commanding a
    /// transport endpoint, or an endpoint reporting completion).
    Message {
        /// Receiving agent index.
        to: u32,
        /// Sending agent index.
        from: u32,
        /// Opaque payload.
        token: u64,
    },
    /// An installed fault fires; `index` points into the simulator's
    /// fault table (see [`crate::fault::FaultPlan`]).
    Fault {
        /// Index into the simulator's installed-fault table.
        index: u32,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion sequence number (tie-break).
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulation's event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `deadline`; later events stay queued. One heap access instead of
    /// the peek-then-pop pair a caller would otherwise need.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event> {
        if self.heap.peek()?.at > deadline {
            return None;
        }
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(agent: u32, token: u64) -> EventKind {
        EventKind::Timer { agent, token }
    }

    #[test]
    fn event_size_stays_small() {
        // Heap sifts copy whole events; a fat event (e.g. an inline
        // ~56-byte packet) multiplies the event loop's memory traffic.
        assert!(
            std::mem::size_of::<Event>() <= 40,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), timer(0, 1));
        q.schedule(SimTime(20), timer(0, 2));
        q.schedule(SimTime(20), timer(0, 3));
        q.schedule(SimTime(30), timer(0, 4));
        assert!(q.pop_before(SimTime(5)).is_none());
        assert_eq!(q.pop_before(SimTime(20)).unwrap().at, SimTime(10));
        // Deadline is inclusive, ties still pop in insertion order.
        let e2 = q.pop_before(SimTime(20)).unwrap();
        let e3 = q.pop_before(SimTime(20)).unwrap();
        assert!(e2.seq < e3.seq);
        assert!(q.pop_before(SimTime(20)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(SimTime::MAX).unwrap().at, SimTime(30));
        assert!(q.pop_before(SimTime::MAX).is_none());
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), timer(0, 3));
        q.schedule(SimTime(10), timer(0, 1));
        q.schedule(SimTime(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.schedule(SimTime(5), timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(42), timer(0, 0));
        q.schedule(SimTime(7), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(42)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), timer(0, 0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Popping always yields a non-decreasing time sequence, and
            /// equal-time events preserve insertion order.
            #[test]
            fn total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime(t), timer(0, i as u64));
                }
                let mut prev: Option<Event> = None;
                while let Some(e) = q.pop() {
                    if let Some(p) = &prev {
                        prop_assert!(p.at <= e.at);
                        if p.at == e.at {
                            prop_assert!(p.seq < e.seq);
                        }
                    }
                    prev = Some(e);
                }
            }
        }
    }
}
