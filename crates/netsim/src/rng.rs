//! Deterministic randomness for the simulator.
//!
//! All stochastic behaviour — Bernoulli link loss, Gaussian compute-time
//! jitter, start-time jitter — draws from one seeded generator, so a
//! `(topology, workload, seed)` triple fully determines a run.
//! Experiments vary the seed explicitly to get independent trials.
//!
//! The generator is self-contained (xoshiro256++ state seeded through
//! splitmix64, Box–Muller for Gaussians) so the simulator has no external
//! randomness dependency and the byte-for-byte determinism contract
//! doesn't hinge on a third-party crate's version.

/// The simulator's random source.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Spare Box–Muller sample; `gaussian` produces two per transform.
    spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi > lo {
            lo + self.unit() * (hi - lo)
        } else {
            lo
        }
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A sample from `N(mean, stddev²)`; degenerate `stddev <= 0` returns
    /// `mean` exactly.
    pub fn gaussian(&mut self, mean: f64, stddev: f64) -> f64 {
        if stddev <= 0.0 {
            return mean;
        }
        let z = match self.spare.take() {
            Some(z) => z,
            None => {
                // Box–Muller: two uniforms -> two independent N(0, 1).
                let u1 = loop {
                    let u = self.unit();
                    if u > 0.0 {
                        break u;
                    }
                };
                let u2 = self.unit();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + stddev * z
    }

    /// Derives an independent child generator (used to give each job its
    /// own noise stream so adding a job doesn't perturb the others).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// A pure function of `(seed, stream)`: derives an independent
    /// generator for a numbered stream without consuming any state.
    ///
    /// The simulator gives each directed channel its own loss stream
    /// (`for_stream(seed, link_index)`), so which packets a lossy link
    /// drops depends only on that link's packet sequence — never on the
    /// global event interleaving or on traffic elsewhere.
    pub fn for_stream(seed: u64, stream: u64) -> SimRng {
        let mut sm = seed;
        let base = splitmix64(&mut sm);
        SimRng::new(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).all(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0));
        assert!(!same);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(7);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_roughly_matches_p() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gaussian_degenerate_and_moments() {
        let mut r = SimRng::new(5);
        assert_eq!(r.gaussian(3.0, 0.0), 3.0);
        assert_eq!(r.gaussian(3.0, -1.0), 3.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn uniform_empty_range() {
        let mut r = SimRng::new(9);
        assert_eq!(r.uniform(2.0, 2.0), 2.0);
        assert_eq!(r.index(0), 0);
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut a1 = SimRng::new(42);
        let mut a2 = SimRng::new(42);
        let mut c1 = a1.fork();
        let mut c2 = a2.fork();
        for _ in 0..32 {
            assert_eq!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn uniform_covers_range() {
        let mut r = SimRng::new(3);
        let mut lo_half = 0;
        for _ in 0..1_000 {
            let v = r.uniform(10.0, 20.0);
            assert!((10.0..20.0).contains(&v));
            if v < 15.0 {
                lo_half += 1;
            }
        }
        assert!((400..600).contains(&lo_half), "lo_half={lo_half}");
    }
}
