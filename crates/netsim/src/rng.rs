//! Deterministic randomness for the simulator.
//!
//! All stochastic behaviour — Bernoulli link loss, Gaussian compute-time
//! jitter, start-time jitter — draws from one seeded ChaCha-based
//! generator, so a `(topology, workload, seed)` triple fully determines a
//! run. Experiments vary the seed explicitly to get independent trials.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// The simulator's random source.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Uniform in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi > lo {
            self.inner.gen_range(lo..hi)
        } else {
            lo
        }
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// A sample from `N(mean, stddev²)`; degenerate `stddev <= 0` returns
    /// `mean` exactly.
    pub fn gaussian(&mut self, mean: f64, stddev: f64) -> f64 {
        if stddev <= 0.0 {
            return mean;
        }
        Normal::new(mean, stddev)
            .expect("stddev checked positive")
            .sample(&mut self.inner)
    }

    /// Derives an independent child generator (used to give each job its
    /// own noise stream so adding a job doesn't perturb the others).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).all(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0));
        assert!(!same);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(7);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_roughly_matches_p() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gaussian_degenerate_and_moments() {
        let mut r = SimRng::new(5);
        assert_eq!(r.gaussian(3.0, 0.0), 3.0);
        assert_eq!(r.gaussian(3.0, -1.0), 3.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn uniform_empty_range() {
        let mut r = SimRng::new(9);
        assert_eq!(r.uniform(2.0, 2.0), 2.0);
        assert_eq!(r.index(0), 0);
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut a1 = SimRng::new(42);
        let mut a2 = SimRng::new(42);
        let mut c1 = a1.fork();
        let mut c2 = a2.fork();
        for _ in 0..32 {
            assert_eq!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
        }
    }
}
