//! Directed channels: rate, propagation delay, loss, and byte accounting.
//!
//! A full-duplex cable between two nodes is modelled as two independent
//! directed channels, each with its own egress queue, serializer, and
//! counters — matching how real NIC/switch ports behave.

use crate::node::NodeId;
use crate::queue::QueueKind;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Index of a directed channel within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Sentinel for "no link": used to tag deliveries that never crossed
    /// a channel (host-local sends), which fault injection must not cut.
    pub const NONE: LinkId = LinkId(u32::MAX);

    /// The index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Transmission rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// From bits per second.
    pub const fn bps(b: u64) -> Self {
        Bandwidth(b)
    }
    /// From megabits per second.
    pub const fn mbps(m: u64) -> Self {
        Bandwidth(m * 1_000_000)
    }
    /// From gigabits per second.
    pub const fn gbps(g: u64) -> Self {
        Bandwidth(g * 1_000_000_000)
    }

    /// Bits per second.
    pub fn as_bps(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` at this rate (rounded up to whole ns).
    pub fn tx_time(self, bytes: u32) -> SimDuration {
        debug_assert!(self.0 > 0, "zero-rate link");
        // Realistic packet sizes keep `bytes × 8e9` inside u64, where the
        // division is a single hardware instruction; the u128 path (a
        // software routine) exists only for absurd byte counts.
        match u64::from(bytes).checked_mul(8 * 1_000_000_000) {
            Some(bits) => SimDuration(bits.div_ceil(self.0)),
            None => {
                let bits = u128::from(bytes) * 8 * 1_000_000_000;
                SimDuration(bits.div_ceil(u128::from(self.0)) as u64)
            }
        }
    }

    /// The bandwidth-delay product in bytes for a given round-trip time.
    pub fn bdp_bytes(self, rtt: SimDuration) -> u64 {
        ((u128::from(self.0) * u128::from(rtt.as_nanos())) / (8 * 1_000_000_000)) as u64
    }
}

/// Static parameters of a directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Serialization rate.
    pub rate: Bandwidth,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Egress queue discipline.
    pub queue: QueueKind,
    /// Bernoulli per-packet drop probability applied as the packet leaves
    /// the serializer (models the random-loss environment of the §5
    /// fairness analysis). `0.0` disables.
    pub loss_probability: f64,
}

impl LinkSpec {
    /// A lossless drop-tail channel.
    pub fn new(rate: Bandwidth, delay: SimDuration) -> Self {
        Self {
            rate,
            delay,
            queue: QueueKind::default_drop_tail(),
            loss_probability: 0.0,
        }
    }

    /// Overrides the queue discipline (builder style).
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Sets a Bernoulli loss probability (builder style).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p.clamp(0.0, 1.0);
        self
    }
}

/// Runtime state of a directed channel.
#[derive(Debug)]
pub struct Channel {
    /// The channel's id.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Static parameters.
    pub spec: LinkSpec,
    /// Whether the serializer is currently sending a packet.
    pub busy: bool,
    /// Whether the channel is operational. While `false` (fault
    /// injection: [`crate::fault::FaultAction::LinkDown`]) egress is
    /// blocked and arriving traffic queues behind the outage.
    pub up: bool,
    /// Incarnation counter, bumped every time the channel goes down.
    /// Deliveries are stamped with the epoch at serialization time; a
    /// mismatch at arrival means the packet was on the wire when the
    /// link was cut, so it is dropped.
    pub epoch: u32,
    /// Effective-rate multiplier (fault injection: a brownout sets
    /// `< 1.0`). Serialization time scales by `1 / rate_factor`.
    pub rate_factor: f64,
    /// Cumulative bytes that completed serialization.
    pub bytes_sent: u64,
    /// Cumulative packets that completed serialization.
    pub packets_sent: u64,
    /// Cumulative packets dropped at this channel (queue drops + random
    /// loss).
    pub packets_dropped: u64,
    /// One-entry serialization-time memo (`bytes` key, `u32::MAX` when
    /// empty). A directed channel carries mostly one packet size (MTU
    /// data one way, acks the other), so this turns the per-packet
    /// division into a compare. Only consulted at `rate_factor == 1.0`.
    tx_cache_bytes: u32,
    tx_cache_ns: u64,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, spec: LinkSpec) -> Self {
        Self {
            id,
            from,
            to,
            spec,
            busy: false,
            up: true,
            epoch: 0,
            rate_factor: 1.0,
            bytes_sent: 0,
            packets_sent: 0,
            packets_dropped: 0,
            tx_cache_bytes: u32::MAX,
            tx_cache_ns: 0,
        }
    }

    /// Serialization time for a packet of `bytes` on this channel at the
    /// current effective rate (provisioned rate × `rate_factor`).
    pub fn tx_time(&mut self, bytes: u32) -> SimDuration {
        if self.rate_factor == 1.0 {
            if self.tx_cache_bytes == bytes {
                return SimDuration(self.tx_cache_ns);
            }
            let t = self.spec.rate.tx_time(bytes);
            self.tx_cache_bytes = bytes;
            self.tx_cache_ns = t.as_nanos();
            t
        } else {
            let base = self.spec.rate.tx_time(bytes);
            SimDuration((base.as_nanos() as f64 / self.rate_factor).ceil() as u64)
        }
    }

    /// The two instants produced by starting to serialize `bytes` at
    /// `now`: when the serializer frees up (`done`, the channel-idle
    /// wakeup) and when the packet reaches the far node (`done` plus the
    /// propagation delay). Arrivals per channel are monotone in `now`
    /// because `done` is — this is the FIFO invariant the event engine's
    /// link rails rely on (see `crate::event`).
    pub fn serialize_spans(&mut self, now: SimTime, bytes: u32) -> (SimTime, SimTime) {
        let done = now + self.tx_time(bytes);
        (done, done + self.spec.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_constructors() {
        assert_eq!(Bandwidth::gbps(50).as_bps(), 50_000_000_000);
        assert_eq!(Bandwidth::mbps(100).as_bps(), 100_000_000);
        assert_eq!(Bandwidth::bps(42).as_bps(), 42);
    }

    #[test]
    fn tx_time_exact_cases() {
        // 1500 B at 1 Gbps = 12 µs.
        assert_eq!(Bandwidth::gbps(1).tx_time(1500), SimDuration::micros(12));
        // 1540 B at 50 Gbps = 246.4 ns → rounds up to 247.
        assert_eq!(Bandwidth::gbps(50).tx_time(1540), SimDuration::nanos(247));
        // Zero bytes serialize instantly.
        assert_eq!(Bandwidth::gbps(1).tx_time(0), SimDuration::ZERO);
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps = 8/3 s ≈ 2.666…s → ceil to 2_666_666_667 ns.
        assert_eq!(Bandwidth::bps(3).tx_time(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn bdp() {
        // 50 Gbps × 80 µs RTT = 500 kB.
        let bdp = Bandwidth::gbps(50).bdp_bytes(SimDuration::micros(80));
        assert_eq!(bdp, 500_000);
    }

    #[test]
    fn serialize_spans_orders_done_before_arrival() {
        use crate::node::NodeId;
        let spec = LinkSpec::new(Bandwidth::gbps(1), SimDuration::micros(5));
        let mut ch = Channel::new(LinkId(0), NodeId(0), NodeId(1), spec);
        let (done, arrival) = ch.serialize_spans(SimTime(100), 1500);
        assert_eq!(done, SimTime(100) + SimDuration::micros(12));
        assert_eq!(arrival, done + SimDuration::micros(5));
        // A brownout stretches serialization but not propagation.
        ch.rate_factor = 0.5;
        let (slow_done, slow_arrival) = ch.serialize_spans(SimTime(100), 1500);
        assert_eq!(slow_done, SimTime(100) + SimDuration::micros(24));
        assert_eq!(slow_arrival, slow_done + SimDuration::micros(5));
    }

    #[test]
    fn spec_builders() {
        let s = LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(5))
            .with_loss(0.01)
            .with_queue(QueueKind::StrictPriority { cap_bytes: 1000 });
        assert_eq!(s.loss_probability, 0.01);
        assert!(matches!(s.queue, QueueKind::StrictPriority { .. }));
        // Loss clamps to [0,1].
        assert_eq!(
            LinkSpec::new(Bandwidth::gbps(1), SimDuration::ZERO)
                .with_loss(7.0)
                .loss_probability,
            1.0
        );
    }
}
