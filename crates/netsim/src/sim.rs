//! The simulator: event loop, agents, and the network data path.
//!
//! A [`Simulator`] owns a routed [`Topology`], one egress queue per
//! directed channel, a deterministic event queue, and a table of
//! [`Agent`]s attached to hosts. Agents are the extension point: transport
//! endpoints (`mltcp-transport`) and workload drivers (`mltcp-workload`)
//! implement [`Agent`] and interact with the world exclusively through
//! [`AgentCtx`] — sending packets, arming timers, messaging other agents,
//! and drawing deterministic randomness.
//!
//! ## Data path
//!
//! * `AgentCtx::send` looks up the host's route to the packet's
//!   destination and offers the packet to that channel's egress queue.
//! * When a channel is idle and its queue non-empty, it dequeues one
//!   packet, stays busy for the serialization time, then (unless the
//!   channel's Bernoulli loss fires) schedules delivery at the far node
//!   after the propagation delay. Store-and-forward switches re-enqueue
//!   on the next hop; hosts dispatch to the agent bound to the packet's
//!   flow.
//! * All ties are broken deterministically (see [`crate::event`]).

use crate::event::{EngineKind, EventKind, EventQueue, Popped, PoppedKind};
use crate::fault::{FaultAction, FaultPlan, LossModel, LossState};
use crate::link::LinkId;
use crate::node::{NodeId, NodeKind};
use crate::packet::{FlowId, Packet};
use crate::queue::{EnqueueOutcome, LinkQueue};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::BandwidthTrace;
use mltcp_telemetry::{
    DropReason, FaultKind, ProfileSnapshot, SimProfiler, TelemetryEvent, TelemetrySink,
};
use std::any::Any;

/// Labels for the sim-time profiler, in [`SimProfiler::record`] index
/// order: one per event kind, plus agent start-up, plus the scheduler
/// itself (`sched` times each successful `pop`, so engine overhead is
/// attributed separately from dispatch work).
const PROFILE_LABELS: [&str; 7] = [
    "channel_idle",
    "deliver",
    "timer",
    "message",
    "fault",
    "agent_start",
    "sched",
];

/// Profiler label index for agent start-up handlers.
const PROFILE_AGENT_START: usize = 5;

/// Profiler label index for event-queue pops (scheduler overhead).
const PROFILE_SCHED: usize = 6;

/// Handle to an agent registered with a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// Behaviour attached to a host. See the crate docs for an example.
///
/// Handlers run to completion before the next event fires; outputs
/// (packets, timers, messages) take effect strictly afterwards, so there
/// is no reentrancy.
pub trait Agent: Any {
    /// Called once, at simulation start (before any event), in
    /// registration order.
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        let _ = ctx;
    }

    /// A packet addressed to a flow bound to this agent arrived at its
    /// host.
    fn on_packet(&mut self, ctx: &mut AgentCtx<'_>, pkt: Packet);

    /// A timer armed via [`AgentCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Another agent sent a message via [`AgentCtx::send_message`].
    fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, token: u64) {
        let _ = (ctx, from, token);
    }
}

/// Aggregate counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Packets delivered to host agents.
    pub delivered: u64,
    /// Packets dropped (queue overflow, eviction, random loss, or no
    /// route).
    pub dropped: u64,
}

/// Everything except the agents themselves — what an [`AgentCtx`] can
/// touch while an agent handler runs.
///
/// The per-delivery lookups sit on the hottest path in the simulator, so
/// they use dense per-index vectors instead of hash maps: `traces` is
/// indexed by link, `flow_tables` by node (each host carries a short
/// linear-scanned `(flow, agent)` list — hosts bind a handful of flows,
/// so a scan beats hashing a 16-byte key per packet).
struct SimCore {
    now: SimTime,
    events: EventQueue,
    topo: Topology,
    queues: Vec<LinkQueue>,
    /// Per-link bandwidth trace, indexed by `LinkId::index()`; `None`
    /// when tracing is off for that link (the common case).
    traces: Vec<Option<BandwidthTrace>>,
    rng: SimRng,
    /// Per-link loss process state, indexed by `LinkId::index()`.
    /// Initialized from each spec's Bernoulli probability; fault
    /// injection may swap in a different model mid-run.
    loss: Vec<LossState>,
    /// Per-link RNG streams for loss draws (pure functions of
    /// `(seed, link_index)`), so one link's drop pattern is independent
    /// of the global event interleaving and of traffic elsewhere.
    link_rngs: Vec<SimRng>,
    /// Installed fault actions, indexed by `EventKind::Fault::index`.
    faults: Vec<FaultAction>,
    /// Per-node flow dispatch table, indexed by `NodeId::index()`:
    /// which agent receives packets of a given flow at this host.
    flow_tables: Vec<Vec<(FlowId, AgentId)>>,
    agent_hosts: Vec<NodeId>,
    stats: SimStats,
    /// Installed telemetry sink, if any. Emission sites gate on
    /// `is_some()` and construct events only in the taken branch, so the
    /// disabled path costs one predictable branch per would-be event.
    /// Sinks observe — they can never touch the event queue or RNGs.
    sink: Option<Box<dyn TelemetrySink>>,
}

impl SimCore {
    /// The agent bound to `flow` at `node`, if any.
    fn bound_agent(&self, flow: FlowId, node: NodeId) -> Option<AgentId> {
        self.flow_tables[node.index()]
            .iter()
            .find(|&&(f, _)| f == flow)
            .map(|&(_, a)| a)
    }

    /// Offers a packet to a channel's egress queue and kicks the
    /// serializer if idle.
    fn enqueue_on(&mut self, link: LinkId, pkt: Packet) {
        let li = link.index();
        // Cut-through: when the queue is empty and the channel is idle
        // and up, enqueue-then-immediately-dequeue is the identity (no
        // drop, eviction, or ECN mark is possible against a zero
        // backlog), so the packet goes straight to the serializer. Gated
        // off whenever a telemetry sink is installed so QueueDepth
        // events keep their exact pre-existing cadence.
        if self.sink.is_none()
            && !self.topo.channels[li].busy
            && self.topo.channels[li].up
            && self.queues[li].passes_through(pkt.wire_bytes)
        {
            self.transmit(link, pkt);
            return;
        }
        let flow = pkt.flow;
        match self.queues[li].enqueue(pkt) {
            EnqueueOutcome::Accepted => {
                if let Some(sink) = self.sink.as_mut() {
                    sink.record(&TelemetryEvent::QueueDepth {
                        t_ns: self.now.as_nanos(),
                        link: li as u32,
                        bytes: self.queues[li].backlog_bytes(),
                        packets: self.queues[li].backlog_packets() as u32,
                    });
                }
            }
            EnqueueOutcome::AcceptedMarked => {
                if let Some(sink) = self.sink.as_mut() {
                    sink.record(&TelemetryEvent::EcnMark {
                        t_ns: self.now.as_nanos(),
                        link: li as u32,
                        flow: flow.0,
                    });
                    sink.record(&TelemetryEvent::QueueDepth {
                        t_ns: self.now.as_nanos(),
                        link: li as u32,
                        bytes: self.queues[li].backlog_bytes(),
                        packets: self.queues[li].backlog_packets() as u32,
                    });
                }
            }
            EnqueueOutcome::DroppedArrival(p) => {
                self.stats.dropped += 1;
                self.topo.channels[li].packets_dropped += 1;
                if let Some(sink) = self.sink.as_mut() {
                    sink.record(&TelemetryEvent::Drop {
                        t_ns: self.now.as_nanos(),
                        link: li as u32,
                        flow: p.flow.0,
                        reason: DropReason::QueueFull,
                    });
                }
            }
            EnqueueOutcome::Evicted(victim) => {
                self.stats.dropped += 1;
                self.topo.channels[li].packets_dropped += 1;
                if let Some(sink) = self.sink.as_mut() {
                    sink.record(&TelemetryEvent::Drop {
                        t_ns: self.now.as_nanos(),
                        link: li as u32,
                        flow: victim.flow.0,
                        reason: DropReason::Evicted,
                    });
                }
            }
        }
        if !self.topo.channels[li].busy {
            self.start_tx(link);
        }
    }

    /// Begins serializing the next queued packet, if any. A downed
    /// channel blocks here (egress stalls until `LinkUp` kicks it).
    fn start_tx(&mut self, link: LinkId) {
        let li = link.index();
        if !self.topo.channels[li].up {
            self.topo.channels[li].busy = false;
            return;
        }
        let Some(pkt) = self.queues[li].dequeue() else {
            self.topo.channels[li].busy = false;
            return;
        };
        self.transmit(link, pkt);
    }

    /// Serializes `pkt` on an idle, up channel: marks it busy, schedules
    /// the channel-idle departure, and (unless loss fires) the delivery.
    /// Shared tail of [`SimCore::start_tx`] and the cut-through path in
    /// [`SimCore::enqueue_on`].
    fn transmit(&mut self, link: LinkId, pkt: Packet) {
        let li = link.index();
        let ch = &mut self.topo.channels[li];
        ch.busy = true;
        let (done, arrival) = ch.serialize_spans(self.now, pkt.wire_bytes);
        ch.bytes_sent += u64::from(pkt.wire_bytes);
        ch.packets_sent += 1;
        let to = ch.to;
        let epoch = ch.epoch;
        if let Some(trace) = self.traces[li].as_mut() {
            trace.record(done, pkt.flow, pkt.wire_bytes);
        }
        self.events.schedule(done, EventKind::ChannelIdle { link });
        // Loss applies to every packet — acks included: a lossy wire does
        // not know about TCP semantics. Draws come from the link's own
        // stream so drop patterns are interleaving-independent.
        if self.loss[li].drops_packet(&mut self.link_rngs[li]) {
            self.stats.dropped += 1;
            self.topo.channels[li].packets_dropped += 1;
            if let Some(sink) = self.sink.as_mut() {
                sink.record(&TelemetryEvent::Drop {
                    t_ns: self.now.as_nanos(),
                    link: li as u32,
                    flow: pkt.flow.0,
                    reason: DropReason::RandomLoss,
                });
            }
        } else {
            self.events.schedule_delivery(arrival, to, link, epoch, pkt);
        }
    }

    /// Records a fault epoch on the sink, if one is installed.
    fn emit_fault(&mut self, link: LinkId, kind: FaultKind, factor: f64) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&TelemetryEvent::Fault {
                t_ns: self.now.as_nanos(),
                link: link.index() as u32,
                kind,
                factor,
            });
        }
    }

    /// Applies one installed fault action.
    fn apply_fault(&mut self, index: usize) {
        match self.faults[index] {
            FaultAction::LinkDown { link } => {
                let li = link.index();
                let ch = &mut self.topo.channels[li];
                if ch.up {
                    ch.up = false;
                    // Cut packets on the wire: their stamped epoch no
                    // longer matches, so arrival drops them.
                    ch.epoch = ch.epoch.wrapping_add(1);
                }
                self.emit_fault(link, FaultKind::LinkDown, 1.0);
                // Queued packets die with the link.
                let mut drained = 0u64;
                while let Some(p) = self.queues[li].dequeue() {
                    drained += 1;
                    if let Some(sink) = self.sink.as_mut() {
                        sink.record(&TelemetryEvent::Drop {
                            t_ns: self.now.as_nanos(),
                            link: li as u32,
                            flow: p.flow.0,
                            reason: DropReason::Drained,
                        });
                    }
                }
                self.stats.dropped += drained;
                self.topo.channels[li].packets_dropped += drained;
            }
            FaultAction::LinkUp { link } => {
                let li = link.index();
                self.topo.channels[li].up = true;
                self.emit_fault(link, FaultKind::LinkUp, 1.0);
                // Resume egress for traffic that queued during the
                // outage (unless a doomed serialization is still
                // pending, in which case its ChannelIdle resumes us).
                if !self.topo.channels[li].busy {
                    self.start_tx(link);
                }
            }
            FaultAction::SetRateFactor { link, factor } => {
                let factor = factor.max(1e-6);
                self.topo.channels[link.index()].rate_factor = factor;
                self.emit_fault(link, FaultKind::RateFactor, factor);
            }
            FaultAction::SetLoss { link, model } => {
                self.loss[link.index()] = LossState::new(model);
                self.emit_fault(link, FaultKind::LossModel, 1.0);
            }
            FaultAction::RestoreLoss { link } => {
                let p = self.topo.channels[link.index()].spec.loss_probability;
                self.loss[link.index()] = LossState::new(LossModel::Bernoulli(p));
                self.emit_fault(link, FaultKind::LossRestore, 1.0);
            }
        }
    }

    /// Routes a packet out of `node` toward its destination.
    fn forward(&mut self, node: NodeId, pkt: Packet) {
        match self.topo.next_hop(node, pkt.dst) {
            Some(link) => self.enqueue_on(link, pkt),
            None => {
                self.stats.dropped += 1;
                if let Some(sink) = self.sink.as_mut() {
                    sink.record(&TelemetryEvent::Drop {
                        t_ns: self.now.as_nanos(),
                        link: TelemetryEvent::NO_LINK,
                        flow: pkt.flow.0,
                        reason: DropReason::NoRoute,
                    });
                }
            }
        }
    }
}

/// The world as visible from inside an agent handler.
pub struct AgentCtx<'a> {
    core: &'a mut SimCore,
    id: AgentId,
}

impl AgentCtx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The host this agent is attached to.
    pub fn node(&self) -> NodeId {
        self.core.agent_hosts[self.id.0]
    }

    /// This agent's id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// Sends a packet into the network from this agent's host. Packets to
    /// the host itself are delivered (via the event queue) without
    /// touching any link.
    pub fn send(&mut self, pkt: Packet) {
        let host = self.node();
        if pkt.dst == host {
            let at = self.core.now;
            self.core
                .events
                .schedule_delivery(at, host, LinkId::NONE, 0, pkt);
            return;
        }
        self.core.forward(host, pkt);
    }

    /// Arms a timer to fire `after` from now with an opaque `token`.
    /// Timers cannot be cancelled; use generation counters in the token
    /// for lazy invalidation (as the TCP RTO does).
    pub fn set_timer(&mut self, after: SimDuration, token: u64) {
        let at = self.core.now.saturating_add(after);
        self.core.events.schedule(
            at,
            EventKind::Timer {
                agent: self.id.0 as u32,
                token,
            },
        );
    }

    /// Sends an asynchronous message to another agent (delivered at the
    /// current instant, after this handler returns).
    pub fn send_message(&mut self, to: AgentId, token: u64) {
        let at = self.core.now;
        self.core.events.schedule(
            at,
            EventKind::Message {
                to: to.0 as u32,
                from: self.id.0 as u32,
                token,
            },
        );
    }

    /// The deterministic random source.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// Whether a telemetry sink is installed. Emitters gate on this so
    /// event construction (and any formatting behind it) happens only
    /// when someone is listening.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        self.core.sink.is_some()
    }

    /// Records a telemetry event on the installed sink (no-op without
    /// one). Purely observational: the sink cannot reach back into the
    /// simulation.
    #[inline]
    pub fn emit(&mut self, ev: TelemetryEvent) {
        if let Some(sink) = self.core.sink.as_mut() {
            sink.record(&ev);
        }
    }

    /// Read-only view of the topology (e.g. to compute a path's BDP).
    pub fn topology(&self) -> &Topology {
        &self.core.topo
    }
}

struct AgentSlot {
    agent: Option<Box<dyn Agent>>,
    host: NodeId,
}

/// The discrete-event simulator.
pub struct Simulator {
    core: SimCore,
    agents: Vec<AgentSlot>,
    started: bool,
    /// Wall-clock attribution per event kind, when enabled.
    profiler: Option<SimProfiler>,
}

impl Simulator {
    /// Creates a simulator over a routed topology with a deterministic
    /// seed, on the environment-selected event engine
    /// ([`EngineKind::from_env`]).
    pub fn new(topo: Topology, seed: u64) -> Self {
        Self::with_engine(topo, seed, EngineKind::from_env())
    }

    /// Creates a simulator on an explicit event engine. Both engines
    /// produce bit-for-bit identical runs (see [`crate::event`]); the
    /// choice only affects wall-clock speed, which is why cross-engine
    /// replay-hash checks are meaningful.
    pub fn with_engine(topo: Topology, seed: u64, engine: EngineKind) -> Self {
        let queues: Vec<_> = topo.channels.iter().map(|c| c.spec.queue.build()).collect();
        let traces = (0..topo.channels.len()).map(|_| None).collect();
        let flow_tables = vec![Vec::new(); topo.nodes.len()];
        let loss = topo
            .channels
            .iter()
            .map(|c| LossState::new(LossModel::Bernoulli(c.spec.loss_probability)))
            .collect();
        let link_rngs = (0..topo.channels.len())
            .map(|i| SimRng::for_stream(seed, i as u64))
            .collect();
        Self {
            core: SimCore {
                now: SimTime::ZERO,
                events: EventQueue::with_engine(engine),
                topo,
                queues,
                traces,
                rng: SimRng::new(seed),
                loss,
                link_rngs,
                faults: Vec::new(),
                flow_tables,
                agent_hosts: Vec::new(),
                stats: SimStats::default(),
                sink: None,
            },
            agents: Vec::new(),
            started: false,
            profiler: None,
        }
    }

    /// The event engine this simulator runs on.
    pub fn engine(&self) -> EngineKind {
        self.core.events.engine()
    }

    /// Approximate retained capacity of the event queue, in event-sized
    /// slots — observable for memory-high-water tests.
    pub fn event_queue_capacity(&self) -> usize {
        self.core.events.capacity()
    }

    /// Registers an agent on a host and returns its id.
    ///
    /// # Panics
    /// Panics if `host` is not a host node or the simulation has started.
    pub fn add_agent<A: Agent>(&mut self, host: NodeId, agent: A) -> AgentId {
        assert!(!self.started, "agents must be added before the run starts");
        assert!(
            matches!(self.core.topo.nodes[host.index()].kind, NodeKind::Host),
            "agents attach to hosts, not switches"
        );
        let id = AgentId(self.agents.len());
        self.agents.push(AgentSlot {
            agent: Some(Box::new(agent)),
            host,
        });
        self.core.agent_hosts.push(host);
        id
    }

    /// Routes packets of `flow` arriving at the agent's host to that
    /// agent. Both endpoints of a transport connection bind the same flow
    /// id on their respective hosts.
    pub fn bind_flow(&mut self, flow: FlowId, agent: AgentId) {
        let host = self.agents[agent.0].host;
        let table = &mut self.core.flow_tables[host.index()];
        match table.iter_mut().find(|(f, _)| *f == flow) {
            Some(entry) => entry.1 = agent,
            None => table.push((flow, agent)),
        }
    }

    /// Installs a fault plan: every scheduled action becomes an event in
    /// the deterministic queue, so faults interleave with packet events
    /// reproducibly. May be called multiple times (plans accumulate) and
    /// at any point before the faults' times are reached.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for f in &plan.faults {
            let index = self.core.faults.len() as u32;
            self.core.faults.push(f.action);
            self.core.events.schedule(f.at, EventKind::Fault { index });
        }
    }

    /// Enables per-flow bandwidth tracing on a channel.
    pub fn enable_trace(&mut self, link: LinkId, bin: SimDuration) {
        self.core.traces[link.index()] = Some(BandwidthTrace::new(bin));
    }

    /// Installs a telemetry sink; subsequent simulation activity streams
    /// structured events into it. Replaces any previous sink.
    pub fn set_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.core.sink = Some(sink);
    }

    /// Detaches the telemetry sink (flushed), e.g. to downcast a
    /// recorder back to its concrete type after a run.
    pub fn take_sink(&mut self) -> Option<Box<dyn TelemetrySink>> {
        let mut sink = self.core.sink.take()?;
        sink.flush();
        Some(sink)
    }

    /// Enables the sim-time profiler: every subsequent dispatch is
    /// timed with a wall clock and attributed to its event kind. This
    /// costs two `Instant` reads per event, so it is off by default and
    /// intended for `perf_report`-style diagnosis, not routine runs. It
    /// never affects simulation results — only wall-clock accounting.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(SimProfiler::new(&PROFILE_LABELS));
    }

    /// The profiler's attribution so far, if enabled.
    pub fn profile_snapshot(&self) -> Option<ProfileSnapshot> {
        self.profiler.as_ref().map(SimProfiler::snapshot)
    }

    /// The trace collected on `link`, if tracing was enabled.
    pub fn trace(&self, link: LinkId) -> Option<&BandwidthTrace> {
        self.core.traces[link.index()].as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.core.stats
    }

    /// Read-only topology access (byte counters, drop counters).
    pub fn topology(&self) -> &Topology {
        &self.core.topo
    }

    /// Immutable access to a registered agent, downcast to its concrete
    /// type.
    ///
    /// # Panics
    /// Panics if the id is stale or the type does not match.
    pub fn agent<A: Agent>(&self, id: AgentId) -> &A {
        let a = self.agents[id.0]
            .agent
            .as_ref()
            .expect("agent is not currently executing");
        let any: &dyn Any = a.as_ref();
        any.downcast_ref::<A>().expect("agent type mismatch")
    }

    /// Mutable access to a registered agent (e.g. to reconfigure between
    /// phases of an experiment).
    pub fn agent_mut<A: Agent>(&mut self, id: AgentId) -> &mut A {
        let a = self.agents[id.0]
            .agent
            .as_mut()
            .expect("agent is not currently executing");
        let any: &mut dyn Any = a.as_mut();
        any.downcast_mut::<A>().expect("agent type mismatch")
    }

    fn start_agents(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.agents.len() {
            if self.profiler.is_some() {
                let t0 = std::time::Instant::now();
                self.with_agent(i, |agent, ctx| agent.start(ctx));
                let ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = self.profiler.as_mut() {
                    p.record(PROFILE_AGENT_START, ns);
                }
            } else {
                self.with_agent(i, |agent, ctx| agent.start(ctx));
            }
        }
    }

    /// Temporarily removes an agent from its slot so it can borrow the
    /// core mutably through an [`AgentCtx`].
    fn with_agent<R>(
        &mut self,
        idx: usize,
        f: impl FnOnce(&mut Box<dyn Agent>, &mut AgentCtx<'_>) -> R,
    ) -> R {
        let mut agent = self.agents[idx]
            .agent
            .take()
            .expect("agent handler reentrancy");
        let mut ctx = AgentCtx {
            core: &mut self.core,
            id: AgentId(idx),
        };
        let r = f(&mut agent, &mut ctx);
        self.agents[idx].agent = Some(agent);
        r
    }

    /// Dispatches one already-popped event, timing it when the profiler
    /// is enabled.
    fn dispatch(&mut self, ev: Popped) {
        debug_assert!(ev.at >= self.core.now, "time went backwards");
        self.core.now = ev.at;
        self.core.stats.events += 1;
        if self.profiler.is_some() {
            // Label indices match PROFILE_LABELS order.
            let label = match ev.kind {
                PoppedKind::ChannelIdle { .. } => 0,
                PoppedKind::Deliver(_) => 1,
                PoppedKind::Timer { .. } => 2,
                PoppedKind::Message { .. } => 3,
                PoppedKind::Fault { .. } => 4,
            };
            let t0 = std::time::Instant::now();
            self.dispatch_kind(ev.kind);
            let ns = t0.elapsed().as_nanos() as u64;
            if let Some(p) = self.profiler.as_mut() {
                p.record(label, ns);
            }
        } else {
            self.dispatch_kind(ev.kind);
        }
    }

    /// The dispatch body proper (separate so [`Simulator::dispatch`] can
    /// wrap it with wall-clock attribution).
    fn dispatch_kind(&mut self, kind: PoppedKind) {
        match kind {
            PoppedKind::ChannelIdle { link } => {
                self.core.start_tx(link);
            }
            PoppedKind::Deliver(dv) => {
                // A stale epoch means the carrying link went down after
                // serialization began: the packet was cut on the wire.
                if dv.via != LinkId::NONE
                    && self.core.topo.channels[dv.via.index()].epoch != dv.epoch
                {
                    self.core.stats.dropped += 1;
                    self.core.topo.channels[dv.via.index()].packets_dropped += 1;
                    if let Some(sink) = self.core.sink.as_mut() {
                        sink.record(&TelemetryEvent::Drop {
                            t_ns: self.core.now.as_nanos(),
                            link: dv.via.index() as u32,
                            flow: dv.pkt.flow.0,
                            reason: DropReason::LinkCut,
                        });
                    }
                    return;
                }
                let (node, p) = (dv.node, dv.pkt);
                match self.core.topo.nodes[node.index()].kind {
                    NodeKind::Switch => self.core.forward(node, p),
                    NodeKind::Host => match self.core.bound_agent(p.flow, node) {
                        Some(agent) => {
                            self.core.stats.delivered += 1;
                            self.with_agent(agent.0, |a, ctx| a.on_packet(ctx, p));
                        }
                        None => {
                            // No transport bound: the packet is dropped
                            // at the host (like a RST-less closed port).
                            self.core.stats.dropped += 1;
                            if let Some(sink) = self.core.sink.as_mut() {
                                sink.record(&TelemetryEvent::Drop {
                                    t_ns: self.core.now.as_nanos(),
                                    link: TelemetryEvent::NO_LINK,
                                    flow: p.flow.0,
                                    reason: DropReason::Unbound,
                                });
                            }
                        }
                    },
                }
            }
            PoppedKind::Timer { agent, token } => {
                self.with_agent(agent as usize, |a, ctx| a.on_timer(ctx, token));
            }
            PoppedKind::Message { to, from, token } => {
                self.with_agent(to as usize, |a, ctx| {
                    a.on_message(ctx, AgentId(from as usize), token)
                });
            }
            PoppedKind::Fault { index } => {
                self.core.apply_fault(index as usize);
            }
        }
    }

    /// Pops one event, attributing the pop's wall-clock to the `sched`
    /// profiler label when profiling (only successful pops are recorded,
    /// so `sched.events` matches the dispatched-event count).
    fn profiled_pop(&mut self, deadline: Option<SimTime>) -> Option<Popped> {
        let pop = |core: &mut SimCore| match deadline {
            Some(d) => core.events.pop_event_before(d),
            None => core.events.pop_event(),
        };
        if self.profiler.is_some() {
            let t0 = std::time::Instant::now();
            let ev = pop(&mut self.core);
            let ns = t0.elapsed().as_nanos() as u64;
            if ev.is_some() {
                if let Some(p) = self.profiler.as_mut() {
                    p.record(PROFILE_SCHED, ns);
                }
            }
            ev
        } else {
            pop(&mut self.core)
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    fn step(&mut self) -> bool {
        match self.profiled_pop(None) {
            Some(ev) => {
                self.dispatch(ev);
                true
            }
            None => false,
        }
    }

    /// Processes a single event if it fires at or before `deadline`.
    /// Returns `false` when the queue is empty or the next event is later
    /// than the deadline.
    fn step_before(&mut self, deadline: SimTime) -> bool {
        match self.profiled_pop(Some(deadline)) {
            Some(ev) => {
                self.dispatch(ev);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains. Calls every agent's
    /// [`Agent::start`] first.
    pub fn run(&mut self) {
        self.start_agents();
        while self.step() {}
    }

    /// Runs until the queue drains or simulated time would pass
    /// `deadline`; events after the deadline remain queued (the clock is
    /// left at `deadline` if the first pending event is later).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_agents();
        while self.step_before(deadline) {}
        if self.core.now < deadline {
            self.core.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Bandwidth, LinkSpec};
    use crate::packet::SegmentHeader;
    use crate::queue::QueueKind;
    use crate::topology::TopologyBuilder;

    /// Sends `pkts` MTU packets at start; counts echoes back.
    struct Pinger {
        peer: NodeId,
        flow: FlowId,
        pkts: u32,
        echoes: u32,
        last_echo_at: SimTime,
    }

    impl Agent for Pinger {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            let me = ctx.node();
            for i in 0..self.pkts {
                ctx.send(Packet::data(
                    self.flow,
                    me,
                    self.peer,
                    u64::from(i) * 1500,
                    1500,
                ));
            }
        }
        fn on_packet(&mut self, ctx: &mut AgentCtx<'_>, pkt: Packet) {
            assert!(pkt.is_ack());
            self.echoes += 1;
            self.last_echo_at = ctx.now();
        }
    }

    /// Acks every data packet back to its source.
    struct Echoer {
        received: u64,
    }

    impl Agent for Echoer {
        fn on_packet(&mut self, ctx: &mut AgentCtx<'_>, pkt: Packet) {
            if let SegmentHeader::Data { seq, len } = pkt.header {
                self.received += u64::from(len);
                let me = ctx.node();
                ctx.send(Packet::ack(
                    pkt.flow,
                    me,
                    pkt.src,
                    seq + u64::from(len),
                    false,
                ));
            }
        }
    }

    fn two_host_sim(rate: Bandwidth, delay: SimDuration, loss: f64) -> (Simulator, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let spec = LinkSpec::new(rate, delay).with_loss(loss);
        b.link(h0, h1, spec);
        (Simulator::new(b.build().unwrap(), 1), h0, h1)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(10), 0.0);
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts: 10,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let echoer = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, pinger); // acks arrive at h0
        sim.bind_flow(flow, echoer); // data arrives at h1
        sim.run();
        assert_eq!(sim.agent::<Pinger>(pinger).echoes, 10);
        assert_eq!(sim.agent::<Echoer>(echoer).received, 15_000);
        // Sanity: RTT floor = 2 × 10 µs propagation + serialization.
        assert!(sim.agent::<Pinger>(pinger).last_echo_at > SimTime(20_000));
    }

    #[test]
    fn serialization_spaces_packets_at_line_rate() {
        // 1540 B at 1 Gbps = 12.32 µs per packet. Ten packets back-to-back
        // finish serializing at ≈ 123.2 µs; last arrival = + 5 µs prop.
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(1), SimDuration::micros(5), 0.0);
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts: 10,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let echoer = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, pinger);
        sim.bind_flow(flow, echoer);
        sim.run();
        // Last data arrival at h1: 10 × 12.32 µs + 5 µs = 128.2 µs.
        // Ack (40 B = 0.32 µs) + 5 µs back: last echo ≈ 133.52 µs.
        let t = sim.agent::<Pinger>(pinger).last_echo_at;
        assert!(
            (133_000..135_000).contains(&t.as_nanos()),
            "last echo at {t}"
        );
    }

    #[test]
    fn random_loss_applies_to_data_and_acks() {
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(5), 0.5);
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts: 200,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let echoer = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, pinger);
        sim.bind_flow(flow, echoer);
        sim.run();
        let got = u64::from(sim.agent::<Pinger>(pinger).echoes);
        let delivered_data = sim.agent::<Echoer>(echoer).received / 1500;
        // Each round trip crosses the lossy wire twice (p = .5 per
        // crossing, acks included): ~100 data arrivals, ~50 echoes.
        assert!((60..140).contains(&delivered_data), "data={delivered_data}");
        assert!((25..80).contains(&got), "echoes={got}");
        // Some acks must have been lost on the way back.
        assert!(got < delivered_data, "echoes={got} data={delivered_data}");
    }

    /// Drop patterns on a link depend only on that link's own packet
    /// sequence: adding traffic on a *different* link (which perturbs the
    /// global event interleaving) must not change which packets drop.
    #[test]
    fn loss_draws_are_per_link() {
        let run = |with_cross_traffic: bool| -> u32 {
            // A star: h0→sw is the measured lossy link; h2→sw is a
            // *different* lossy link whose draws must not perturb it.
            let mut b = TopologyBuilder::new();
            let h0 = b.host("h0");
            let h1 = b.host("h1");
            let h2 = b.host("h2");
            let h3 = b.host("h3");
            let sw = b.switch("sw");
            let spec = LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(5));
            b.directed(h0, sw, spec.with_loss(0.3));
            b.directed(sw, h0, spec);
            b.link(h1, sw, spec);
            b.directed(h2, sw, spec.with_loss(0.5));
            b.directed(sw, h2, spec);
            b.link(h3, sw, spec);
            let mut sim = Simulator::new(b.build().unwrap(), 123);
            let flow = FlowId(1);
            let pinger = sim.add_agent(
                h0,
                Pinger {
                    peer: h1,
                    flow,
                    pkts: 300,
                    echoes: 0,
                    last_echo_at: SimTime::ZERO,
                },
            );
            let echoer = sim.add_agent(h1, Echoer { received: 0 });
            sim.bind_flow(flow, pinger);
            sim.bind_flow(flow, echoer);
            if with_cross_traffic {
                let flow2 = FlowId(2);
                let p2 = sim.add_agent(
                    h2,
                    Pinger {
                        peer: h3,
                        flow: flow2,
                        pkts: 250,
                        echoes: 0,
                        last_echo_at: SimTime::ZERO,
                    },
                );
                let e2 = sim.add_agent(h3, Echoer { received: 0 });
                sim.bind_flow(flow2, p2);
                sim.bind_flow(flow2, e2);
            }
            sim.run();
            sim.agent::<Pinger>(pinger).echoes
        };
        assert_eq!(run(false), run(true));
    }

    use crate::fault::{FaultPlan, GilbertElliott, LossModel};

    fn pingpong_with_plan(plan: &FaultPlan, pkts: u32) -> (Simulator, AgentId, AgentId) {
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(1), SimDuration::micros(5), 0.0);
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let echoer = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, pinger);
        sim.bind_flow(flow, echoer);
        sim.install_faults(plan);
        sim.run();
        (sim, pinger, echoer)
    }

    #[test]
    fn link_down_cuts_wire_and_queue_up_resumes() {
        // 1540 B at 1 Gbps = 12.32 µs per packet; 20 packets are sent at
        // t = 0. Down at 30 µs: packets 0–1 delivered, the serializing
        // third is cut mid-flight, the rest are drained from the queue.
        let l = LinkId(0);
        let plan =
            FaultPlan::new().link_flap(l, SimTime::from_secs_f64(30e-6), SimDuration::millis(1));
        let (sim, pinger, echoer) = pingpong_with_plan(&plan, 20);
        assert_eq!(sim.agent::<Pinger>(pinger).echoes, 2);
        assert_eq!(sim.agent::<Echoer>(echoer).received, 2 * 1500);
        // 18 lost: 17 drained + 1 cut on the wire.
        assert_eq!(sim.topology().channels[0].packets_dropped, 18);
        assert!(sim.topology().channels[0].up);
    }

    #[test]
    fn traffic_queued_during_outage_flows_after_repair() {
        struct LateSender {
            peer: NodeId,
            flow: FlowId,
        }
        impl Agent for LateSender {
            fn start(&mut self, ctx: &mut AgentCtx<'_>) {
                // Send while the link is down (armed below at 50 µs).
                ctx.set_timer(SimDuration::micros(50), 1);
            }
            fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _token: u64) {
                let me = ctx.node();
                for i in 0..3u64 {
                    ctx.send(Packet::data(self.flow, me, self.peer, i * 1500, 1500));
                }
            }
        }
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(1), SimDuration::micros(5), 0.0);
        let flow = FlowId(1);
        sim.add_agent(h0, LateSender { peer: h1, flow });
        let echoer = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, echoer);
        let plan = FaultPlan::new().link_flap(
            LinkId(0),
            SimTime::from_secs_f64(10e-6),
            SimDuration::micros(200),
        );
        sim.install_faults(&plan);
        sim.run();
        // All three packets queued during the outage and crossed after
        // the 210 µs repair.
        assert_eq!(sim.agent::<Echoer>(echoer).received, 3 * 1500);
        assert!(sim.now() > SimTime::from_secs_f64(210e-6));
    }

    #[test]
    fn brownout_slows_serialization_then_recovers() {
        let run = |plan: &FaultPlan| {
            let (sim, pinger, _) = pingpong_with_plan(plan, 50);
            assert_eq!(sim.agent::<Pinger>(pinger).echoes, 50);
            sim.agent::<Pinger>(pinger).last_echo_at
        };
        let clean = run(&FaultPlan::new());
        // Quarter rate for 300 µs starting at 10 µs.
        let slow = run(&FaultPlan::new().brownout(
            LinkId(0),
            SimTime::from_secs_f64(10e-6),
            SimDuration::micros(300),
            0.25,
        ));
        // The brownout stretches the transfer but loses nothing: during
        // the 300 µs window only 75 µs of work completes, a 225 µs delay.
        assert!(
            slow > clean + SimDuration::micros(180),
            "clean={clean} slow={slow}"
        );
    }

    #[test]
    fn loss_window_swaps_model_and_restores() {
        // A total-loss window over the whole burst, then repeat clean.
        let burst = GilbertElliott {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            loss_good: 1.0,
            loss_bad: 1.0,
        };
        let plan = FaultPlan::new().loss_window(
            LinkId(0),
            SimTime::ZERO,
            SimDuration::micros(100),
            LossModel::GilbertElliott(burst),
        );
        let (sim, pinger, _) = pingpong_with_plan(&plan, 20);
        // 100 µs at 12.32 µs/packet: the first 9 serializations start (and
        // drop) inside the window; the rest cross after RestoreLoss.
        let got = sim.agent::<Pinger>(pinger).echoes;
        assert!((10..20).contains(&got), "echoes={got}");
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let observables = || {
            let plan = FaultPlan::new()
                .link_flap(
                    LinkId(0),
                    SimTime::from_secs_f64(40e-6),
                    SimDuration::micros(80),
                )
                .loss_window(
                    LinkId(0),
                    SimTime::from_secs_f64(200e-6),
                    SimDuration::micros(200),
                    LossModel::GilbertElliott(GilbertElliott::bursty(0.2, 0.3, 0.9)),
                );
            let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(1), SimDuration::micros(5), 0.1);
            let flow = FlowId(1);
            let pinger = sim.add_agent(
                h0,
                Pinger {
                    peer: h1,
                    flow,
                    pkts: 100,
                    echoes: 0,
                    last_echo_at: SimTime::ZERO,
                },
            );
            let echoer = sim.add_agent(h1, Echoer { received: 0 });
            sim.bind_flow(flow, pinger);
            sim.bind_flow(flow, echoer);
            sim.install_faults(&plan);
            sim.run();
            (
                sim.agent::<Pinger>(pinger).echoes,
                sim.stats().dropped,
                sim.stats().events,
                sim.now(),
            )
        };
        assert_eq!(observables(), observables());
    }

    /// Installing a telemetry sink must not change a single observable:
    /// same echoes, drops, event count, and final clock as a bare run —
    /// while the recorder sees every drop the stats counted.
    #[test]
    fn telemetry_sink_observes_without_perturbing() {
        use mltcp_telemetry::RingRecorder;
        let run = |with_sink: bool| {
            let plan = FaultPlan::new()
                .link_flap(
                    LinkId(0),
                    SimTime::from_secs_f64(40e-6),
                    SimDuration::micros(80),
                )
                .loss_window(
                    LinkId(0),
                    SimTime::from_secs_f64(200e-6),
                    SimDuration::micros(200),
                    LossModel::GilbertElliott(GilbertElliott::bursty(0.2, 0.3, 0.9)),
                );
            let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(1), SimDuration::micros(5), 0.1);
            let flow = FlowId(1);
            let pinger = sim.add_agent(
                h0,
                Pinger {
                    peer: h1,
                    flow,
                    pkts: 100,
                    echoes: 0,
                    last_echo_at: SimTime::ZERO,
                },
            );
            let echoer = sim.add_agent(h1, Echoer { received: 0 });
            sim.bind_flow(flow, pinger);
            sim.bind_flow(flow, echoer);
            sim.install_faults(&plan);
            if with_sink {
                sim.set_sink(Box::new(RingRecorder::new(1 << 16)));
            }
            sim.run();
            let recorder = sim.take_sink().map(|s| {
                *s.into_any()
                    .downcast::<RingRecorder>()
                    .expect("ring recorder")
            });
            (
                sim.agent::<Pinger>(pinger).echoes,
                sim.stats().dropped,
                sim.stats().events,
                sim.now(),
                recorder,
            )
        };
        let (e0, d0, n0, t0, none) = run(false);
        let (e1, d1, n1, t1, some) = run(true);
        assert!(none.is_none());
        assert_eq!((e0, d0, n0, t0), (e1, d1, n1, t1), "sink perturbed the run");
        let rec = some.expect("recorder returned");
        assert_eq!(rec.overwritten(), 0, "ring too small for this test");
        let drop_events = rec
            .events()
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Drop { .. }))
            .count() as u64;
        assert_eq!(drop_events, d1, "every counted drop must be recorded");
        let faults = rec
            .events()
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Fault { .. }))
            .count();
        // link_flap = down + up; loss_window = set + restore.
        assert_eq!(faults, 4);
    }

    /// The profiler attributes every dispatched event (plus agent
    /// start-up) and leaves results untouched.
    #[test]
    fn profiler_attributes_all_events() {
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(10), 0.0);
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts: 10,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let echoer = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, pinger);
        sim.bind_flow(flow, echoer);
        sim.enable_profiler();
        sim.run();
        assert_eq!(sim.agent::<Pinger>(pinger).echoes, 10);
        let snap = sim.profile_snapshot().expect("profiler enabled");
        let agent_starts = snap.find("agent_start").expect("agent_start label");
        assert_eq!(agent_starts.events, 2);
        // Every dispatched event is attributed twice — once to its kind,
        // once to the scheduler pop that produced it — plus agent starts.
        let sched = snap.find("sched").expect("sched label");
        assert_eq!(sched.events, sim.stats().events);
        assert_eq!(
            snap.total_events(),
            2 * sim.stats().events + agent_starts.events
        );
        let delivers = snap.find("deliver").unwrap();
        assert_eq!(delivers.events, 20); // 10 data + 10 acks
    }

    #[test]
    fn unbound_flow_counts_as_drop() {
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(5), 0.0);
        let flow = FlowId(9);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts: 3,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        sim.bind_flow(flow, pinger);
        // No agent at h1.
        sim.run();
        assert_eq!(sim.stats().dropped, 3);
        assert_eq!(sim.agent::<Pinger>(pinger).echoes, 0);
    }

    struct TimerAgent {
        fired: Vec<(u64, SimTime)>,
    }
    impl Agent for TimerAgent {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(SimDuration::millis(5), 1);
            ctx.set_timer(SimDuration::millis(1), 2);
        }
        fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
            self.fired.push((token, ctx.now()));
            if token == 2 {
                ctx.set_timer(SimDuration::millis(10), 3);
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_can_rearm() {
        let (mut sim, h0, _h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(5), 0.0);
        let a = sim.add_agent(h0, TimerAgent { fired: vec![] });
        sim.run();
        let fired = &sim.agent::<TimerAgent>(a).fired;
        assert_eq!(
            fired,
            &vec![
                (2, SimTime(1_000_000)),
                (1, SimTime(5_000_000)),
                (3, SimTime(11_000_000)),
            ]
        );
    }

    struct Caller {
        callee: Option<AgentId>,
        replies: u32,
    }
    impl Agent for Caller {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            if let Some(c) = self.callee {
                ctx.send_message(c, 42);
            }
        }
        fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
        fn on_message(&mut self, ctx: &mut AgentCtx<'_>, from: AgentId, token: u64) {
            if self.callee.is_some() {
                assert_eq!(token, 43);
                self.replies += 1;
            } else {
                assert_eq!(token, 42);
                ctx.send_message(from, 43);
            }
        }
    }

    #[test]
    fn agent_messaging_round_trip() {
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(5), 0.0);
        let callee = sim.add_agent(
            h1,
            Caller {
                callee: None,
                replies: 0,
            },
        );
        let caller = sim.add_agent(
            h0,
            Caller {
                callee: Some(callee),
                replies: 0,
            },
        );
        sim.run();
        assert_eq!(sim.agent::<Caller>(caller).replies, 1);
    }

    #[test]
    fn run_until_stops_the_clock() {
        let (mut sim, h0, _h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(5), 0.0);
        sim.add_agent(h0, TimerAgent { fired: vec![] });
        sim.run_until(SimTime(2_000_000));
        assert_eq!(sim.now(), SimTime(2_000_000));
        // Timer 1 (5 ms) still pending; continue.
        sim.run();
        assert_eq!(sim.now(), SimTime(11_000_000));
    }

    /// Record of everything observable about a ping-pong run, for
    /// equivalence checks between run schedules.
    fn lossy_pingpong_observables(
        seed: u64,
        split: Option<&[SimTime]>,
    ) -> (u32, SimTime, u64, u64, u64, SimTime) {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.link(
            h0,
            h1,
            LinkSpec::new(Bandwidth::gbps(1), SimDuration::micros(5)).with_loss(0.2),
        );
        let mut sim = Simulator::new(b.build().unwrap(), seed);
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts: 300,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let echoer = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, pinger);
        sim.bind_flow(flow, echoer);
        if let Some(deadlines) = split {
            for &d in deadlines {
                sim.run_until(d);
            }
        }
        sim.run();
        let p = sim.agent::<Pinger>(pinger);
        (
            p.echoes,
            p.last_echo_at,
            sim.stats().events,
            sim.stats().delivered,
            sim.stats().dropped,
            sim.now(),
        )
    }

    /// `run_until` must be a pure pause point: slicing a run into
    /// arbitrary `run_until` segments plus a final `run` yields the same
    /// events, deliveries, drops, RNG draws, and agent state as one
    /// uninterrupted `run`.
    #[test]
    fn run_until_then_run_equals_single_run() {
        let whole = lossy_pingpong_observables(99, None);
        let deadlines = [
            SimTime::from_secs_f64(100e-6),
            SimTime::from_secs_f64(1e-3),
            SimTime::from_secs_f64(2e-3),
        ];
        let sliced = lossy_pingpong_observables(99, Some(&deadlines));
        // A deadline past the last event advances the final clock; every
        // other observable must be identical.
        assert_eq!(whole.0, sliced.0, "echo count diverged");
        assert_eq!(whole.1, sliced.1, "last echo time diverged");
        assert_eq!(whole.2, sliced.2, "event count diverged");
        assert_eq!(whole.3, sliced.3, "delivered count diverged");
        assert_eq!(whole.4, sliced.4, "dropped count diverged");
        assert_eq!(whole.5, sliced.5, "final clock diverged");
    }

    #[test]
    fn rebinding_a_flow_replaces_the_agent() {
        let (mut sim, h0, h1) = two_host_sim(Bandwidth::gbps(10), SimDuration::micros(5), 0.0);
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            h0,
            Pinger {
                peer: h1,
                flow,
                pkts: 5,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let dead = sim.add_agent(h1, Echoer { received: 0 });
        let live = sim.add_agent(h1, Echoer { received: 0 });
        sim.bind_flow(flow, pinger);
        sim.bind_flow(flow, dead);
        sim.bind_flow(flow, live); // rebinding replaces, not duplicates
        sim.run();
        assert_eq!(sim.agent::<Echoer>(dead).received, 0);
        assert_eq!(sim.agent::<Echoer>(live).received, 7_500);
        assert_eq!(sim.agent::<Pinger>(pinger).echoes, 5);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| -> (u64, u64, u64) {
            let mut b = TopologyBuilder::new();
            let h0 = b.host("h0");
            let h1 = b.host("h1");
            b.link(
                h0,
                h1,
                LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(5)).with_loss(0.3),
            );
            let mut sim = Simulator::new(b.build().unwrap(), seed);
            let flow = FlowId(1);
            let pinger = sim.add_agent(
                h0,
                Pinger {
                    peer: h1,
                    flow,
                    pkts: 500,
                    echoes: 0,
                    last_echo_at: SimTime::ZERO,
                },
            );
            let echoer = sim.add_agent(h1, Echoer { received: 0 });
            sim.bind_flow(flow, pinger);
            sim.bind_flow(flow, echoer);
            sim.run();
            (
                u64::from(sim.agent::<Pinger>(pinger).echoes),
                sim.stats().dropped,
                sim.now().as_nanos(),
            )
        };
        assert_eq!(run(77), run(77));
        // Different seeds should differ in at least one observable.
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn bandwidth_trace_on_bottleneck() {
        use crate::topology::{build_dumbbell, DumbbellSpec};
        let (topo, d) = build_dumbbell(DumbbellSpec {
            pairs: 1,
            ..DumbbellSpec::default()
        });
        let mut sim = Simulator::new(topo, 3);
        sim.enable_trace(d.bottleneck, SimDuration::millis(1));
        let flow = FlowId(1);
        let pinger = sim.add_agent(
            d.senders[0],
            Pinger {
                peer: d.receivers[0],
                flow,
                pkts: 100,
                echoes: 0,
                last_echo_at: SimTime::ZERO,
            },
        );
        let echoer = sim.add_agent(d.receivers[0], Echoer { received: 0 });
        sim.bind_flow(flow, pinger);
        sim.bind_flow(flow, echoer);
        sim.run();
        let trace = sim.trace(d.bottleneck).unwrap();
        assert_eq!(trace.flow_bytes(flow), 100 * 1540);
    }

    #[test]
    #[should_panic(expected = "hosts, not switches")]
    fn agents_cannot_attach_to_switches() {
        use crate::topology::{build_dumbbell, DumbbellSpec};
        let (topo, d) = build_dumbbell(DumbbellSpec::default());
        let mut sim = Simulator::new(topo, 0);
        sim.add_agent(d.left_switch, Echoer { received: 0 });
    }

    #[test]
    fn queue_kind_is_respected_per_channel() {
        // A tiny strict-priority bottleneck: the urgent packet wins.
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let spec = LinkSpec::new(Bandwidth::mbps(1), SimDuration::micros(1))
            .with_queue(QueueKind::StrictPriority { cap_bytes: 100_000 });
        b.link(h0, h1, spec);
        let mut sim = Simulator::new(b.build().unwrap(), 0);

        struct PrioBlaster {
            peer: NodeId,
        }
        impl Agent for PrioBlaster {
            fn start(&mut self, ctx: &mut AgentCtx<'_>) {
                let me = ctx.node();
                // Low-urgency flow 1 first (high tag), then urgent flow 2.
                ctx.send(Packet::data(FlowId(1), me, self.peer, 0, 1000).with_priority(1000));
                ctx.send(Packet::data(FlowId(1), me, self.peer, 1000, 1000).with_priority(1000));
                ctx.send(Packet::data(FlowId(2), me, self.peer, 2000, 1000).with_priority(1));
            }
            fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
        }
        struct Recorder {
            seqs: Vec<u64>,
        }
        impl Agent for Recorder {
            fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, pkt: Packet) {
                if let SegmentHeader::Data { seq, .. } = pkt.header {
                    self.seqs.push(seq);
                }
            }
        }
        sim.add_agent(h0, PrioBlaster { peer: h1 });
        let rec = sim.add_agent(h1, Recorder { seqs: vec![] });
        sim.bind_flow(FlowId(1), rec);
        sim.bind_flow(FlowId(2), rec);
        sim.run();
        // First packet serializes immediately (already in flight), but
        // the urgent flow-2 packet overtakes flow 1's queued seq-1000.
        assert_eq!(sim.agent::<Recorder>(rec).seqs, vec![0, 2000, 1000]);
    }
}
