//! Packets and the minimal transport header used across the stack.
//!
//! The simulator is purpose-built for transport research, so the packet
//! carries a small structured header instead of raw bytes: a data segment
//! (byte-offset sequence number + payload length) or a cumulative ack
//! (with ECN echo, as DCTCP needs). A `priority` tag rides along for the
//! pFabric (remaining bytes) and PIAS (MLFQ level) baselines; FIFO
//! disciplines ignore it.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Identifies one unidirectional transport flow (a sender/receiver pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// Wire overhead we charge per packet (IPv4 + TCP headers, no options).
pub const HEADER_BYTES: u32 = 40;

/// Default maximum payload per data packet, matching Algorithm 1's
/// `MTU = 1500`.
pub const DEFAULT_MSS: u32 = 1500;

/// ECN codepoint subset the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EcnCodepoint {
    /// Transport is not ECN-capable: congested queues drop instead of mark.
    #[default]
    NotCapable,
    /// ECN-capable transport, unmarked.
    Capable,
    /// Congestion experienced (marked by a queue).
    CongestionExperienced,
}

impl EcnCodepoint {
    /// Whether a congested queue may mark (rather than drop) this packet.
    pub fn is_capable(self) -> bool {
        !matches!(self, EcnCodepoint::NotCapable)
    }

    /// Whether the mark has been applied.
    pub fn is_marked(self) -> bool {
        matches!(self, EcnCodepoint::CongestionExperienced)
    }
}

/// The transport header: either a data segment or a cumulative ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentHeader {
    /// A data segment carrying `len` payload bytes starting at byte
    /// offset `seq` of the flow.
    Data {
        /// First payload byte's offset within the flow.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// A cumulative acknowledgment: all bytes below `cum_ack` received.
    Ack {
        /// Next expected byte offset.
        cum_ack: u64,
        /// ECN-echo: the receiver saw a CE mark on the acked segment
        /// (DCTCP-style per-packet echo).
        ecn_echo: bool,
    },
}

/// A simulated packet.
///
/// All fields are plain values, so the packet is `Copy`: the hot path
/// moves packets out of their pooled boxes (see [`crate::event`]) with a
/// memcpy instead of a clone call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The flow this packet belongs to. Acks use the *data* flow's id so
    /// both directions share accounting.
    pub flow: FlowId,
    /// Origin host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Total wire size in bytes (payload + [`HEADER_BYTES`]); this is what
    /// serializes on links.
    pub wire_bytes: u32,
    /// Transport header.
    pub header: SegmentHeader,
    /// ECN state.
    pub ecn: EcnCodepoint,
    /// Scheduling priority tag; *lower is more urgent*. pFabric sets this
    /// to the flow's remaining bytes, PIAS to the MLFQ level. FIFO queues
    /// ignore it.
    pub priority: u64,
}

impl Packet {
    /// Builds a data packet of `len` payload bytes at offset `seq`.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, len: u32) -> Self {
        Packet {
            flow,
            src,
            dst,
            wire_bytes: len + HEADER_BYTES,
            header: SegmentHeader::Data { seq, len },
            ecn: EcnCodepoint::NotCapable,
            priority: 0,
        }
    }

    /// Builds a (header-only) cumulative ack.
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, cum_ack: u64, ecn_echo: bool) -> Self {
        Packet {
            flow,
            src,
            dst,
            wire_bytes: HEADER_BYTES,
            header: SegmentHeader::Ack { cum_ack, ecn_echo },
            ecn: EcnCodepoint::NotCapable,
            priority: 0,
        }
    }

    /// Payload byte count (zero for acks).
    pub fn payload_bytes(&self) -> u32 {
        match self.header {
            SegmentHeader::Data { len, .. } => len,
            SegmentHeader::Ack { .. } => 0,
        }
    }

    /// Whether this is a data segment.
    pub fn is_data(&self) -> bool {
        matches!(self.header, SegmentHeader::Data { .. })
    }

    /// Whether this is an ack.
    pub fn is_ack(&self) -> bool {
        matches!(self.header, SegmentHeader::Ack { .. })
    }

    /// Sets the ECN capability (builder style).
    pub fn with_ecn(mut self, ecn: EcnCodepoint) -> Self {
        self.ecn = ecn;
        self
    }

    /// Sets the scheduling priority tag (builder style).
    pub fn with_priority(mut self, priority: u64) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn data_packet_accounting() {
        let p = Packet::data(FlowId(1), n(0), n(1), 3000, 1500);
        assert_eq!(p.wire_bytes, 1540);
        assert_eq!(p.payload_bytes(), 1500);
        assert!(p.is_data());
        assert!(!p.is_ack());
    }

    #[test]
    fn ack_packet_accounting() {
        let p = Packet::ack(FlowId(1), n(1), n(0), 4500, true);
        assert_eq!(p.wire_bytes, HEADER_BYTES);
        assert_eq!(p.payload_bytes(), 0);
        assert!(p.is_ack());
        match p.header {
            SegmentHeader::Ack { cum_ack, ecn_echo } => {
                assert_eq!(cum_ack, 4500);
                assert!(ecn_echo);
            }
            _ => panic!("expected ack header"),
        }
    }

    #[test]
    fn ecn_codepoints() {
        assert!(!EcnCodepoint::NotCapable.is_capable());
        assert!(EcnCodepoint::Capable.is_capable());
        assert!(EcnCodepoint::CongestionExperienced.is_capable());
        assert!(EcnCodepoint::CongestionExperienced.is_marked());
        assert!(!EcnCodepoint::Capable.is_marked());
    }

    #[test]
    fn builder_style() {
        let p = Packet::data(FlowId(2), n(0), n(1), 0, 100)
            .with_ecn(EcnCodepoint::Capable)
            .with_priority(77);
        assert_eq!(p.ecn, EcnCodepoint::Capable);
        assert_eq!(p.priority, 77);
    }
}
