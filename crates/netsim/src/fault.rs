//! Deterministic fault injection: link failures, brownouts, bursty loss.
//!
//! A [`FaultPlan`] is a time-ordered list of [`FaultAction`]s the
//! simulator replays through its own event queue
//! ([`crate::sim::Simulator::install_faults`]), so faults interleave with
//! packet events deterministically: the same `(topology, workload, seed,
//! plan)` tuple always produces the same trace, byte for byte. Loss draws
//! come from per-link RNG streams (see [`crate::rng::SimRng::for_stream`])
//! rather than the global generator, so a plan on one link never shifts
//! which packets drop on another.
//!
//! Three fault classes:
//!
//! * **Link down/up** ([`FaultAction::LinkDown`]/[`FaultAction::LinkUp`]):
//!   while down, the egress queue is drained (those packets are lost),
//!   packets already on the wire are cut (they never arrive), and newly
//!   enqueued packets wait for repair.
//! * **Brownout** ([`FaultAction::SetRateFactor`]): the serializer runs at
//!   a fraction of the provisioned rate for a window.
//! * **Bursty loss** ([`FaultAction::SetLoss`] with
//!   [`LossModel::GilbertElliott`]): the classic two-state Markov loss
//!   process, which produces correlated loss bursts a Bernoulli model
//!   cannot.

use crate::link::LinkId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the Gilbert–Elliott two-state Markov loss process.
///
/// The channel alternates between a *good* and a *bad* state; each packet
/// first advances the state machine (one transition draw), then is
/// dropped with the state's loss probability. `p_good_to_bad` small and
/// `p_bad_to_good` moderate yields rare but clustered loss bursts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-packet probability of transitioning good → bad.
    pub p_good_to_bad: f64,
    /// Per-packet probability of transitioning bad → good.
    pub p_bad_to_good: f64,
    /// Drop probability while in the good state (often 0).
    pub loss_good: f64,
    /// Drop probability while in the bad state (often near 1).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A standard bursty profile: lossless good state, `loss_bad` drops
    /// in bad bursts of mean length `1 / p_bad_to_good` packets.
    pub fn bursty(p_good_to_bad: f64, p_bad_to_good: f64, loss_bad: f64) -> Self {
        Self {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// The stationary mean loss rate of the process.
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// Per-packet loss process on a directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent per-packet drops with a fixed probability.
    Bernoulli(f64),
    /// Correlated (bursty) drops from a two-state Markov chain.
    GilbertElliott(GilbertElliott),
}

/// A [`LossModel`] plus its mutable channel state (the Markov phase).
#[derive(Debug, Clone)]
pub struct LossState {
    /// The configured process.
    pub model: LossModel,
    /// Gilbert–Elliott phase: currently in the bad state.
    bad: bool,
}

impl LossState {
    /// Fresh state (Gilbert–Elliott starts in the good state).
    pub fn new(model: LossModel) -> Self {
        Self { model, bad: false }
    }

    /// Whether the Gilbert–Elliott chain is currently in the bad state.
    pub fn in_bad_state(&self) -> bool {
        self.bad
    }

    /// Advances the process by one packet and decides whether it drops.
    pub fn drops_packet(&mut self, rng: &mut SimRng) -> bool {
        match self.model {
            LossModel::Bernoulli(p) => rng.chance(p),
            LossModel::GilbertElliott(ge) => {
                let flip = if self.bad {
                    ge.p_bad_to_good
                } else {
                    ge.p_good_to_bad
                };
                if rng.chance(flip) {
                    self.bad = !self.bad;
                }
                let p = if self.bad { ge.loss_bad } else { ge.loss_good };
                rng.chance(p)
            }
        }
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Cut a directed channel: drain its egress queue, kill packets on
    /// the wire, block egress until [`FaultAction::LinkUp`].
    LinkDown {
        /// The affected channel.
        link: LinkId,
    },
    /// Repair a downed channel; queued-while-down packets start flowing.
    LinkUp {
        /// The affected channel.
        link: LinkId,
    },
    /// Scale the channel's serialization rate by `factor` (a brownout for
    /// `factor < 1`; `1.0` restores the provisioned rate).
    SetRateFactor {
        /// The affected channel.
        link: LinkId,
        /// Effective-rate multiplier, clamped to be positive.
        factor: f64,
    },
    /// Replace the channel's loss process.
    SetLoss {
        /// The affected channel.
        link: LinkId,
        /// The new process (fresh state).
        model: LossModel,
    },
    /// Restore the channel's loss process to its [`crate::link::LinkSpec`]
    /// Bernoulli probability.
    RestoreLoss {
        /// The affected channel.
        link: LinkId,
    },
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic schedule of faults, built fluently and installed via
/// [`crate::sim::Simulator::install_faults`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled actions (installation order; the event queue orders
    /// equal-time actions by insertion, so plan order is tie-break order).
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Schedules a raw action (builder style).
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.faults.push(ScheduledFault { at, action });
        self
    }

    /// A link flap: down at `at`, repaired `outage` later.
    pub fn link_flap(self, link: LinkId, at: SimTime, outage: SimDuration) -> Self {
        self.at(at, FaultAction::LinkDown { link })
            .at(at + outage, FaultAction::LinkUp { link })
    }

    /// A brownout window: the channel runs at `factor` of its rate from
    /// `at` for `window`, then recovers.
    pub fn brownout(self, link: LinkId, at: SimTime, window: SimDuration, factor: f64) -> Self {
        self.at(at, FaultAction::SetRateFactor { link, factor }).at(
            at + window,
            FaultAction::SetRateFactor { link, factor: 1.0 },
        )
    }

    /// A loss window: the channel runs `model` from `at` for `window`,
    /// then reverts to its spec's Bernoulli loss.
    pub fn loss_window(
        self,
        link: LinkId,
        at: SimTime,
        window: SimDuration,
        model: LossModel,
    ) -> Self {
        self.at(at, FaultAction::SetLoss { link, model })
            .at(at + window, FaultAction::RestoreLoss { link })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_schedule_pairs() {
        let l = LinkId(3);
        let plan = FaultPlan::new()
            .link_flap(l, SimTime(100), SimDuration(50))
            .brownout(l, SimTime(300), SimDuration(100), 0.25)
            .loss_window(l, SimTime(500), SimDuration(100), LossModel::Bernoulli(0.1));
        assert_eq!(plan.faults.len(), 6);
        assert_eq!(plan.faults[0].at, SimTime(100));
        assert_eq!(plan.faults[1].at, SimTime(150));
        assert!(matches!(plan.faults[1].action, FaultAction::LinkUp { .. }));
        assert!(matches!(
            plan.faults[3].action,
            FaultAction::SetRateFactor { factor, .. } if factor == 1.0
        ));
        assert!(matches!(
            plan.faults[5].action,
            FaultAction::RestoreLoss { .. }
        ));
        assert!(FaultPlan::new().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn gilbert_elliott_stationary_loss() {
        let ge = GilbertElliott::bursty(0.01, 0.1, 0.9);
        // pi_bad = 0.01 / 0.11 = 1/11; mean loss = 0.9 / 11.
        assert!((ge.mean_loss() - 0.9 / 11.0).abs() < 1e-12);

        let mut st = LossState::new(LossModel::GilbertElliott(ge));
        let mut rng = SimRng::new(42);
        let n = 200_000;
        let drops = (0..n).filter(|_| st.drops_packet(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!(
            (rate - ge.mean_loss()).abs() < 0.01,
            "empirical={rate} stationary={}",
            ge.mean_loss()
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same mean loss, but GE clusters drops: its drop runs are longer
        // than Bernoulli's at equal rates.
        let ge = GilbertElliott::bursty(0.005, 0.05, 1.0);
        let mean = ge.mean_loss();
        let run_lengths = |mut st: LossState, seed: u64| -> f64 {
            let mut rng = SimRng::new(seed);
            let (mut runs, mut total, mut cur) = (0u64, 0u64, 0u64);
            for _ in 0..100_000 {
                if st.drops_packet(&mut rng) {
                    cur += 1;
                } else if cur > 0 {
                    runs += 1;
                    total += cur;
                    cur = 0;
                }
            }
            if runs == 0 {
                0.0
            } else {
                total as f64 / runs as f64
            }
        };
        let ge_run = run_lengths(LossState::new(LossModel::GilbertElliott(ge)), 7);
        let be_run = run_lengths(LossState::new(LossModel::Bernoulli(mean)), 7);
        assert!(
            ge_run > 3.0 * be_run,
            "ge mean run {ge_run} vs bernoulli {be_run}"
        );
    }

    #[test]
    fn loss_state_deterministic_per_stream() {
        let ge = LossModel::GilbertElliott(GilbertElliott::bursty(0.02, 0.2, 0.8));
        let draw = |seed| {
            let mut st = LossState::new(ge);
            let mut rng = SimRng::for_stream(seed, 5);
            (0..1000)
                .map(|_| st.drops_packet(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
