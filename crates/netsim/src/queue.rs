//! Egress queue disciplines.
//!
//! Each directed channel owns one queue. Four disciplines cover every
//! system in the paper:
//!
//! * [`QueueKind::DropTail`] — plain FIFO with a byte cap: the commodity
//!   switch the paper's testbed uses for TCP-Reno and MLTCP (no switch
//!   support needed is the whole point).
//! * [`QueueKind::EcnDropTail`] — FIFO that marks ECN-capable packets once
//!   the backlog exceeds a threshold `K`, as DCTCP requires.
//! * [`QueueKind::StrictPriority`] — serves the numerically *lowest*
//!   priority tag first and, when full, evicts the numerically *highest*
//!   (least urgent) packet — pFabric's switch behaviour with
//!   `priority = remaining flow bytes`.
//! * [`QueueKind::Mlfq`] — the same strict-priority service, but intended
//!   for PIAS where senders tag packets with a small MLFQ level derived
//!   from bytes already sent.
//!
//! All disciplines preserve FIFO order among equal-priority packets and
//! account capacity in bytes.

use crate::packet::{EcnCodepoint, Packet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Configuration for an egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueueKind {
    /// FIFO, dropping arrivals once `cap_bytes` of backlog exist.
    DropTail {
        /// Maximum queued bytes.
        cap_bytes: u64,
    },
    /// FIFO with DCTCP-style marking: arrivals that would leave more than
    /// `mark_threshold_bytes` queued get a CE mark (if ECN-capable); drops
    /// still occur at `cap_bytes`.
    EcnDropTail {
        /// Maximum queued bytes.
        cap_bytes: u64,
        /// Marking threshold `K` in bytes.
        mark_threshold_bytes: u64,
    },
    /// pFabric-style: lowest `priority` value served first; when the queue
    /// is full the highest-priority-value (least urgent) packet is evicted
    /// to admit a more urgent arrival.
    StrictPriority {
        /// Maximum queued bytes.
        cap_bytes: u64,
    },
    /// PIAS-style multi-level feedback queue; identical service/drop rules
    /// to [`QueueKind::StrictPriority`] (levels are just small priorities).
    Mlfq {
        /// Maximum queued bytes.
        cap_bytes: u64,
    },
}

impl QueueKind {
    /// Drop-tail with a default 500 kB buffer (≈ one bandwidth-delay
    /// product of the paper's 50 Gbps / 80 µs bottleneck).
    pub fn default_drop_tail() -> Self {
        QueueKind::DropTail { cap_bytes: 500_000 }
    }

    /// Instantiates the discipline.
    pub fn build(self) -> LinkQueue {
        match self {
            QueueKind::DropTail { cap_bytes } => LinkQueue::Fifo(FifoQueue::new(cap_bytes, None)),
            QueueKind::EcnDropTail {
                cap_bytes,
                mark_threshold_bytes,
            } => LinkQueue::Fifo(FifoQueue::new(cap_bytes, Some(mark_threshold_bytes))),
            QueueKind::StrictPriority { cap_bytes } | QueueKind::Mlfq { cap_bytes } => {
                LinkQueue::Priority(PriorityQueue::new(cap_bytes))
            }
        }
    }
}

/// A built per-channel queue, dispatched by enum match rather than
/// vtable: enqueue/dequeue sit on the serializer hot path, and the two
/// variants let the compiler inline both bodies behind one predictable
/// branch instead of an indirect call.
#[derive(Debug)]
pub enum LinkQueue {
    /// FIFO (plain or ECN-marking).
    Fifo(FifoQueue),
    /// pFabric/PIAS strict priority.
    Priority(PriorityQueue),
}

impl LinkQueue {
    /// Offers a packet to the discipline (see [`Queue::enqueue`]).
    #[inline]
    pub fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome {
        match self {
            LinkQueue::Fifo(q) => q.enqueue(pkt),
            LinkQueue::Priority(q) => q.enqueue(pkt),
        }
    }

    /// Removes the next packet to transmit.
    #[inline]
    pub fn dequeue(&mut self) -> Option<Packet> {
        match self {
            LinkQueue::Fifo(q) => q.dequeue(),
            LinkQueue::Priority(q) => q.dequeue(),
        }
    }

    /// Current backlog in bytes.
    #[inline]
    pub fn backlog_bytes(&self) -> u64 {
        match self {
            LinkQueue::Fifo(q) => q.backlog_bytes(),
            LinkQueue::Priority(q) => q.backlog_bytes(),
        }
    }

    /// Current backlog in packets.
    #[inline]
    pub fn backlog_packets(&self) -> usize {
        match self {
            LinkQueue::Fifo(q) => q.backlog_packets(),
            LinkQueue::Priority(q) => q.backlog_packets(),
        }
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.backlog_packets() == 0
    }

    /// Whether the queue is empty *and* would accept a packet of `wire`
    /// bytes unmodified right now — i.e. enqueue-then-dequeue would be
    /// the identity. This is the admission check behind the simulator's
    /// cut-through fast path: an empty queue never drops, evicts, or
    /// ECN-marks an arrival that fits the byte cap (marking thresholds
    /// compare against a backlog of zero).
    #[inline]
    pub fn passes_through(&self, wire: u32) -> bool {
        match self {
            LinkQueue::Fifo(q) => q.queue.is_empty() && u64::from(wire) <= q.cap_bytes,
            LinkQueue::Priority(q) => q.queue.is_empty() && u64::from(wire) <= q.cap_bytes,
        }
    }
}

// Custom disciplines can still be used through the trait; the built-in
// pair goes through the enum's inherent methods.
impl Queue for LinkQueue {
    fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome {
        LinkQueue::enqueue(self, pkt)
    }

    fn dequeue(&mut self) -> Option<Packet> {
        LinkQueue::dequeue(self)
    }

    fn backlog_bytes(&self) -> u64 {
        LinkQueue::backlog_bytes(self)
    }

    fn backlog_packets(&self) -> usize {
        LinkQueue::backlog_packets(self)
    }
}

/// Result of offering a packet to a queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet accepted unchanged.
    Accepted,
    /// Packet accepted and a CE mark was applied (ECN-capable arrival
    /// over the marking threshold).
    AcceptedMarked,
    /// The offered packet was dropped.
    DroppedArrival(Packet),
    /// The offered packet was accepted and a lower-urgency victim was
    /// evicted to make room (pFabric behaviour).
    Evicted(Packet),
}

/// An egress queue discipline.
pub trait Queue: std::fmt::Debug + Send {
    /// Offers a packet; the queue may mark it, queue it, drop it, or evict
    /// another packet to admit it.
    fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome;

    /// Removes the next packet to transmit.
    fn dequeue(&mut self) -> Option<Packet>;

    /// Current backlog in bytes.
    fn backlog_bytes(&self) -> u64;

    /// Current backlog in packets.
    fn backlog_packets(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.backlog_packets() == 0
    }
}

/// FIFO with optional ECN marking threshold.
#[derive(Debug)]
pub struct FifoQueue {
    cap_bytes: u64,
    mark_threshold: Option<u64>,
    queue: VecDeque<Packet>,
    bytes: u64,
}

impl FifoQueue {
    /// Creates a FIFO with the given byte capacity and optional DCTCP
    /// marking threshold.
    pub fn new(cap_bytes: u64, mark_threshold: Option<u64>) -> Self {
        Self {
            cap_bytes: cap_bytes.max(1),
            mark_threshold,
            queue: VecDeque::new(),
            bytes: 0,
        }
    }
}

impl Queue for FifoQueue {
    fn enqueue(&mut self, mut pkt: Packet) -> EnqueueOutcome {
        let size = u64::from(pkt.wire_bytes);
        if self.bytes + size > self.cap_bytes {
            return EnqueueOutcome::DroppedArrival(pkt);
        }
        let mut marked = false;
        if let Some(k) = self.mark_threshold {
            // DCTCP marks based on the instantaneous queue occupancy seen
            // by the arriving packet.
            if self.bytes > k && pkt.ecn.is_capable() {
                pkt.ecn = EcnCodepoint::CongestionExperienced;
                marked = true;
            }
        }
        self.bytes += size;
        self.queue.push_back(pkt);
        if marked {
            EnqueueOutcome::AcceptedMarked
        } else {
            EnqueueOutcome::Accepted
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= u64::from(pkt.wire_bytes);
        Some(pkt)
    }

    fn backlog_bytes(&self) -> u64 {
        self.bytes
    }

    fn backlog_packets(&self) -> usize {
        self.queue.len()
    }
}

/// Strict-priority queue: serves the lowest `priority` tag first (FIFO
/// within a tag); when full, evicts the highest tag to admit a more urgent
/// arrival (and drops the arrival if it is itself the least urgent).
#[derive(Debug)]
pub struct PriorityQueue {
    cap_bytes: u64,
    // Key: (priority, arrival sequence) → FIFO within equal priority.
    queue: BTreeMap<(u64, u64), Packet>,
    bytes: u64,
    next_seq: u64,
}

impl PriorityQueue {
    /// Creates a strict-priority queue with the given byte capacity.
    pub fn new(cap_bytes: u64) -> Self {
        Self {
            cap_bytes: cap_bytes.max(1),
            queue: BTreeMap::new(),
            bytes: 0,
            next_seq: 0,
        }
    }
}

impl Queue for PriorityQueue {
    fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome {
        let size = u64::from(pkt.wire_bytes);
        if self.bytes + size <= self.cap_bytes {
            let key = (pkt.priority, self.next_seq);
            self.next_seq += 1;
            self.bytes += size;
            self.queue.insert(key, pkt);
            return EnqueueOutcome::Accepted;
        }
        // Full: compare against the least-urgent resident.
        match self.queue.iter().next_back().map(|(k, _)| *k) {
            Some(worst_key) if worst_key.0 > pkt.priority => {
                let victim = self.queue.remove(&worst_key).expect("key just observed");
                self.bytes -= u64::from(victim.wire_bytes);
                // Note: a single eviction may not free enough bytes for a
                // larger arrival; in that case the arrival is dropped too
                // (matching pFabric's per-packet granularity: packets are
                // near-uniform MTU-sized).
                if self.bytes + size <= self.cap_bytes {
                    let key = (pkt.priority, self.next_seq);
                    self.next_seq += 1;
                    self.bytes += size;
                    self.queue.insert(key, pkt);
                    EnqueueOutcome::Evicted(victim)
                } else {
                    // Could not fit even after evicting; treat the victim
                    // as the drop and reject the arrival as well by
                    // reinserting nothing. Report the arrival dropped (the
                    // victim drop is the outcome).
                    EnqueueOutcome::Evicted(victim)
                }
            }
            _ => EnqueueOutcome::DroppedArrival(pkt),
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        // pFabric dequeue: find the most urgent packet, then serve the
        // *earliest-arrived* packet of that packet's flow — this keeps
        // packets of a single flow in order even though later packets
        // carry smaller remaining-bytes tags (pFabric §4.2 does exactly
        // this to avoid in-flow reordering).
        let best_key = *self.queue.keys().next()?;
        let best_flow = self.queue.get(&best_key).expect("key just observed").flow;
        let earliest_key = self
            .queue
            .iter()
            .filter(|(_, p)| p.flow == best_flow)
            .min_by_key(|(&(_, seq), _)| seq)
            .map(|(&k, _)| k)
            .expect("flow has at least the best packet");
        let pkt = self.queue.remove(&earliest_key).expect("key just observed");
        self.bytes -= u64::from(pkt.wire_bytes);
        Some(pkt)
    }

    fn backlog_bytes(&self) -> u64 {
        self.bytes
    }

    fn backlog_packets(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::FlowId;

    fn pkt(flow: u64, size_payload: u32, prio: u64) -> Packet {
        Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, size_payload).with_priority(prio)
    }

    fn ecn_pkt(size_payload: u32) -> Packet {
        pkt(1, size_payload, 0).with_ecn(EcnCodepoint::Capable)
    }

    #[test]
    fn build_selects_the_discipline() {
        let mut q = QueueKind::default_drop_tail().build();
        assert!(matches!(q, LinkQueue::Fifo(_)));
        q.enqueue(pkt(1, 100, 0));
        assert_eq!(q.backlog_packets(), 1);
        assert_eq!(q.dequeue().unwrap().flow, FlowId(1));
        assert!(q.is_empty());
        let p = QueueKind::StrictPriority { cap_bytes: 1000 }.build();
        assert!(matches!(p, LinkQueue::Priority(_)));
    }

    #[test]
    fn passes_through_only_when_empty_and_fitting() {
        let mut q = QueueKind::DropTail { cap_bytes: 5_000 }.build();
        assert!(q.passes_through(1540));
        assert!(!q.passes_through(6_000)); // over the byte cap
        q.enqueue(pkt(1, 100, 0));
        assert!(!q.passes_through(40)); // non-empty: must really queue
        q.dequeue();
        assert!(q.passes_through(40));
        let p = QueueKind::StrictPriority { cap_bytes: 300 }.build();
        assert!(p.passes_through(140));
        assert!(!p.passes_through(400));
    }

    #[test]
    fn fifo_preserves_order() {
        let mut q = FifoQueue::new(1_000_000, None);
        for i in 0..5 {
            assert_eq!(q.enqueue(pkt(i, 100, 0)), EnqueueOutcome::Accepted);
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().flow, FlowId(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_drops_when_full() {
        let mut q = FifoQueue::new(300, None);
        assert_eq!(q.enqueue(pkt(1, 100, 0)), EnqueueOutcome::Accepted); // 140 B
        assert_eq!(q.enqueue(pkt(2, 100, 0)), EnqueueOutcome::Accepted); // 280 B
        match q.enqueue(pkt(3, 100, 0)) {
            EnqueueOutcome::DroppedArrival(p) => assert_eq!(p.flow, FlowId(3)),
            other => panic!("expected drop, got {other:?}"),
        }
        assert_eq!(q.backlog_packets(), 2);
        assert_eq!(q.backlog_bytes(), 280);
    }

    #[test]
    fn fifo_byte_accounting_through_dequeue() {
        let mut q = FifoQueue::new(10_000, None);
        q.enqueue(pkt(1, 1500, 0));
        q.enqueue(pkt(2, 500, 0));
        assert_eq!(q.backlog_bytes(), 1540 + 540);
        q.dequeue();
        assert_eq!(q.backlog_bytes(), 540);
        q.dequeue();
        assert_eq!(q.backlog_bytes(), 0);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn ecn_marks_above_threshold_only_capable_packets() {
        let mut q = FifoQueue::new(1_000_000, Some(1000));
        // Fill past the 1000 B threshold with non-capable packets.
        q.enqueue(pkt(1, 1500, 0));
        assert_eq!(q.backlog_bytes(), 1540);
        // Capable arrival sees backlog 1540 > 1000 → marked.
        assert_eq!(q.enqueue(ecn_pkt(100)), EnqueueOutcome::AcceptedMarked);
        // Non-capable arrival is never marked.
        assert_eq!(q.enqueue(pkt(2, 100, 0)), EnqueueOutcome::Accepted);
        q.dequeue(); // the first 1500B packet
        let marked = q.dequeue().unwrap();
        assert!(marked.ecn.is_marked());
        let unmarked = q.dequeue().unwrap();
        assert!(!unmarked.ecn.is_marked());
    }

    #[test]
    fn ecn_does_not_mark_below_threshold() {
        let mut q = FifoQueue::new(1_000_000, Some(10_000));
        assert_eq!(q.enqueue(ecn_pkt(1500)), EnqueueOutcome::Accepted);
        assert!(!q.dequeue().unwrap().ecn.is_marked());
    }

    #[test]
    fn priority_serves_most_urgent_first() {
        let mut q = PriorityQueue::new(1_000_000);
        q.enqueue(pkt(1, 100, 500));
        q.enqueue(pkt(2, 100, 10));
        q.enqueue(pkt(3, 100, 200));
        assert_eq!(q.dequeue().unwrap().flow, FlowId(2));
        assert_eq!(q.dequeue().unwrap().flow, FlowId(3));
        assert_eq!(q.dequeue().unwrap().flow, FlowId(1));
    }

    #[test]
    fn priority_fifo_within_equal_priority() {
        let mut q = PriorityQueue::new(1_000_000);
        for i in 0..5 {
            q.enqueue(pkt(i, 100, 7));
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().flow, FlowId(i));
        }
    }

    #[test]
    fn priority_evicts_least_urgent_when_full() {
        let mut q = PriorityQueue::new(300); // fits two 140 B packets
        q.enqueue(pkt(1, 100, 100));
        q.enqueue(pkt(2, 100, 900));
        match q.enqueue(pkt(3, 100, 5)) {
            EnqueueOutcome::Evicted(victim) => assert_eq!(victim.flow, FlowId(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(q.dequeue().unwrap().flow, FlowId(3));
        assert_eq!(q.dequeue().unwrap().flow, FlowId(1));
    }

    #[test]
    fn priority_drops_least_urgent_arrival_when_full() {
        let mut q = PriorityQueue::new(300);
        q.enqueue(pkt(1, 100, 1));
        q.enqueue(pkt(2, 100, 2));
        match q.enqueue(pkt(3, 100, 999)) {
            EnqueueOutcome::DroppedArrival(p) => assert_eq!(p.flow, FlowId(3)),
            other => panic!("expected arrival drop, got {other:?}"),
        }
    }

    #[test]
    fn priority_tie_on_full_prefers_resident() {
        // Arrival with priority equal to the worst resident is dropped
        // (strictly-greater comparison), avoiding useless churn.
        let mut q = PriorityQueue::new(300);
        q.enqueue(pkt(1, 100, 5));
        q.enqueue(pkt(2, 100, 5));
        match q.enqueue(pkt(3, 100, 5)) {
            EnqueueOutcome::DroppedArrival(p) => assert_eq!(p.flow, FlowId(3)),
            other => panic!("expected arrival drop, got {other:?}"),
        }
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// FIFO conservation: every accepted packet comes out exactly
            /// once, in order, and byte accounting ends at zero.
            #[test]
            fn fifo_conservation(sizes in proptest::collection::vec(1u32..3000, 1..100)) {
                let mut q = FifoQueue::new(1_000_000_000, None);
                let mut accepted = vec![];
                for (i, &s) in sizes.iter().enumerate() {
                    if let EnqueueOutcome::Accepted = q.enqueue(pkt(i as u64, s, 0)) {
                        accepted.push(i as u64);
                    }
                }
                let mut out = vec![];
                while let Some(p) = q.dequeue() {
                    out.push(p.flow.0);
                }
                prop_assert_eq!(accepted, out);
                prop_assert_eq!(q.backlog_bytes(), 0);
            }

            /// Priority queue: dequeue order is sorted by (priority, then
            /// arrival order), regardless of insertion order.
            #[test]
            fn priority_order(prios in proptest::collection::vec(0u64..50, 1..100)) {
                let mut q = PriorityQueue::new(1_000_000_000);
                for (i, &p) in prios.iter().enumerate() {
                    q.enqueue(pkt(i as u64, 100, p));
                }
                let mut prev: Option<(u64, u64)> = None;
                while let Some(pk) = q.dequeue() {
                    let key = (pk.priority, pk.flow.0);
                    if let Some(pv) = prev {
                        prop_assert!(pv.0 <= key.0);
                        if pv.0 == key.0 {
                            prop_assert!(pv.1 < key.1);
                        }
                    }
                    prev = Some(key);
                }
            }
        }
    }
}
