//! Bandwidth tracing: per-flow byte counts binned over time on a
//! designated channel. This is how the repository regenerates the paper's
//! bandwidth-vs-time figures (Figs. 1, 2, 4a/4b, 6).

use crate::packet::FlowId;
use crate::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;

/// A per-flow, binned bandwidth trace for one channel.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthTrace {
    bin: SimDuration,
    /// `bins[flow][i]` = bytes of `flow` serialized during bin `i`.
    per_flow: BTreeMap<FlowId, Vec<u64>>,
    total: Vec<u64>,
    /// Bin-count ceiling ([`BandwidthTrace::MAX_BINS`] by default).
    max_bins: usize,
    /// Records whose bin index saturated at the ceiling.
    saturated: u64,
}

impl BandwidthTrace {
    /// Default ceiling on the number of bins. A record landing past the
    /// ceiling saturates into the last bin instead of growing the series
    /// without bound (or, on 32-bit targets, silently aliasing a
    /// truncated index). 16 Mi bins at the default 1 ms bin ≈ 4.7
    /// simulated hours.
    pub const MAX_BINS: usize = 1 << 24;

    /// Creates a trace with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        Self {
            bin: SimDuration(bin.as_nanos().max(1)),
            per_flow: BTreeMap::new(),
            total: Vec::new(),
            max_bins: Self::MAX_BINS,
            saturated: 0,
        }
    }

    /// Overrides the bin-count ceiling (min 1).
    pub fn with_max_bins(mut self, max_bins: usize) -> Self {
        self.max_bins = max_bins.max(1);
        self
    }

    /// Records `bytes` of `flow` completing serialization at `at`.
    ///
    /// Timestamps beyond the bin ceiling saturate into the last bin and
    /// are counted in [`BandwidthTrace::saturated_records`].
    pub fn record(&mut self, at: SimTime, flow: FlowId, bytes: u32) {
        let raw = at.as_nanos() / self.bin.as_nanos();
        let idx = if raw >= self.max_bins as u64 {
            self.saturated += 1;
            self.max_bins - 1
        } else {
            raw as usize
        };
        let series = self.per_flow.entry(flow).or_default();
        if series.len() <= idx {
            series.resize(idx + 1, 0);
        }
        series[idx] += u64::from(bytes);
        if self.total.len() <= idx {
            self.total.resize(idx + 1, 0);
        }
        self.total[idx] += u64::from(bytes);
    }

    /// The bin width.
    pub fn bin(&self) -> SimDuration {
        self.bin
    }

    /// The bin width (alias of [`BandwidthTrace::bin`], paired with
    /// [`BandwidthTrace::bins`] for offline tooling).
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Number of bins in the aggregate series.
    pub fn bins(&self) -> usize {
        self.total.len()
    }

    /// How many records saturated at the bin ceiling (0 in any run short
    /// enough for its bin width).
    pub fn saturated_records(&self) -> u64 {
        self.saturated
    }

    /// Flows observed, in id order.
    pub fn flows(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.per_flow.keys().copied()
    }

    /// The byte series for one flow (empty if never seen).
    pub fn bytes_series(&self, flow: FlowId) -> &[u64] {
        self.per_flow.get(&flow).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The flow's bandwidth series in Gbps.
    pub fn gbps_series(&self, flow: FlowId) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        self.bytes_series(flow)
            .iter()
            .map(|&b| b as f64 * 8.0 / secs / 1e9)
            .collect()
    }

    /// Aggregate (all-flow) bandwidth series in Gbps.
    pub fn total_gbps_series(&self) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        self.total
            .iter()
            .map(|&b| b as f64 * 8.0 / secs / 1e9)
            .collect()
    }

    /// Total bytes recorded for a flow.
    pub fn flow_bytes(&self, flow: FlowId) -> u64 {
        self.bytes_series(flow).iter().sum()
    }

    /// The time axis (bin start times, seconds) matching the series.
    pub fn time_axis_secs(&self) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        (0..self.total.len()).map(|i| i as f64 * secs).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn bins_accumulate_bytes() {
        let mut t = BandwidthTrace::new(SimDuration::millis(10));
        t.record(SimTime(0), FlowId(1), 1000);
        t.record(SimTime(5 * MS), FlowId(1), 1000);
        t.record(SimTime(15 * MS), FlowId(1), 500);
        assert_eq!(t.bytes_series(FlowId(1)), &[2000, 500]);
        assert_eq!(t.flow_bytes(FlowId(1)), 2500);
    }

    #[test]
    fn separate_flows_separate_series() {
        let mut t = BandwidthTrace::new(SimDuration::millis(1));
        t.record(SimTime(0), FlowId(1), 100);
        t.record(SimTime(0), FlowId(2), 200);
        assert_eq!(t.bytes_series(FlowId(1)), &[100]);
        assert_eq!(t.bytes_series(FlowId(2)), &[200]);
        assert_eq!(t.total_gbps_series().len(), 1);
        assert_eq!(t.flows().count(), 2);
    }

    #[test]
    fn gbps_conversion() {
        let mut t = BandwidthTrace::new(SimDuration::millis(1));
        // 125 kB in 1 ms = 1 Gbps.
        t.record(SimTime(0), FlowId(1), 125_000);
        let g = t.gbps_series(FlowId(1));
        assert!((g[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_flow_is_empty() {
        let t = BandwidthTrace::new(SimDuration::millis(1));
        assert!(t.bytes_series(FlowId(9)).is_empty());
        assert_eq!(t.flow_bytes(FlowId(9)), 0);
    }

    #[test]
    fn record_saturates_at_bin_ceiling() {
        let mut t = BandwidthTrace::new(SimDuration::millis(10)).with_max_bins(4);
        t.record(SimTime(0), FlowId(1), 100);
        // 1 simulated hour with a 4-bin ceiling: lands in the last bin.
        t.record(SimTime::from_secs_f64(3600.0), FlowId(1), 200);
        t.record(SimTime(u64::MAX), FlowId(1), 300);
        assert_eq!(t.bytes_series(FlowId(1)), &[100, 0, 0, 500]);
        assert_eq!(t.bins(), 4);
        assert_eq!(t.saturated_records(), 2);
        assert_eq!(t.flow_bytes(FlowId(1)), 600);
        assert_eq!(t.bin_width(), SimDuration::millis(10));
    }

    #[test]
    fn time_axis_matches_series() {
        let mut t = BandwidthTrace::new(SimDuration::millis(10));
        t.record(SimTime(25 * MS), FlowId(1), 1);
        let axis = t.time_axis_secs();
        assert_eq!(axis.len(), 3);
        assert!((axis[2] - 0.02).abs() < 1e-12);
    }
}
