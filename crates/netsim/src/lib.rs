//! # mltcp-netsim
//!
//! A deterministic, packet-level, discrete-event network simulator built as
//! the testbed substitute for the MLTCP reproduction (the paper evaluates
//! on an 8×A100 GPU cluster with a 50 Gbps bottleneck; we replace the
//! physical network with this simulator, which models everything MLTCP's
//! mechanism depends on: packet serialization on shared links, switch
//! queueing and drops, ECN marking, propagation delay, and ack clocking).
//!
//! Design follows the smoltcp school: event-driven, no async runtime, no
//! unsafe, simple and robust over clever. The entire simulation is
//! single-threaded and deterministic — the event queue breaks timestamp
//! ties by insertion sequence and all randomness flows through one seeded
//! RNG — so every experiment in the repository is exactly reproducible.
//!
//! ## Architecture
//!
//! * [`time`] — nanosecond-resolution simulated clock types.
//! * [`event`] — the `(time, seq)`-ordered event queue.
//! * [`packet`] — packets with a small transport header (data/ack), ECN
//!   codepoints, and a scheduling priority tag (used by pFabric/PIAS).
//! * [`queue`] — egress queue disciplines: drop-tail, ECN-marking
//!   drop-tail (DCTCP-style), strict priority with lowest-priority drop
//!   (pFabric-style), and multi-level feedback (PIAS-style).
//! * [`link`] — directed channels with rate, propagation delay, optional
//!   Bernoulli loss, and byte counters.
//! * [`fault`] — deterministic fault injection: scheduled link down/up,
//!   bandwidth brownouts, and Gilbert–Elliott bursty loss.
//! * [`node`] — hosts and switches with static routing tables.
//! * [`topology`] — builders (notably the paper's dumbbell) and BFS route
//!   computation.
//! * [`sim`] — the [`sim::Simulator`] event loop and the [`sim::Agent`]
//!   trait that transport endpoints and workload drivers implement.
//! * [`trace`] — per-flow bandwidth sampling on designated links (used to
//!   regenerate the paper's bandwidth-vs-time figures).
//! * [`rng`] — the seeded deterministic RNG facade.
//!
//! ## Example: two hosts, one link, a blaster and a sink
//!
//! ```
//! use mltcp_netsim::prelude::*;
//!
//! struct Blaster { peer: NodeId, flow: FlowId, pkts: u32 }
//! struct Sink { got: u64 }
//!
//! impl Agent for Blaster {
//!     fn start(&mut self, ctx: &mut AgentCtx<'_>) {
//!         for i in 0..self.pkts {
//!             let seq = u64::from(i) * 1500;
//!             let me = ctx.node();
//!             ctx.send(Packet::data(self.flow, me, self.peer, seq, 1500));
//!         }
//!     }
//!     fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
//! }
//! impl Agent for Sink {
//!     fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, pkt: Packet) {
//!         self.got += u64::from(pkt.payload_bytes());
//!     }
//! }
//!
//! let mut b = TopologyBuilder::new();
//! let h0 = b.host("h0");
//! let h1 = b.host("h1");
//! b.link(h0, h1, LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(5)));
//! let mut sim = Simulator::new(b.build().unwrap(), 42);
//! let flow = FlowId(1);
//! sim.add_agent(h0, Blaster { peer: h1, flow, pkts: 100 });
//! let sink = sim.add_agent(h1, Sink { got: 0 });
//! sim.bind_flow(flow, sink);
//! sim.run();
//! assert_eq!(sim.agent::<Sink>(sink).got, 100 * 1500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod link;
pub mod node;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenient glob-import of the simulator surface.
pub mod prelude {
    pub use crate::fault::{FaultAction, FaultPlan, GilbertElliott, LossModel};
    pub use crate::link::{Bandwidth, LinkId, LinkSpec};
    pub use crate::node::NodeId;
    pub use crate::packet::{EcnCodepoint, FlowId, Packet, SegmentHeader};
    pub use crate::queue::QueueKind;
    pub use crate::sim::{Agent, AgentCtx, AgentId, Simulator};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Topology, TopologyBuilder};
    pub use crate::trace::BandwidthTrace;
}
