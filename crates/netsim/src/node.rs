//! Nodes: hosts (traffic endpoints) and switches (store-and-forward).

use serde::{Deserialize, Serialize};

/// Index of a node within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A traffic endpoint; agents (transport stacks, workload drivers)
    /// attach here.
    Host,
    /// A store-and-forward switch; forwards per its routing table.
    Switch,
}

/// A node in the topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Debug name (e.g. "h0", "tor-left").
    pub name: String,
    /// Routing table: `routes[dst.index()]` is the outgoing channel index
    /// toward `dst`, or `None` if unreachable. Filled in by the topology
    /// builder from BFS shortest paths.
    pub routes: Vec<Option<usize>>,
}

impl Node {
    /// Creates an isolated node (routes are filled by the builder).
    pub fn new(id: NodeId, kind: NodeKind, name: impl Into<String>) -> Self {
        Self {
            id,
            kind,
            name: name.into(),
            routes: Vec::new(),
        }
    }

    /// Whether this node terminates traffic.
    pub fn is_host(&self) -> bool {
        matches!(self.kind, NodeKind::Host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_basics() {
        let n = Node::new(NodeId(3), NodeKind::Host, "h3");
        assert!(n.is_host());
        assert_eq!(n.id.index(), 3);
        assert_eq!(n.name, "h3");
        let s = Node::new(NodeId(4), NodeKind::Switch, "sw");
        assert!(!s.is_host());
    }
}
