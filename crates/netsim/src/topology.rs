//! Topology construction and static routing.
//!
//! The builder accumulates nodes and full-duplex links, then computes
//! shortest-path routes by BFS (hop count) from every node to every host.
//! The canonical topology of the paper — and of most of this repository's
//! experiments — is the dumbbell: N sender hosts and N receiver hosts on
//! opposite sides of a single bottleneck link between two switches.

use crate::link::{Bandwidth, Channel, LinkId, LinkSpec};
use crate::node::{Node, NodeId, NodeKind};
use crate::queue::QueueKind;
use crate::time::SimDuration;
use std::collections::VecDeque;

/// A fully-built, routed network.
#[derive(Debug)]
pub struct Topology {
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// All directed channels, indexed by [`LinkId`].
    pub channels: Vec<Channel>,
}

impl Topology {
    /// The outgoing channel from `node` toward `dst`, per the routing
    /// table. `None` when unreachable (or when `node == dst`).
    pub fn next_hop(&self, node: NodeId, dst: NodeId) -> Option<LinkId> {
        self.nodes[node.index()]
            .routes
            .get(dst.index())
            .copied()
            .flatten()
            .map(|i| LinkId(i as u32))
    }

    /// Hosts in id order.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.is_host()).map(|n| n.id)
    }

    /// Finds a channel id by endpoints; panics help tests catch wiring
    /// mistakes early.
    pub fn channel_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.channels
            .iter()
            .find(|c| c.from == from && c.to == to)
            .map(|c| c.id)
    }
}

/// Errors from [`TopologyBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A host pair has no path between them.
    Disconnected {
        /// Source host.
        from: NodeId,
        /// Unreachable destination host.
        to: NodeId,
    },
    /// The topology has no hosts.
    NoHosts,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Disconnected { from, to } => {
                write!(f, "no path from node {} to host {}", from.0, to.0)
            }
            TopologyError::NoHosts => write!(f, "topology has no hosts"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incremental topology builder.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    channels: Vec<Channel>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host and returns its id.
    pub fn host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name)
    }

    /// Adds a switch and returns its id.
    pub fn switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, name)
    }

    fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, kind, name));
        id
    }

    /// Adds a full-duplex link (two directed channels, both with `spec`).
    /// Returns the channel ids `(a→b, b→a)`.
    pub fn link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        let ab = self.directed(a, b, spec);
        let ba = self.directed(b, a, spec);
        (ab, ba)
    }

    /// Adds a single directed channel with its own spec (used for
    /// asymmetric configurations, e.g. a lossy forward path with a clean
    /// reverse path in the fairness experiment).
    pub fn directed(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.channels.len() as u32);
        self.channels.push(Channel::new(id, from, to, spec));
        id
    }

    /// Computes BFS routes and returns the finished topology.
    pub fn build(mut self) -> Result<Topology, TopologyError> {
        let n = self.nodes.len();
        if !self.nodes.iter().any(|x| x.is_host()) {
            return Err(TopologyError::NoHosts);
        }
        // adjacency: node → [(neighbor, channel index)]
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (ci, c) in self.channels.iter().enumerate() {
            adj[c.from.index()].push((c.to.index(), ci));
        }
        let host_ids: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|x| x.is_host())
            .map(|x| x.id)
            .collect();

        // For each destination host, BFS on the reversed graph to find, for
        // every node, the first hop of a shortest path toward it.
        let mut radj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (ci, c) in self.channels.iter().enumerate() {
            radj[c.to.index()].push((c.from.index(), ci));
        }
        let mut routes: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];
        for &dst in &host_ids {
            let d = dst.index();
            let mut dist = vec![usize::MAX; n];
            dist[d] = 0;
            let mut q = VecDeque::from([d]);
            while let Some(u) = q.pop_front() {
                for &(v, ci) in &radj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        // The channel v→u is v's first hop toward dst.
                        routes[v][d] = Some(ci);
                        q.push_back(v);
                    }
                }
            }
            // Validate: every host can reach every other host.
            for &src in &host_ids {
                if src != dst && routes[src.index()][d].is_none() {
                    return Err(TopologyError::Disconnected { from: src, to: dst });
                }
            }
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.routes = routes[i].clone();
        }
        Ok(Topology {
            nodes: self.nodes,
            channels: self.channels,
        })
    }
}

/// The paper's experimental topology: `pairs` sender hosts on the left,
/// `pairs` receiver hosts on the right, two switches, and one bottleneck
/// link between them.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// The topology itself.
    pub senders: Vec<NodeId>,
    /// Right-side (receiver) hosts, same order as `senders`.
    pub receivers: Vec<NodeId>,
    /// Left switch.
    pub left_switch: NodeId,
    /// Right switch.
    pub right_switch: NodeId,
    /// The left→right bottleneck channel (where the experiments trace
    /// bandwidth and where the interesting queueing happens).
    pub bottleneck: LinkId,
    /// The right→left reverse channel (carries acks).
    pub reverse: LinkId,
}

/// Parameters for [`build_dumbbell`].
#[derive(Debug, Clone, Copy)]
pub struct DumbbellSpec {
    /// Number of sender/receiver host pairs.
    pub pairs: usize,
    /// Bottleneck rate (the paper: 50 Gbps).
    pub bottleneck_rate: Bandwidth,
    /// Edge (host↔switch) rate; should exceed the bottleneck so the
    /// bottleneck is the only point of contention (the paper's hosts have
    /// full NIC line rate available).
    pub edge_rate: Bandwidth,
    /// One-way propagation delay per hop.
    pub hop_delay: SimDuration,
    /// Queue discipline at the bottleneck.
    pub bottleneck_queue: QueueKind,
    /// Byte capacity of edge queues.
    pub edge_queue: QueueKind,
}

impl Default for DumbbellSpec {
    fn default() -> Self {
        // 50 Gbps bottleneck, 100 Gbps edges, 20 µs/hop (≈ 120 µs RTT
        // across 3 hops each way), 1 BDP of bottleneck buffering.
        DumbbellSpec {
            pairs: 2,
            bottleneck_rate: Bandwidth::gbps(50),
            edge_rate: Bandwidth::gbps(100),
            hop_delay: SimDuration::micros(20),
            bottleneck_queue: QueueKind::DropTail { cap_bytes: 750_000 },
            edge_queue: QueueKind::DropTail {
                cap_bytes: 2_000_000,
            },
        }
    }
}

/// Builds the dumbbell and returns `(topology, handles)`.
pub fn build_dumbbell(spec: DumbbellSpec) -> (Topology, Dumbbell) {
    let mut b = TopologyBuilder::new();
    let left_switch = b.switch("sw-left");
    let right_switch = b.switch("sw-right");
    let mut senders = Vec::with_capacity(spec.pairs);
    let mut receivers = Vec::with_capacity(spec.pairs);
    let edge = LinkSpec::new(spec.edge_rate, spec.hop_delay).with_queue(spec.edge_queue);
    for i in 0..spec.pairs {
        let s = b.host(format!("snd{i}"));
        let r = b.host(format!("rcv{i}"));
        b.link(s, left_switch, edge);
        b.link(right_switch, r, edge);
        senders.push(s);
        receivers.push(r);
    }
    let bn_spec =
        LinkSpec::new(spec.bottleneck_rate, spec.hop_delay).with_queue(spec.bottleneck_queue);
    let (bottleneck, reverse) = b.link(left_switch, right_switch, bn_spec);
    let topo = b.build().expect("dumbbell is connected by construction");
    (
        topo,
        Dumbbell {
            senders,
            receivers,
            left_switch,
            right_switch,
            bottleneck,
            reverse,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec::new(Bandwidth::gbps(10), SimDuration::micros(5))
    }

    #[test]
    fn two_hosts_direct_link_routes() {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let (ab, ba) = b.link(h0, h1, spec());
        let t = b.build().unwrap();
        assert_eq!(t.next_hop(h0, h1), Some(ab));
        assert_eq!(t.next_hop(h1, h0), Some(ba));
        assert_eq!(t.next_hop(h0, h0), None);
    }

    #[test]
    fn routes_through_switch_chain() {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let s0 = b.switch("s0");
        let s1 = b.switch("s1");
        let h1 = b.host("h1");
        b.link(h0, s0, spec());
        b.link(s0, s1, spec());
        b.link(s1, h1, spec());
        let t = b.build().unwrap();
        // h0's first hop toward h1 is its only uplink.
        let up = t.channel_between(h0, s0).unwrap();
        assert_eq!(t.next_hop(h0, h1), Some(up));
        // s0 forwards across the middle link.
        let mid = t.channel_between(s0, s1).unwrap();
        assert_eq!(t.next_hop(s0, h1), Some(mid));
    }

    #[test]
    fn shortest_path_is_preferred() {
        // Diamond: h0 - a - h1 (2 hops) and h0 - b - c - h1 (3 hops).
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let a = b.switch("a");
        let s_b = b.switch("b");
        let c = b.switch("c");
        b.link(h0, a, spec());
        b.link(a, h1, spec());
        b.link(h0, s_b, spec());
        b.link(s_b, c, spec());
        b.link(c, h1, spec());
        let t = b.build().unwrap();
        let via_a = t.channel_between(h0, a).unwrap();
        assert_eq!(t.next_hop(h0, h1), Some(via_a));
    }

    #[test]
    fn disconnected_hosts_error() {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let _ = (h0, h1); // no link
        match b.build() {
            Err(TopologyError::Disconnected { .. }) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn no_hosts_error() {
        let mut b = TopologyBuilder::new();
        b.switch("lonely");
        assert_eq!(b.build().err(), Some(TopologyError::NoHosts));
    }

    #[test]
    fn dumbbell_wiring() {
        let (t, d) = build_dumbbell(DumbbellSpec {
            pairs: 4,
            ..DumbbellSpec::default()
        });
        assert_eq!(d.senders.len(), 4);
        assert_eq!(d.receivers.len(), 4);
        // Every sender reaches its receiver via the bottleneck: the left
        // switch's next hop toward any receiver is the bottleneck channel.
        for &r in &d.receivers {
            assert_eq!(t.next_hop(d.left_switch, r), Some(d.bottleneck));
        }
        for &s in &d.senders {
            assert_eq!(t.next_hop(d.right_switch, s), Some(d.reverse));
        }
        // Hosts iterate: 8 hosts total.
        assert_eq!(t.hosts().count(), 8);
    }
}
