//! Simulated time: nanosecond-resolution instants and durations.
//!
//! `u64` nanoseconds give ~584 years of simulated range — far beyond any
//! experiment here — while keeping ordering exact (no floating-point time).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "armed but never firing" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as `f64` (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Builds an instant from seconds (reporting/configuration use).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never overflows past [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole nanoseconds.
    pub const fn nanos(n: u64) -> Self {
        SimDuration(n)
    }
    /// From whole microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// From whole milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// From whole seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// From fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// As fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// As fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales by a float factor (used for RTO backoff and jitter), rounding
    /// to the nearest nanosecond and saturating at zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimDuration::secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::nanos(5).as_nanos(), 5);
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::secs(1);
        assert_eq!(t.as_nanos(), 1_000_000_000);
        assert_eq!((t - SimTime::ZERO).as_nanos(), 1_000_000_000);
        // Subtraction saturates rather than underflowing.
        assert_eq!((SimTime::ZERO - t).as_nanos(), 0);
        assert_eq!(t.duration_since(SimTime(2_000_000_000)).as_nanos(), 0);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::nanos(10).mul_f64(1.26).as_nanos(), 13);
        assert_eq!(SimDuration::nanos(10).mul_f64(-1.0).as_nanos(), 0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::secs(1)),
            SimTime::MAX
        );
        assert_eq!(SimDuration(u64::MAX).saturating_mul(2).as_nanos(), u64::MAX);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::millis(1) < SimDuration::secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::nanos(2)), "2ns");
    }
}
