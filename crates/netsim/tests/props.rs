//! Property-based tests over the simulator substrate: conservation,
//! determinism, and accounting invariants under randomized traffic.

use mltcp_netsim::link::{Bandwidth, LinkSpec};
use mltcp_netsim::node::NodeId;
use mltcp_netsim::packet::{FlowId, Packet, SegmentHeader};
use mltcp_netsim::queue::QueueKind;
use mltcp_netsim::sim::{Agent, AgentCtx, Simulator};
use mltcp_netsim::time::{SimDuration, SimTime};
use mltcp_netsim::topology::{build_dumbbell, DumbbellSpec, TopologyBuilder};
use proptest::prelude::*;

/// Sends a scripted pattern of (delay, size) packets.
struct ScriptedSender {
    peer: NodeId,
    flow: FlowId,
    script: Vec<(u64, u32)>,
    idx: usize,
}

impl Agent for ScriptedSender {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, _token: u64) {
        if self.idx >= self.script.len() {
            return;
        }
        let (gap, size) = self.script[self.idx];
        let me = ctx.node();
        ctx.send(Packet::data(
            self.flow,
            me,
            self.peer,
            self.idx as u64 * 10_000,
            size,
        ));
        self.idx += 1;
        ctx.set_timer(SimDuration::nanos(gap), 0);
    }
}

struct CountingSink {
    packets: u64,
    payload: u64,
}
impl Agent for CountingSink {
    fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, pkt: Packet) {
        if let SegmentHeader::Data { len, .. } = pkt.header {
            self.packets += 1;
            self.payload += u64::from(len);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lossless conservation: every payload byte injected at the sender
    /// is delivered at the sink, through a 3-hop dumbbell, regardless of
    /// timing pattern (big enough queues never drop).
    #[test]
    fn lossless_dumbbell_conserves_bytes(
        script in proptest::collection::vec((0u64..50_000, 1u32..1500), 1..200),
    ) {
        let (topo, d) = build_dumbbell(DumbbellSpec {
            pairs: 1,
            bottleneck_rate: Bandwidth::gbps(10),
            edge_rate: Bandwidth::gbps(40),
            hop_delay: SimDuration::micros(2),
            bottleneck_queue: QueueKind::DropTail { cap_bytes: 1_000_000_000 },
            edge_queue: QueueKind::DropTail { cap_bytes: 1_000_000_000 },
        });
        let total: u64 = script.iter().map(|&(_, s)| u64::from(s)).sum();
        let n = script.len() as u64;
        let mut sim = Simulator::new(topo, 1);
        sim.enable_trace(d.bottleneck, SimDuration::millis(1));
        let flow = FlowId(1);
        sim.add_agent(d.senders[0], ScriptedSender {
            peer: d.receivers[0],
            flow,
            script,
            idx: 0,
        });
        let sink = sim.add_agent(d.receivers[0], CountingSink { packets: 0, payload: 0 });
        sim.bind_flow(flow, sink);
        sim.run();
        let s = sim.agent::<CountingSink>(sink);
        prop_assert_eq!(s.packets, n);
        prop_assert_eq!(s.payload, total);
        prop_assert_eq!(sim.stats().dropped, 0);
        // The trace on the bottleneck saw exactly the wire bytes.
        let trace = sim.trace(d.bottleneck).expect("enabled");
        prop_assert_eq!(trace.flow_bytes(flow), total + n * 40);
    }

    /// Accounting identity: delivered + dropped == injected, under a
    /// tiny queue that drops heavily.
    #[test]
    fn delivered_plus_dropped_is_injected(
        script in proptest::collection::vec((0u64..2_000, 100u32..1500), 1..300),
    ) {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.link(
            h0,
            h1,
            LinkSpec::new(Bandwidth::mbps(100), SimDuration::micros(2))
                .with_queue(QueueKind::DropTail { cap_bytes: 5_000 }),
        );
        let n = script.len() as u64;
        let mut sim = Simulator::new(b.build().expect("connected"), 2);
        let flow = FlowId(1);
        sim.add_agent(h0, ScriptedSender { peer: h1, flow, script, idx: 0 });
        let sink = sim.add_agent(h1, CountingSink { packets: 0, payload: 0 });
        sim.bind_flow(flow, sink);
        sim.run();
        let s = sim.agent::<CountingSink>(sink);
        prop_assert_eq!(s.packets + sim.stats().dropped, n);
    }

    /// Determinism: identical seeds give identical outcomes even with
    /// random loss; the clock always ends at the same instant.
    #[test]
    fn seeded_runs_are_identical(
        script in proptest::collection::vec((0u64..5_000, 100u32..1500), 1..100),
        seed in 0u64..1000,
        loss in 0.0f64..0.5,
    ) {
        let run = |seed: u64, script: Vec<(u64, u32)>| -> (u64, u64, SimTime) {
            let mut b = TopologyBuilder::new();
            let h0 = b.host("h0");
            let h1 = b.host("h1");
            b.link(
                h0,
                h1,
                LinkSpec::new(Bandwidth::gbps(1), SimDuration::micros(5)).with_loss(loss),
            );
            let mut sim = Simulator::new(b.build().expect("connected"), seed);
            let flow = FlowId(1);
            sim.add_agent(h0, ScriptedSender { peer: h1, flow, script, idx: 0 });
            let sink = sim.add_agent(h1, CountingSink { packets: 0, payload: 0 });
            sim.bind_flow(flow, sink);
            sim.run();
            let s = sim.agent::<CountingSink>(sink);
            (s.packets, sim.stats().dropped, sim.now())
        };
        prop_assert_eq!(run(seed, script.clone()), run(seed, script));
    }

    /// Serialization is work-conserving and ordered on a FIFO link: the
    /// sink receives packets in injection order, and the final clock is
    /// at least the sum of serialization times.
    #[test]
    fn fifo_link_preserves_order(
        sizes in proptest::collection::vec(1u32..1500, 2..100),
    ) {
        struct OrderSink { seqs: Vec<u64> }
        impl Agent for OrderSink {
            fn on_packet(&mut self, _ctx: &mut AgentCtx<'_>, pkt: Packet) {
                if let SegmentHeader::Data { seq, .. } = pkt.header {
                    self.seqs.push(seq);
                }
            }
        }
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        b.link(h0, h1, LinkSpec::new(Bandwidth::mbps(10), SimDuration::micros(5)));
        let mut sim = Simulator::new(b.build().expect("connected"), 3);
        let flow = FlowId(1);
        let script: Vec<(u64, u32)> = sizes.iter().map(|&s| (0u64, s)).collect();
        sim.add_agent(h0, ScriptedSender { peer: h1, flow, script, idx: 0 });
        let sink = sim.add_agent(h1, OrderSink { seqs: vec![] });
        sim.bind_flow(flow, sink);
        sim.run();
        let got = &sim.agent::<OrderSink>(sink).seqs;
        let want: Vec<u64> = (0..sizes.len() as u64).map(|i| i * 10_000).collect();
        prop_assert_eq!(got, &want);
    }
}
