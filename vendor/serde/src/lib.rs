//! Offline stand-in for `serde`.
//!
//! This repository builds in an environment without crates.io access, so
//! the real `serde` cannot be fetched. The workspace's `#[derive(
//! Serialize, Deserialize)]` annotations are kept (they document which
//! types are meant to be wire-stable and keep the door open for a future
//! online build); this shim makes them compile:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket
//!   impls, so any `T: Serialize` bound is satisfied.
//! * The re-exported derive macros (from the sibling `serde_derive`
//!   shim) parse and expand to nothing.
//!
//! Actual JSON emission for experiment artifacts lives in
//! `mltcp_bench::json`, which is hand-rolled for the handful of result
//! types that need it.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
