//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real serde derive machinery (which pulls in `syn`/`quote`)
//! cannot be used. The workspace keeps its `#[derive(Serialize,
//! Deserialize)]` annotations as documentation of intent and for a future
//! online build; actual serialization goes through the hand-rolled JSON
//! emitter in `mltcp-bench` (`mltcp_bench::json`).
//!
//! These derives therefore accept any item and expand to nothing: the
//! marker traits in the sibling `serde` shim have blanket impls, so
//! `T: Serialize` bounds still hold.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
