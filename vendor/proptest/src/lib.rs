//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the proptest API the workspace uses, implemented over a
//! deterministic splitmix64/xoshiro256++ generator:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] for numeric ranges, tuples, [`Just`], `prop_map`,
//! * [`collection::vec`], [`sample::subsequence`], [`prop_oneof!`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] (plain assertions).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left to the assertion message; rerunning reproduces it exactly.
//! * **Deterministic seeding.** Each test's RNG is seeded from the test
//!   function's name, so runs are bit-for-bit reproducible and CI-stable.
//! * Default case count is 32 (packet-level simulations make 256 too
//!   slow); `ProptestConfig::with_cases` overrides per block.

use std::ops::Range;

/// Deterministic generator used for all case generation
/// (splitmix64-seeded xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Seeds a [`TestRng`] from a test name (FNV-1a), so every proptest block
/// is reproducible without a persistence file.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A value generator. The mirror of proptest's `Strategy`, without
/// shrinking: `new_value` produces one case directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Map combinator returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform values of a primitive type (`any::<bool>()` etc.).
pub trait Arbitrary: Sized {
    /// Generates one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over all values of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted union of strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof needs positive total weight");
        Self { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.new_value(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `vec(element, len)` — vectors of `element` values with a length
    /// drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: len.into(),
        }
    }
}

/// Sampling strategies (`proptest::sample::subsequence`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing an order-preserving subsequence of fixed size.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            // Floyd's algorithm for a uniform size-k index set, then sort
            // to preserve order.
            let n = self.values.len();
            let k = self.size;
            let mut chosen = std::collections::BTreeSet::new();
            for j in (n - k)..n {
                let t = rng.below(j as u64 + 1) as usize;
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// `subsequence(values, size)` — a uniformly chosen subsequence of
    /// exactly `size` elements, in the original order.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= values.len(), "subsequence larger than source");
        Subsequence { values, size }
    }
}

/// The `proptest::prelude` mirror.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert within a proptest body (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// The proptest entry macro: declares `#[test]` functions whose
/// arguments are drawn from strategies, run for `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $cfg;
                let mut __pt_rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __pt_case in 0..__pt_config.cases {
                    let _ = __pt_case;
                    $(let $arg = $crate::Strategy::new_value(&$strat, &mut __pt_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = test_rng("ranges");
        for _ in 0..1000 {
            let v = (5u64..10).new_value(&mut rng);
            assert!((5..10).contains(&v));
            let f = (0.5f64..0.75).new_value(&mut rng);
            assert!((0.5..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = test_rng("vecs");
        for _ in 0..200 {
            let v = collection::vec(0u32..5, 2..7).new_value(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = test_rng("subseq");
        let src: Vec<u64> = (0..30).collect();
        for _ in 0..100 {
            let s = sample::subsequence(src.clone(), 10).new_value(&mut rng);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = test_rng("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = test_rng("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..10, (lo, hi) in (0.0f64..1.0, 2.0f64..3.0),
                       v in crate::collection::vec(0u64..100, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(lo < hi);
            prop_assert!(!v.is_empty());
            prop_assert_ne!(hi, lo);
        }

        #[test]
        fn oneof_and_map(e in prop_oneof![3 => Just(1u8), 1 => Just(2u8)],
                         m in (0u32..5).prop_map(|x| x * 2),
                         b in any::<bool>()) {
            prop_assert!(e == 1 || e == 2);
            prop_assert_eq!(m % 2, 0);
            let _ = b;
        }
    }
}
