//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the criterion API the workspace's `harness = false`
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`Throughput::Elements`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock loop: one warmup call, then repeated
//! calls until a fixed time budget (`CRITERION_BUDGET_MS`, default 300 ms
//! per benchmark) is spent, reporting mean ns/iter and, when a
//! [`Throughput`] is set, elements/sec. No statistics, plots, or saved
//! baselines. When invoked with `--test` (as `cargo test` does for bench
//! targets), every benchmark body runs exactly once so the suite stays
//! fast and acts as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        black_box(f()); // warmup
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        test_mode: test_mode(),
        budget: budget(),
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    if b.test_mode {
        println!("test bench {name} ... ok");
        return;
    }
    let per = b.mean_ns;
    let human = if per >= 1e9 {
        format!("{:.3} s", per / 1e9)
    } else if per >= 1e6 {
        format!("{:.3} ms", per / 1e6)
    } else if per >= 1e3 {
        format!("{:.3} us", per / 1e3)
    } else {
        format!("{per:.1} ns")
    };
    let thru = match throughput {
        Some(Throughput::Elements(n)) if per > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / per * 1e3)
        }
        Some(Throughput::Bytes(n)) if per > 0.0 => {
            format!("  ({:.3} MiB/s)", n as f64 / per * 1e3 / 1.048_576)
        }
        _ => String::new(),
    };
    println!("{name:<40} {human:>12}/iter  [{} iters]{thru}", b.iters);
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by time
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
